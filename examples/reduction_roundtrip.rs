//! The two reductions of Theorem 2.7, round-tripped.
//!
//! Part 1 starts from the information inequality of Eq. (19),
//!
//! ```text
//!     0 ≤ h(X1) + 2·h(X2) + h(X3) − h(X1X2) − h(X2X3),
//! ```
//!
//! uniformizes it (Lemma 5.3) and builds the containment instance `Q1 ⊑ Q2?`
//! with acyclic `Q2` (Section 5.3, Example 5.2), reporting the structure of
//! the produced queries.  Part 2 performs the full *semantic* round-trip — the
//! containment inequality of Eq. (8) re-derived from the constructed queries
//! has the same Shannon-cone validity as the original inequality — on two
//! deliberately tiny inequalities (one valid, one invalid) so that the exact
//! LP stays small.
//!
//! Run with: `cargo run --example reduction_roundtrip`

use bag_query_containment::prelude::*;
use bqc_arith::int;
use bqc_hypergraph::Hypergraph;
use bqc_iip::uniformize;

fn main() {
    part_1_structure_of_example_5_2();
    println!();
    part_2_semantic_roundtrip();
}

fn part_1_structure_of_example_5_2() {
    // Eq. (19).
    let mut expr = EntropyExpr::zero();
    expr.add_term(int(1), ["X1"]);
    expr.add_term(int(2), ["X2"]);
    expr.add_term(int(1), ["X3"]);
    expr.add_term(int(-1), ["X1", "X2"]);
    expr.add_term(int(-1), ["X2", "X3"]);
    let original = LinearInequality::new(vec!["X1".into(), "X2".into(), "X3".into()], expr);
    println!("== Part 1: Example 5.2 =============================================");
    println!("original inequality:   {original}");
    println!(
        "Shannon-valid:         {}",
        check_linear_inequality(&original).is_valid()
    );

    // Lemma 5.3: uniformize.  Eq. (20) of the paper rewrites Eq. (19) with
    // q = 3 copies of h(X1X2X3) on the left; the uniformization reproduces that.
    let uniform = uniformize(&original.to_max(), "U");
    uniform
        .validate()
        .expect("uniformization produces a Uniform-Max-IIP");
    println!(
        "uniformized: q = {}, n = {}, p = {}, {} disjunct(s)",
        uniform.q,
        uniform.expressions[0].head_count,
        uniform.expressions[0].chain.len(),
        uniform.expressions.len(),
    );

    // Section 5.3: build the queries.
    let reduction = max_iip_to_containment(&uniform);
    println!(
        "Q1: {} variables, {} atoms ({} adorned copies)",
        reduction.q1.num_vars(),
        reduction.q1.atoms().len(),
        reduction.copies
    );
    println!(
        "Q2: {} variables, {} atoms",
        reduction.q2.num_vars(),
        reduction.q2.atoms().len()
    );
    let hypergraph = Hypergraph::new(reduction.q2.hyperedges());
    println!("Q2 is alpha-acyclic: {}", hypergraph.is_alpha_acyclic());
    assert!(hypergraph.is_alpha_acyclic());
    // (The full LP for this instance has 2^15 columns — see EXPERIMENTS.md for
    // why the semantic check is done on smaller instances below.)
}

fn part_2_semantic_roundtrip() {
    println!("== Part 2: semantic round-trip on small instances ==================");
    let universe = vec!["X".to_string()];
    let cases = [
        ("0 <= h(X)", EntropyExpr::term(int(1), ["X"])),
        ("0 <= -h(X)", EntropyExpr::term(int(-1), ["X"])),
    ];
    for (label, expr) in cases {
        let original = LinearInequality::new(universe.clone(), expr);
        let original_valid = check_linear_inequality(&original).is_valid();
        let uniform = uniformize(&original.to_max(), "U");
        let reduction = max_iip_to_containment(&uniform);
        let hypergraph = Hypergraph::new(reduction.q2.hyperedges());
        let join_tree = hypergraph
            .join_tree()
            .expect("acyclic query has a join tree");
        let (containment, _) = containment_inequality(&reduction.q1, &reduction.q2, &join_tree)
            .expect("the construction always admits homomorphisms");
        let roundtrip_valid = check_max_inequality(&containment).is_valid();
        println!(
            "{label}: original valid = {original_valid}, containment inequality valid = {roundtrip_valid}  (Q1 has {} vars, Q2 has {} vars)",
            reduction.q1.num_vars(),
            reduction.q2.num_vars()
        );
        assert_eq!(
            original_valid, roundtrip_valid,
            "the reduction must preserve validity"
        );
    }
    println!(
        "round-trip successful: validity preserved through Lemma 5.3 + Section 5.3 + Eq. (8)."
    );
}
