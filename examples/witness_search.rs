//! Witness shapes (Example 3.5 and Theorem 3.4).
//!
//! Example 3.5 of the paper exhibits a pair of queries where `Q1 ⋢ Q2`, the
//! containing query is chordal with a *simple* junction tree, and a *normal*
//! witness exists — but no *product* witness does.  This example reproduces
//! all three facts:
//!
//! 1. the decision procedure answers "not contained" and materializes a
//!    verified normal witness from the LP counterexample;
//! 2. the hand-written normal relation `P = {(u,u,v,v)}` of the paper also
//!    verifies;
//! 3. an exhaustive search over small product relations finds nothing.
//!
//! Run with: `cargo run --example witness_search`

use bag_query_containment::prelude::*;
use std::collections::BTreeSet;

fn main() {
    let q1 =
        parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
            .unwrap();
    let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
    println!("Q1: {q1}");
    println!("Q2: {q2}");
    println!();

    // The containing query is chordal with a simple junction tree.
    let graph = Graph::from_cliques(q2.hyperedges());
    let jt = junction_tree(&graph).expect("Q2 is chordal");
    println!("junction tree of Q2 (simple = {}):", jt.is_simple());
    for line in jt.to_string().lines() {
        println!("  {line}");
    }
    println!();

    // 1. The decision procedure.
    match decide_containment(&q1, &q2).unwrap() {
        ContainmentAnswer::NotContained {
            witness,
            counterexample,
        } => {
            println!("decision: Q1 ⋢ Q2");
            if let Some(h) = counterexample {
                println!("violating polymatroid found by the LP:");
                for line in h.to_string().lines() {
                    println!("  {line}");
                }
            }
            if let Some(witness) = witness {
                println!(
                    "materialized witness: |P| rows -> |hom(Q1,D)| = {}, |hom(Q2,D)| = {}",
                    witness.hom_q1, witness.hom_q2
                );
            }
        }
        other => panic!("unexpected answer {other:?}"),
    }
    println!();

    // 2. The paper's hand-written normal witness {(u,u,v,v) | u,v in [3]}.
    let product = VRelation::product(&[
        ("u".to_string(), (1..=3).map(Value::int).collect()),
        ("v".to_string(), (1..=3).map(Value::int).collect()),
    ]);
    let psi: Vec<(String, BTreeSet<String>)> = vec![
        ("x1".to_string(), ["u".to_string()].into_iter().collect()),
        ("x2".to_string(), ["u".to_string()].into_iter().collect()),
        ("x1'".to_string(), ["v".to_string()].into_iter().collect()),
        ("x2'".to_string(), ["v".to_string()].into_iter().collect()),
    ];
    let paper_witness = VRelation::normal_relation(&product, &psi);
    let verified = verify_witness(&q1, &q2, &paper_witness).expect("the paper's witness verifies");
    println!(
        "paper's normal witness P (n=3): |P| = {}, hom(Q1,D) = {}, hom(Q2,D) = {}",
        paper_witness.len(),
        verified.hom_q1,
        verified.hom_q2
    );

    // 3. No product witness exists (the paper proves none exists at any size;
    //    we check all small ones).
    let product_attempt = search_product_witness(&q1, &q2, &[1, 2, 3, 4], 512);
    println!(
        "exhaustive small product-witness search: {}",
        if product_attempt.is_none() {
            "none found (as the paper predicts)"
        } else {
            "FOUND?!"
        }
    );
    assert!(product_attempt.is_none());
}
