//! A tour of the information-theoretic substrate (Sections 3.2, Appendix B/C).
//!
//! * the parity relation and its entropy (an entropic function that is a
//!   polymatroid but **not** normal — Corollary B.8);
//! * the Möbius inverse / I-measure;
//! * the Lemma 3.7 constructions (modularization and normalization);
//! * Shannon-provability of classic inequalities, and the Zhang–Yeung
//!   inequality as a non-Shannon example;
//! * Theorem 6.1: convex certificates for valid max-inequalities.
//!
//! Run with: `cargo run --example entropy_explorer`

use bag_query_containment::prelude::*;
use bqc_arith::int;
use bqc_entropy::modularize;

fn main() {
    // ---- The parity function --------------------------------------------
    let relation = parity_relation(["X", "Y", "Z"]);
    println!(
        "parity relation (X ⊕ Y ⊕ Z = 0), {} tuples:",
        relation.len()
    );
    for line in relation.to_string().lines() {
        println!("  {line}");
    }
    let empirical = relation_entropy(&relation);
    println!(
        "empirical entropies: h(X) = {}, h(XY) = {}, h(XYZ) = {}",
        empirical.value_of(["X"]),
        empirical.value_of(["X", "Y"]),
        empirical.value_of(["X", "Y", "Z"]),
    );

    let parity = SetFunction::from_values(
        vec!["X".into(), "Y".into(), "Z".into()],
        vec![
            int(0),
            int(1),
            int(1),
            int(2),
            int(1),
            int(2),
            int(2),
            int(2),
        ],
    );
    println!(
        "exact parity function is a polymatroid: {}",
        is_polymatroid(&parity)
    );
    println!(
        "exact parity function is modular:       {}",
        is_modular(&parity)
    );
    println!(
        "exact parity function is normal:        {}",
        is_normal(&parity)
    );
    let mobius = parity.mobius_inverse();
    println!(
        "Möbius inverse g (Appendix B): g(∅)={}, g(X)={}, g(XYZ)={}",
        mobius[0], mobius[0b001], mobius[0b111]
    );
    println!();

    // ---- Lemma 3.7: dominate the parity function from below --------------
    let modular = modularize(&parity);
    let normal = normalize(&parity);
    println!(
        "Lemma 3.7(1) modularization: h'(XYZ) = {} (= h(XYZ)), h'(Z) = {}",
        modular.value_of(["X", "Y", "Z"]),
        modular.value_of(["Z"])
    );
    println!(
        "Lemma 3.7(2) normalization:  h'(XYZ) = {}, h'(X) = {}, h'(Y) = {}, h'(Z) = {} (all singletons preserved)",
        normal.value_of(["X", "Y", "Z"]),
        normal.value_of(["X"]),
        normal.value_of(["Y"]),
        normal.value_of(["Z"]),
    );
    println!("normalized function is normal: {}", is_normal(&normal));
    let decomposition = NormalFunction::try_from_set_function(&normal).unwrap();
    println!("its step decomposition: {decomposition}");
    println!();

    // ---- Shannon-provability ---------------------------------------------
    let mut submodularity = EntropyExpr::zero();
    submodularity.add_term(int(1), ["X"]);
    submodularity.add_term(int(1), ["Y"]);
    submodularity.add_term(int(-1), ["X", "Y"]);
    let ineq = LinearInequality::new(vec!["X".into(), "Y".into()], submodularity);
    println!(
        "submodularity h(X)+h(Y) >= h(XY) is Shannon-provable: {}",
        check_linear_inequality(&ineq).is_valid()
    );

    // The Zhang–Yeung inequality is valid for entropic functions but not
    // Shannon-provable; the prover reports the violating polymatroid.
    let zy = zhang_yeung();
    match check_linear_inequality(&zy) {
        bqc_iip::GammaValidity::NotShannonProvable { counterexample } => {
            println!(
                "Zhang–Yeung is NOT Shannon-provable; violating polymatroid has h(ABCD) = {}",
                counterexample.value(counterexample.full_mask())
            );
        }
        bqc_iip::GammaValidity::ValidShannon => unreachable!("ZY is not a Shannon inequality"),
    }
    println!();

    // ---- Theorem 6.1 -------------------------------------------------------
    let mut d1 = EntropyExpr::zero();
    d1.add_term(int(1), ["X"]);
    d1.add_term(int(-1), ["Y"]);
    let d2 = d1.negate();
    let max = MaxInequality::new(vec!["X".into(), "Y".into()], vec![d1, d2]);
    println!(
        "max(h(X)-h(Y), h(Y)-h(X)) >= 0 is valid: {}",
        check_max_inequality(&max).is_valid()
    );
    let certificate = find_convex_certificate(&max).expect("Theorem 6.1 certificate");
    println!(
        "Theorem 6.1 convex certificate: lambda = ({})",
        certificate
            .lambdas
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// The Zhang–Yeung non-Shannon information inequality
/// `2 I(C;D) ≤ I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B)` as a linear
/// inequality in entropies.
fn zhang_yeung() -> LinearInequality {
    let universe: Vec<String> = ["A", "B", "C", "D"].iter().map(|s| s.to_string()).collect();
    let mut expr = EntropyExpr::zero();
    let mutual = |coeff: i64, a: &[&str], b: &[&str], cond: &[&str], expr: &mut EntropyExpr| {
        let join = |x: &[&str], y: &[&str]| -> Vec<String> {
            let mut out: Vec<String> = x.iter().map(|s| s.to_string()).collect();
            for s in y {
                if !out.contains(&s.to_string()) {
                    out.push(s.to_string());
                }
            }
            out
        };
        expr.add_term(int(coeff), join(a, cond));
        expr.add_term(int(coeff), join(b, cond));
        let ab: Vec<String> = join(a, b);
        let ab_refs: Vec<&str> = ab.iter().map(|s| s.as_str()).collect();
        expr.add_term(int(-coeff), join(&ab_refs, cond));
        expr.add_term(int(-coeff), cond.iter().map(|s| s.to_string()));
    };
    mutual(1, &["A"], &["B"], &[], &mut expr);
    mutual(1, &["A"], &["C", "D"], &[], &mut expr);
    mutual(3, &["C"], &["D"], &["A"], &mut expr);
    mutual(1, &["C"], &["D"], &["B"], &mut expr);
    mutual(-2, &["C"], &["D"], &[], &mut expr);
    LinearInequality::new(universe, expr)
}
