//! Bag-set semantics as SQL `COUNT(*) ... GROUP BY`, and containment of
//! aggregate queries.
//!
//! Section 2.2 of the paper: the bag-set answer of a conjunctive query is the
//! map `d ↦ |Q(D)[d]|`, i.e. exactly what
//!
//! ```sql
//! SELECT x, z, COUNT(*) FROM R, S WHERE R.b = S.a GROUP BY x, z
//! ```
//!
//! computes.  Deciding `Q1 ⊑ Q2` under bag-set semantics therefore answers the
//! query-optimization question "is the count produced by `Q1` always bounded
//! by the count produced by `Q2`, on every database?"  This example evaluates
//! two aggregate queries on a small orders/customers database and then decides
//! containment in both directions.
//!
//! Run with: `cargo run --example sql_containment`

use bag_query_containment::prelude::*;

fn main() {
    // Orders(customer, product), Stock(product, warehouse), Vip(customer).
    let db = parse_structure(
        "Orders(alice, laptop). Orders(alice, phone). Orders(bob, laptop). \
         Stock(laptop, berlin). Stock(laptop, paris). Stock(phone, berlin). \
         Vip(alice).",
    )
    .unwrap();

    // Q1: per (customer, warehouse), the number of ways a VIP customer's order
    //     can be fulfilled from that warehouse.
    // SQL: SELECT customer, warehouse, COUNT(*)
    //      FROM Orders JOIN Stock USING (product) JOIN Vip USING (customer)
    //      GROUP BY customer, warehouse;
    let q1 = parse_query("Q1(c, w) :- Orders(c, p), Stock(p, w), Vip(c)").unwrap();

    // Q2: the same count but without the VIP restriction.
    let q2 = parse_query("Q2(c, w) :- Orders(c, p), Stock(p, w)").unwrap();

    println!("Q1: {q1}");
    println!("Q2: {q2}");
    println!();
    println!("bag-set answer of Q1 (COUNT(*) GROUP BY customer, warehouse):");
    for (key, count) in bag_set_answer(&q1, &db) {
        println!("  {} | {}  -> {}", key[0], key[1], count);
    }
    println!("bag-set answer of Q2:");
    for (key, count) in bag_set_answer(&q2, &db) {
        println!("  {} | {}  -> {}", key[0], key[1], count);
    }
    println!();

    // Containment: adding the Vip join can only filter groups, so Q1 ⊑ Q2 on
    // every database; the converse fails.
    match decide_containment(&q1, &q2).unwrap() {
        ContainmentAnswer::Contained { .. } => {
            println!("Q1 ⊑ Q2: the VIP-restricted counts never exceed the unrestricted counts.")
        }
        other => panic!("unexpected answer {other:?}"),
    }
    match decide_containment(&q2, &q1).unwrap() {
        ContainmentAnswer::NotContained { witness, .. } => {
            println!("Q2 ⊑ Q1 fails; counterexample database:");
            if let Some(witness) = witness {
                for line in witness.database.to_string().lines() {
                    println!("  {line}");
                }
            }
        }
        other => panic!("unexpected answer {other:?}"),
    }

    // A genuinely information-theoretic case: splitting a join.
    // Q3 counts per product the pairs (customer, warehouse); Q4 bounds it by
    // the product of the two degrees... which is exactly what Q3 already is,
    // so instead compare against the "two copies of the same order" query.
    let q3 = parse_query("Q3(p) :- Orders(c, p), Stock(p, w)").unwrap();
    let q4 = parse_query("Q4(p) :- Orders(c, p), Orders(d, p)").unwrap();
    println!();
    println!("Q3: {q3}");
    println!("Q4: {q4}");
    let a3 = decide_containment(&q3, &q4).unwrap();
    let a4 = decide_containment(&q4, &q3).unwrap();
    println!(
        "Q3 ⊑ Q4: {}",
        if a3.is_contained() {
            "contained"
        } else {
            "not contained"
        }
    );
    println!(
        "Q4 ⊑ Q3: {}",
        if a4.is_contained() {
            "contained"
        } else {
            "not contained"
        }
    );
}
