//! Quickstart: decide bag-set containment for Example 4.3 of the paper.
//!
//! The triangle query `Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)` is contained in
//! the two-out-star query `Q2() :- R(y1,y2), R(y1,y3)`: on every database, the
//! number of (homomorphic) triangles is at most the number of out-stars.  The
//! reverse containment fails, and the decision procedure produces a concrete
//! counterexample database.
//!
//! Run with: `cargo run --example quickstart`

use bag_query_containment::prelude::*;

fn main() {
    let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
    let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();

    println!("Q1 (triangle):  {triangle}");
    println!("Q2 (two-star):  {star}");
    println!();

    // Direction 1: Q1 ⊑ Q2 (Example 4.3, attributed to Eric Vee).
    match decide_containment(&triangle, &star).unwrap() {
        ContainmentAnswer::Contained { inequality } => {
            println!("Q1 ⊑ Q2: CONTAINED (for every database, under bag-set semantics).");
            if let Some(inequality) = inequality {
                println!("  proven by the Shannon-valid max-information inequality");
                println!("  {inequality}");
            }
        }
        other => panic!("unexpected answer: {other:?}"),
    }
    println!();

    // Direction 2: Q2 ⊑ Q1 fails.
    match decide_containment(&star, &triangle).unwrap() {
        ContainmentAnswer::NotContained { witness, .. } => {
            println!("Q2 ⊑ Q1: NOT CONTAINED.");
            if let Some(witness) = witness {
                println!(
                    "  witness database with |hom(Q2,D)| = {} > |hom(Q1,D)| = {}:",
                    witness.hom_q1, witness.hom_q2
                );
                for line in witness.database.to_string().lines() {
                    println!("    {line}");
                }
            }
        }
        other => panic!("unexpected answer: {other:?}"),
    }
    println!();

    // Spot-check the containment on a few concrete databases.
    for facts in [
        "R(1,2). R(2,3). R(3,1).",
        "R(1,1).",
        "R(1,2). R(1,3). R(2,3). R(3,2).",
    ] {
        let db = parse_structure(facts).unwrap();
        let triangles = count_homomorphisms(&triangle, &db);
        let stars = count_homomorphisms(&star, &db);
        println!("on D = {{ {facts} }}: #triangles = {triangles} <= #stars = {stars}");
        assert!(triangles <= stars);
    }
}
