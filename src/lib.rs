//! # bag-query-containment
//!
//! A full reproduction of *Bag Query Containment and Information Theory*
//! (Mahmoud Abo Khamis, Phokion G. Kolaitis, Hung Q. Ngo, Dan Suciu —
//! PODS 2020) as a Rust workspace.  This root crate re-exports the public
//! surface of every member crate so that downstream users can depend on a
//! single package:
//!
//! * [`arith`] — exact big integers and rationals;
//! * [`lp`] — exact sparse revised simplex with warm-startable bases;
//! * [`relational`] — conjunctive queries, structures, homomorphism counting,
//!   bag-set semantics, V-relations and a small query/instance parser;
//! * [`hypergraph`] — Gaifman graphs, acyclicity, chordality, junction trees;
//! * [`entropy`] — entropy vectors, polymatroids, Shannon inequalities,
//!   step/modular/normal functions, Möbius inversion, Lemma 3.7;
//! * [`iip`] — the (max-)information-inequality prover over the Shannon cone,
//!   uniformization (Lemma 5.3) and convex certificates (Theorem 6.1);
//! * [`core`] — the containment inequality (Eq. 8), the decision procedure of
//!   Theorem 3.1, witness extraction, and both reductions of Theorem 2.7;
//! * [`engine`] — the serving layer: query canonicalization, a sharded LRU
//!   decision cache, durable cache snapshots, and the concurrent batch
//!   executor behind the `bqc` CLI;
//! * [`serve`] — the `bqc serve` daemon: a thread-per-connection TCP
//!   listener speaking a newline-delimited protocol, micro-batching
//!   requests into the engine with admission control, and persisting the
//!   decision cache across restarts;
//! * [`mod@bench`] — deterministic workload generators, the differential-oracle
//!   database families, and the `bqc fuzz` campaign harness;
//! * [`obs`] — zero-dependency counters, log2-bucket histograms and
//!   hierarchical spans instrumenting the LP, the separation loop and the
//!   cache, with Chrome-trace / Prometheus-text / JSON exporters (the
//!   `bqc` CLI's `--trace-out` / `--metrics` flags).
//!
//! ## Quickstart
//!
//! ```
//! use bag_query_containment::prelude::*;
//!
//! let triangle = parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap();
//! let star = parse_query("Q2() :- R(u,v), R(u,w)").unwrap();
//! assert!(decide_containment(&triangle, &star).unwrap().is_contained());
//! ```

pub use bqc_arith as arith;
pub use bqc_bench as bench;
pub use bqc_core as core;
pub use bqc_engine as engine;
pub use bqc_entropy as entropy;
pub use bqc_hypergraph as hypergraph;
pub use bqc_iip as iip;
pub use bqc_lp as lp;
pub use bqc_obs as obs;
pub use bqc_relational as relational;
pub use bqc_serve as serve;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use bqc_arith::{int, ratio, BigInt, Rational};
    pub use bqc_core::{
        containment_inequality, decide_containment, decide_containment_in,
        decide_containment_traced, decide_containment_with, exhaustive_containment_check,
        max_iip_to_containment, search_product_witness, sufficient_containment_check,
        verify_witness, witness_from_counterexample, AnswerSummary, ContainmentAnswer,
        DecideContext, DecideOptions, Decision, DecisionPipeline, DecisionTrace,
    };
    pub use bqc_engine::{canonicalize, canonicalize_pair, Engine, EngineOptions, Provenance};
    pub use bqc_entropy::{
        is_modular, is_normal, is_polymatroid, normalize, parity_relation, relation_entropy,
        EntropyExpr, NormalFunction, SetFunction,
    };
    pub use bqc_hypergraph::{junction_tree, Graph, Hypergraph, TreeDecomposition};
    pub use bqc_iip::{
        check_linear_inequality, check_max_inequality, find_convex_certificate, uniformize,
        GammaProver, LinearInequality, MaxInequality,
    };
    pub use bqc_lp::{LpBasis, LpProblem, LpStatus};
    pub use bqc_relational::{
        bag_set_answer, count_homomorphisms, parse_query, parse_structure, Atom, ConjunctiveQuery,
        Structure, VRelation, Value,
    };
    pub use bqc_serve::{ServeOptions, Server};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_pipeline() {
        let q1 = parse_query("Q1() :- R(x,y), S(x,y)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        assert!(decide_containment(&q1, &q2).unwrap().is_contained());
    }
}
