//! `bqc` — batch bag-containment checking from the command line.
//!
//! Reads a workload file of containment questions (one `Q1 … ; Q2 …` pair
//! per line, `#`/`%` comments — see `bqc_engine::workload`), runs the whole
//! batch through the caching engine, and prints a per-question report plus
//! cache, pipeline and timing totals.  `--json` switches to a
//! machine-readable report; `--explain` renders the per-stage decision trace
//! under every freshly computed answer; `--fail-on` turns verdict classes
//! into a non-zero exit status for CI gating.
//!
//! ```text
//! bqc [--json] [--explain] [--fail-on CLASS] [--workers N] [--shards N]
//!     [--capacity N] [--no-witness] [--deadline-ms N] [--max-pivots N]
//!     [--repeat N] [--trace-out FILE] [--metrics-out FILE] [--metrics] FILE
//! bqc serve [--addr HOST:PORT] [--workers N] [--shards N] [--capacity N]
//!           [--no-witness] [--max-conns N] [--queue N] [--batch N]
//!           [--request-deadline-ms N] [--idle-timeout SECS]
//!           [--snapshot FILE] [--snapshot-interval SECS]
//!           [--metrics-out FILE] [--metrics]
//! bqc fuzz [--pairs N] [--seed N] [--self-test] [--deadline-ms N]
//!          [--out DIR] [--metrics-out FILE] [--json]
//! ```
//!
//! Resource governance (`--deadline-ms`, `--max-pivots`,
//! `--request-deadline-ms`): a decision that exhausts its budget soundly
//! answers `unknown` with a resource-exhausted obstruction — never a wrong
//! verdict — and is excluded from the decision cache; see
//! docs/OPERATIONS.md § Budgets and degraded answers.
//!
//! Observability (`bqc-obs`): `--trace-out` records the span tree of the run
//! (pipeline stages, LP solves, separation rounds, pivots) as Chrome
//! trace-event JSON for `chrome://tracing` / Perfetto; `--metrics-out` /
//! `--metrics` export the process-wide counter and histogram registry in the
//! Prometheus text exposition format.  `--explain` additionally renders the
//! recorded spans under each fresh answer.
//!
//! `bqc serve` runs the same engine as a persistent TCP daemon
//! (`bqc_serve`): newline-delimited requests in workload pair syntax,
//! micro-batched across connections, with a durable decision-cache snapshot
//! written on shutdown and restored on start — see `docs/OPERATIONS.md`.
//!
//! `bqc fuzz` generates random containment questions, batches them through
//! the engine, and replays every verdict against the differential counting
//! oracle (`bqc_core::oracle`); discrepancies are minimized and emitted in
//! the adversarial corpus format (`bqc_engine::corpus`).

use bag_query_containment::bench::fuzz::{run_campaign, FuzzConfig};
use bag_query_containment::engine::{
    json_escape, parse_workload, BatchResult, Engine, EngineOptions, Provenance, SnapshotLoad,
    WorkloadEntry,
};
use bag_query_containment::serve::{ServeOptions, Server};
use bqc_core::DecideOptions;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A verdict class that `--fail-on` can turn into a non-zero exit status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FailOn {
    /// Fail when any request is undecided (outside the decidable class).
    Unknown,
    /// Fail when any request is a definite "not contained".
    NotContained,
}

struct Cli {
    file: String,
    json: bool,
    explain: bool,
    workers: usize,
    shards: usize,
    capacity: usize,
    extract_witness: bool,
    repeat: usize,
    fail_on: Vec<FailOn>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    metrics: bool,
    deadline_ms: Option<u64>,
    max_pivots: Option<u64>,
}

const USAGE: &str = "\
usage: bqc [OPTIONS] FILE

Decide every containment question in FILE (one `Q1 … ; Q2 …` per line,
blank lines and #/% comments skipped) through the caching batch engine.

options:
  --json          machine-readable JSON report instead of the text report
  --explain       render the per-stage decision trace (stage, verdict,
                  timing, paper citation) under every fresh answer
  --fail-on CLASS exit with status 3 when any verdict falls in CLASS
                  (`unknown` or `not-contained`; repeatable, also accepts a
                  comma-separated list) — lets CI gate on verdicts
  --workers N     worker threads for the batch fan-out (default: all cores)
  --shards N      decision-cache shards (default 8)
  --capacity N    LRU capacity per cache shard (default 1024)
  --no-witness    skip materializing non-containment witnesses
  --deadline-ms N per-decision wall-clock budget: a question still undecided
                  after N ms soundly answers `unknown` with a
                  resource-exhausted obstruction (never a wrong verdict;
                  never cached)
  --max-pivots N  per-decision simplex pivot budget, same degraded-answer
                  contract as --deadline-ms
  --repeat N      run the workload N times back to back (cache warm-up demo)
  --trace-out F   record spans (pipeline stages, LP solves, pivots) during
                  the run and write Chrome trace-event JSON to F — open it
                  in chrome://tracing or Perfetto
  --metrics-out F write the metrics registry (counters + histograms) to F in
                  the Prometheus text exposition format
  --metrics       print the same exposition to stdout after the report
                  (prefer --metrics-out alongside --json: stdout stays JSON)
  --help          this message

subcommands:
  serve           persistent TCP daemon over the same engine, with a durable
                  decision-cache snapshot across restarts
                  (`bqc serve --help` for its options)
  fuzz            differential fuzzing: generated pairs through the engine,
                  every verdict replayed against the counting oracle
                  (`bqc fuzz --help` for its options)

exit status: 0 on success, 1 on usage/IO/parse errors, 2 when the workload
ran but some requests failed with decision errors (reported per line), 3
when --fail-on matched at least one verdict (and no decision error occurred).";

const SERVE_USAGE: &str = "\
usage: bqc serve [OPTIONS]

Run the containment engine as a persistent TCP daemon.  Clients send one
request per line — the workload pair syntax (`Q1 … ; Q2 …`, exactly what a
.bqc file holds) or a `!`-prefixed admin command (!ping, !stats, !snapshot,
!shutdown, !quit) — and get one response line per request.  Concurrent
requests are micro-batched through the same caching engine the batch CLI
uses, so canonical deduplication and cached verdicts work across clients.
Full wire-protocol and operations reference: docs/OPERATIONS.md.

The daemon shuts down gracefully on SIGTERM, on the !shutdown admin
command, or when its stdin closes; admitted requests are drained and, with
--snapshot, the decision cache is written durably so the next start is
warm.

options:
  --addr H:P      listen address (default 127.0.0.1:7411; port 0 asks the
                  OS for a free port, read it back from the listening line)
  --workers N     worker threads per micro-batch (default: all cores)
  --shards N      decision-cache shards (default 8)
  --capacity N    LRU capacity per cache shard (default 1024)
  --no-witness    skip materializing non-containment witnesses
  --max-conns N   connection cap; further clients get `busy connections …`
                  (default 64)
  --queue N       bound on admitted-but-undecided requests; a full queue
                  answers `busy queue …` (default 1024)
  --batch N       largest micro-batch handed to the engine (default 64)
  --request-deadline-ms N
                  per-request decision budget: a question still undecided
                  after N ms of decision work answers
                  `ok verdict=unknown obstruction=resource-exhausted …`
                  (sound, never cached); queue wait does not count
  --idle-timeout SECS
                  close connections idle for SECS seconds with
                  `error timeout …`, freeing their --max-conns slot; partial
                  request lines do not reset the clock (default 300;
                  0 disables)
  --snapshot F    durable decision-cache snapshot file: restored (or
                  quarantined if corrupt) at start, written atomically at
                  shutdown and on the !snapshot admin command
  --snapshot-interval SECS
                  also write the snapshot every SECS seconds (requires
                  --snapshot)
  --metrics-out F write the metrics registry to F in the Prometheus text
                  exposition format at shutdown
  --metrics       print the same exposition to stdout at shutdown
  --help          this message

exit status: 0 after a graceful shutdown, 1 on usage/bind/snapshot-write
errors.";

const FUZZ_USAGE: &str = "\
usage: bqc fuzz [OPTIONS]

Generate random containment questions, decide them in batches through the
caching engine, and replay every verdict against the differential counting
oracle on a per-pair database family: a `contained` verdict contradicted by
explicit counts is a soundness bug (Fact 3.2), refutations are confirmed by
family separation or independent witness re-counting, and `unknown`
obstructions are recomputed from the containing query's structure.  Each
discrepancy is shrunk (drop atoms, identify variables) while it persists and
emitted as a ready-to-check-in corpus case (see examples/corpus/).

options:
  --pairs N     number of generated pairs (default 10000)
  --seed N      campaign seed (default 0xbac5eed; decimal or 0x-hex)
  --self-test   flip one family-separable refutation to `contained` before
                checking: the oracle must catch and minimize the injected
                bug (exit 0 if caught, 4 if missed)
  --deadline-ms N
                replay the campaign under a per-decision deadline of N ms:
                budget-exhausted answers must degrade to `unknown` (never a
                flipped verdict) and re-deciding each one without the budget
                must satisfy the oracle
  --out DIR     write each minimized repro to DIR/fuzz-<seed>-<pair>.bqc
                instead of printing it
  --metrics-out F  write the campaign's metrics registry (LP pivots, cache
                hits, separation rounds, …) to F in the Prometheus text
                exposition format
  --json        machine-readable JSON report instead of the text report
  --help        this message

exit status: 0 when the campaign passed (no discrepancy; with --self-test,
the injected bug was caught and nothing else was), 1 on usage/IO errors, 4
when a verdict/count discrepancy was found (or an injected one was missed).";

/// Why argument parsing did not yield a runnable configuration.
enum CliExit {
    /// `--help` was requested: print usage to stdout, exit 0.
    Help,
    /// Bad arguments: print the message to stderr, exit 1.
    Usage(String),
}

fn parse_fail_on(value: &str, into: &mut Vec<FailOn>) -> Result<(), CliExit> {
    for part in value.split(',') {
        let class = match part.trim() {
            "unknown" => FailOn::Unknown,
            "not-contained" => FailOn::NotContained,
            other => {
                return Err(CliExit::Usage(format!(
                    "--fail-on expects `unknown` or `not-contained`, got {other:?}"
                )))
            }
        };
        if !into.contains(&class) {
            into.push(class);
        }
    }
    Ok(())
}

fn parse_args(args: &[String]) -> Result<Cli, CliExit> {
    let mut cli = Cli {
        file: String::new(),
        json: false,
        explain: false,
        workers: 0,
        shards: 8,
        capacity: 1024,
        extract_witness: true,
        repeat: 1,
        fail_on: Vec::new(),
        trace_out: None,
        metrics_out: None,
        metrics: false,
        deadline_ms: None,
        max_pivots: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<usize, CliExit> {
            it.next()
                .ok_or_else(|| CliExit::Usage(format!("{name} requires a value")))?
                .parse::<usize>()
                .map_err(|_| CliExit::Usage(format!("{name} requires a non-negative integer")))
        };
        match arg.as_str() {
            "--json" => cli.json = true,
            "--explain" => cli.explain = true,
            "--deadline-ms" => cli.deadline_ms = Some(numeric("--deadline-ms")? as u64),
            "--max-pivots" => cli.max_pivots = Some(numeric("--max-pivots")? as u64),
            "--fail-on" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliExit::Usage("--fail-on requires a value".into()))?;
                parse_fail_on(value, &mut cli.fail_on)?;
            }
            "--workers" => cli.workers = numeric("--workers")?,
            "--shards" => cli.shards = numeric("--shards")?.max(1),
            "--capacity" => cli.capacity = numeric("--capacity")?.max(1),
            "--no-witness" => cli.extract_witness = false,
            "--repeat" => cli.repeat = numeric("--repeat")?.max(1),
            "--trace-out" => {
                cli.trace_out = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--trace-out requires a file".into()))?
                        .clone(),
                );
            }
            "--metrics-out" => {
                cli.metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--metrics-out requires a file".into()))?
                        .clone(),
                );
            }
            "--metrics" => cli.metrics = true,
            "--help" | "-h" => return Err(CliExit::Help),
            other if other.starts_with('-') => {
                return Err(CliExit::Usage(format!("unknown option {other}")))
            }
            other if cli.file.is_empty() => cli.file = other.to_string(),
            _ => {
                return Err(CliExit::Usage(
                    "exactly one workload FILE is expected".into(),
                ))
            }
        }
    }
    if cli.file.is_empty() {
        return Err(CliExit::Usage(USAGE.to_string()));
    }
    Ok(cli)
}

struct ServeCli {
    addr: String,
    workers: usize,
    shards: usize,
    capacity: usize,
    extract_witness: bool,
    max_conns: usize,
    queue_depth: usize,
    batch_max: usize,
    snapshot: Option<String>,
    snapshot_interval: Option<u64>,
    metrics_out: Option<String>,
    metrics: bool,
    request_deadline_ms: Option<u64>,
    idle_timeout_secs: u64,
}

fn parse_serve_args(args: &[String]) -> Result<ServeCli, CliExit> {
    let mut cli = ServeCli {
        addr: "127.0.0.1:7411".to_string(),
        workers: 0,
        shards: 8,
        capacity: 1024,
        extract_witness: true,
        max_conns: 64,
        queue_depth: 1024,
        batch_max: 64,
        snapshot: None,
        snapshot_interval: None,
        metrics_out: None,
        metrics: false,
        request_deadline_ms: None,
        idle_timeout_secs: 300,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<usize, CliExit> {
            it.next()
                .ok_or_else(|| CliExit::Usage(format!("{name} requires a value")))?
                .parse::<usize>()
                .map_err(|_| CliExit::Usage(format!("{name} requires a non-negative integer")))
        };
        match arg.as_str() {
            "--addr" => {
                cli.addr = it
                    .next()
                    .ok_or_else(|| CliExit::Usage("--addr requires HOST:PORT".into()))?
                    .clone();
            }
            "--workers" => cli.workers = numeric("--workers")?,
            "--shards" => cli.shards = numeric("--shards")?.max(1),
            "--capacity" => cli.capacity = numeric("--capacity")?.max(1),
            "--no-witness" => cli.extract_witness = false,
            "--max-conns" => cli.max_conns = numeric("--max-conns")?.max(1),
            "--queue" => cli.queue_depth = numeric("--queue")?.max(1),
            "--batch" => cli.batch_max = numeric("--batch")?.max(1),
            "--request-deadline-ms" => {
                cli.request_deadline_ms = Some(numeric("--request-deadline-ms")? as u64);
            }
            "--idle-timeout" => cli.idle_timeout_secs = numeric("--idle-timeout")? as u64,
            "--snapshot" => {
                cli.snapshot = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--snapshot requires a file".into()))?
                        .clone(),
                );
            }
            "--snapshot-interval" => {
                cli.snapshot_interval = Some(numeric("--snapshot-interval")?.max(1) as u64);
            }
            "--metrics-out" => {
                cli.metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--metrics-out requires a file".into()))?
                        .clone(),
                );
            }
            "--metrics" => cli.metrics = true,
            "--help" | "-h" => return Err(CliExit::Help),
            other => return Err(CliExit::Usage(format!("unknown serve option {other}"))),
        }
    }
    if cli.snapshot_interval.is_some() && cli.snapshot.is_none() {
        return Err(CliExit::Usage(
            "--snapshot-interval requires --snapshot".into(),
        ));
    }
    Ok(cli)
}

fn serve_main(args: &[String]) -> ExitCode {
    let cli = match parse_serve_args(args) {
        Ok(cli) => cli,
        Err(CliExit::Help) => {
            println!("{SERVE_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(CliExit::Usage(message)) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // --request-deadline-ms is pure engine configuration: each decision's
    // budget clock starts when the pipeline picks the request up, so queue
    // wait under load does not eat into the deadline.
    let mut decide = DecideOptions {
        extract_witness: cli.extract_witness,
        ..DecideOptions::default()
    };
    decide.budget.deadline = cli.request_deadline_ms.map(Duration::from_millis);
    let engine = Arc::new(Engine::new(EngineOptions {
        cache_shards: cli.shards,
        shard_capacity: cli.capacity,
        workers: cli.workers,
        decide,
    }));
    if let Some(path) = &cli.snapshot {
        match engine.load_snapshot(std::path::Path::new(path)) {
            SnapshotLoad::Restored { entries, skeletons } => println!(
                "bqc serve: restored {entries} cached decisions \
                 ({skeletons} warm skeleton sizes) from {path}"
            ),
            SnapshotLoad::ColdStart => {
                println!("bqc serve: no snapshot at {path}, starting cold");
            }
            SnapshotLoad::Quarantined {
                error,
                quarantined_to,
            } => match quarantined_to {
                Some(bad) => eprintln!(
                    "bqc serve: snapshot {path} rejected ({error}); \
                         quarantined to {}, starting cold",
                    bad.display()
                ),
                None => eprintln!("bqc serve: snapshot {path} rejected ({error}); starting cold"),
            },
        }
    }
    let server = match Server::bind(
        Arc::clone(&engine),
        ServeOptions {
            addr: cli.addr.clone(),
            max_conns: cli.max_conns,
            queue_depth: cli.queue_depth,
            batch_max: cli.batch_max,
            snapshot: cli.snapshot.as_ref().map(std::path::PathBuf::from),
            snapshot_interval: cli.snapshot_interval.map(Duration::from_secs),
            idle_timeout: match cli.idle_timeout_secs {
                0 => None,
                secs => Some(Duration::from_secs(secs)),
            },
            handle_sigterm: true,
        },
    ) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bqc serve: cannot bind {}: {error}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The scripted form of this line is load-bearing: serve_smoke.sh
        // parses the actual port out of it when binding port 0.
        Ok(addr) => println!("bqc serve: listening on {addr}"),
        Err(_) => println!("bqc serve: listening on {}", cli.addr),
    }
    // Make the listening line visible to pipes immediately; the daemon may
    // now run for hours without printing anything else.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Treat stdin close as a shutdown request: `bqc serve < /dev/null`-style
    // supervision (or the parent closing the pipe) stops the daemon cleanly.
    let stdin_handle = server.shutdown_handle();
    std::thread::Builder::new()
        .name("bqc-serve-stdin".to_string())
        .spawn(move || {
            use std::io::Read as _;
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin().lock();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stdin_handle.shutdown();
        })
        .expect("spawning stdin watcher");

    let summary = match server.run() {
        Ok(summary) => summary,
        Err(error) => {
            eprintln!("bqc serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bqc serve: shutdown complete ({} connections, {} requests)",
        summary.connections, summary.requests
    );
    if let (Some(saved), Some(path)) = (&summary.snapshot, &cli.snapshot) {
        println!(
            "bqc serve: snapshot written ({} entries, {} bytes) to {path}",
            saved.entries, saved.bytes
        );
    }
    let metrics = bqc_obs::snapshot();
    if let Some(path) = &cli.metrics_out {
        if let Err(error) = std::fs::write(path, bqc_obs::prometheus_text(&metrics)) {
            eprintln!("bqc serve: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    if cli.metrics {
        print!("{}", bqc_obs::prometheus_text(&metrics));
    }
    ExitCode::SUCCESS
}

struct FuzzCli {
    pairs: usize,
    seed: u64,
    self_test: bool,
    deadline_ms: Option<u64>,
    out: Option<String>,
    metrics_out: Option<String>,
    json: bool,
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzCli, CliExit> {
    let mut cli = FuzzCli {
        pairs: 10_000,
        seed: 0x0bac_5eed,
        self_test: false,
        deadline_ms: None,
        out: None,
        metrics_out: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pairs" => {
                cli.pairs = it
                    .next()
                    .ok_or_else(|| CliExit::Usage("--pairs requires a value".into()))?
                    .parse::<usize>()
                    .map_err(|_| {
                        CliExit::Usage("--pairs requires a non-negative integer".into())
                    })?;
            }
            "--seed" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliExit::Usage("--seed requires a value".into()))?;
                let parsed = match value.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => value.parse::<u64>(),
                };
                cli.seed = parsed
                    .map_err(|_| CliExit::Usage("--seed requires an integer (or 0x-hex)".into()))?;
            }
            "--self-test" => cli.self_test = true,
            "--deadline-ms" => {
                cli.deadline_ms = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--deadline-ms requires a value".into()))?
                        .parse::<u64>()
                        .map_err(|_| {
                            CliExit::Usage("--deadline-ms requires a non-negative integer".into())
                        })?,
                );
            }
            "--out" => {
                cli.out = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--out requires a directory".into()))?
                        .clone(),
                );
            }
            "--metrics-out" => {
                cli.metrics_out = Some(
                    it.next()
                        .ok_or_else(|| CliExit::Usage("--metrics-out requires a file".into()))?
                        .clone(),
                );
            }
            "--json" => cli.json = true,
            "--help" | "-h" => return Err(CliExit::Help),
            other => return Err(CliExit::Usage(format!("unknown fuzz option {other}"))),
        }
    }
    Ok(cli)
}

fn fuzz_main(args: &[String]) -> ExitCode {
    let cli = match parse_fuzz_args(args) {
        Ok(cli) => cli,
        Err(CliExit::Help) => {
            println!("{FUZZ_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(CliExit::Usage(message)) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let config = FuzzConfig {
        pairs: cli.pairs,
        seed: cli.seed,
        self_test: cli.self_test,
        deadline: cli.deadline_ms.map(Duration::from_millis),
        ..FuzzConfig::default()
    };
    let start = Instant::now();
    let report = run_campaign(&config, &mut |done| {
        if !cli.json && (done % 2048 == 0 || done == config.pairs) {
            eprintln!("bqc fuzz: {done}/{} pairs checked", config.pairs);
        }
    });
    let wall_micros = start.elapsed().as_micros() as u64;
    let metrics = bqc_obs::snapshot();
    if let Some(path) = &cli.metrics_out {
        if let Err(error) = std::fs::write(path, bqc_obs::prometheus_text(&metrics)) {
            eprintln!("bqc fuzz: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }

    // Persist or print the minimized repros before the summary.
    let mut repro_paths: Vec<String> = Vec::new();
    if let Some(dir) = &cli.out {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("bqc fuzz: cannot create {dir}: {error}");
            return ExitCode::FAILURE;
        }
        for finding in &report.findings {
            let path = format!("{dir}/fuzz-{:x}-{}.bqc", config.seed, finding.index);
            if let Err(error) = std::fs::write(&path, &finding.repro) {
                eprintln!("bqc fuzz: cannot write {path}: {error}");
                return ExitCode::FAILURE;
            }
            repro_paths.push(path);
        }
    }

    if cli.json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"pairs\": {}, \"seed\": \"{:#x}\", \"self_test\": {},\n",
            report.pairs, config.seed, cli.self_test
        ));
        out.push_str(&format!(
            "  \"verdicts\": {{\"contained\": {}, \"not_contained\": {}, \"unknown\": {}, \
             \"budget_exhausted\": {}, \"errors\": {}}},\n",
            report.contained,
            report.not_contained,
            report.unknown,
            report.budget_exhausted,
            report.errors
        ));
        out.push_str(&format!(
            "  \"refutations\": {{\"confirmed\": {}, \"unconfirmed\": {}}},\n",
            report.confirmed_refutations, report.unconfirmed_refutations
        ));
        out.push_str("  \"findings\": [\n");
        for (i, finding) in report.findings.iter().enumerate() {
            let comma = if i + 1 == report.findings.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"pair\": {}, \"injected\": {}, \"discrepancies\": {}, \
                 \"repro\": \"{}\"}}{comma}\n",
                finding.index,
                finding.injected,
                finding.discrepancies.len(),
                json_escape(&finding.repro)
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"passed\": {}, \"wall_micros\": {wall_micros}\n}}",
            report.passed()
        ));
        println!("{out}");
    } else {
        println!(
            "bqc fuzz: {} pairs (seed {:#x}): {} contained, {} not contained ({} confirmed, \
             {} unconfirmed), {} unknown, {} errors",
            report.pairs,
            config.seed,
            report.contained,
            report.not_contained,
            report.confirmed_refutations,
            report.unconfirmed_refutations,
            report.unknown,
            report.errors
        );
        if cli.deadline_ms.is_some() {
            println!(
                "budget: {} of {} answers degraded to resource-exhausted unknown; \
                 each was re-decided without a budget and held to the oracle",
                report.budget_exhausted, report.pairs
            );
        }
        let count = |name: &str| metrics.counter(name).unwrap_or(0);
        println!(
            "engine: {} LP solves ({} pivots, {} reinversions), {} separation rounds, \
             {} gamma-probes, {} fresh / {} cached / {} deduped decisions",
            count("bqc_lp_solves_total"),
            count("bqc_lp_pivots_total"),
            count("bqc_lp_reinversions_total"),
            count("bqc_entropy_separation_scans_total"),
            count("bqc_iip_probes_total"),
            count("bqc_engine_fresh_decisions_total"),
            count("bqc_engine_cached_hits_total"),
            count("bqc_engine_deduped_total"),
        );
        for (i, finding) in report.findings.iter().enumerate() {
            println!(
                "finding #{i} (pair {}{}):",
                finding.index,
                if finding.injected {
                    ", self-test injection"
                } else {
                    ""
                }
            );
            for d in &finding.discrepancies {
                println!("  {d}");
            }
            match repro_paths.get(i) {
                Some(path) => println!("  minimized repro written to {path}"),
                None => {
                    println!("  minimized repro (corpus format):");
                    for line in finding.repro.lines() {
                        println!("    {line}");
                    }
                }
            }
        }
        if cli.self_test {
            match report.injected_at {
                Some(index) if report.passed() => println!(
                    "self-test: injected verdict flip at pair {index} was caught and minimized"
                ),
                Some(index) => {
                    println!("self-test: injected verdict flip at pair {index} was NOT caught")
                }
                None => println!(
                    "self-test: no family-separable refutation to flip (campaign too small?)"
                ),
            }
        }
        println!(
            "result: {} ({:.3}s)",
            if report.passed() { "PASS" } else { "FAIL" },
            wall_micros as f64 / 1e6
        );
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(CliExit::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(CliExit::Usage(message)) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&cli.file) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("bqc: cannot read {}: {error}", cli.file);
            return ExitCode::FAILURE;
        }
    };
    let entries = match parse_workload(&text) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("bqc: {}: {error}", cli.file);
            return ExitCode::FAILURE;
        }
    };
    let mut decide = DecideOptions {
        extract_witness: cli.extract_witness,
        ..DecideOptions::default()
    };
    decide.budget.deadline = cli.deadline_ms.map(Duration::from_millis);
    decide.budget.max_pivots = cli.max_pivots;
    let engine = Engine::new(EngineOptions {
        cache_shards: cli.shards,
        shard_capacity: cli.capacity,
        workers: cli.workers,
        decide,
    });
    let requests: Vec<_> = entries
        .iter()
        .map(|e| (e.q1.clone(), e.q2.clone()))
        .collect();

    let tracing = cli.explain || cli.trace_out.is_some();
    if tracing {
        bqc_obs::start_tracing();
    }
    let start = Instant::now();
    let mut runs: Vec<Vec<BatchResult>> = Vec::with_capacity(cli.repeat);
    for _ in 0..cli.repeat {
        runs.push(engine.decide_batch(&requests));
    }
    let wall_micros = start.elapsed().as_micros() as u64;
    let trace = tracing.then(bqc_obs::stop_tracing);

    if let Some(path) = &cli.trace_out {
        let snapshot = trace.as_ref().expect("tracing was started");
        if let Err(error) = std::fs::write(path, bqc_obs::chrome_trace_json(snapshot)) {
            eprintln!("bqc: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    let metrics = bqc_obs::snapshot();
    if let Some(path) = &cli.metrics_out {
        if let Err(error) = std::fs::write(path, bqc_obs::prometheus_text(&metrics)) {
            eprintln!("bqc: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }

    if cli.json {
        print_json(&cli, &engine, &entries, &runs, &metrics, wall_micros);
    } else {
        print_text(&cli, &engine, &entries, &runs, trace.as_ref(), wall_micros);
    }
    if cli.metrics {
        print!("{}", bqc_obs::prometheus_text(&metrics));
    }
    // A run with per-request decision errors is a failed run for scripts,
    // even though the report itself was printed; the --fail-on verdict gate
    // is reported with its own status so CI can tell the two apart.
    let any_error = runs.iter().flatten().any(|result| result.answer.is_err());
    if any_error {
        return ExitCode::from(2);
    }
    let gate_hit = runs.iter().flatten().any(|result| match &result.answer {
        Ok(summary) => cli.fail_on.iter().any(|class| match class {
            FailOn::Unknown => summary.is_unknown(),
            FailOn::NotContained => summary.is_not_contained(),
        }),
        Err(_) => false,
    });
    if gate_hit {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Distinct canonical pairs in one batch, counted by provenance (the engine
/// dedups by full canonical key text, so every non-deduped request is the
/// leader of exactly one distinct pair — hashes alone could collide).
fn distinct_pairs(results: &[BatchResult]) -> usize {
    results
        .iter()
        .filter(|r| r.provenance != Provenance::DedupedInFlight)
        .count()
}

/// Renders the recorded spans of one fresh decision: the `decide` span whose
/// `pair` annotation matches `pair_hash`, plus everything nested inside it on
/// the same thread, as an indented tree.  High-frequency instant markers
/// (pivots, separation rounds) are aggregated into per-name counts rather
/// than listed.  `used` consumes matched spans so a pair computed fresh more
/// than once (LRU eviction under `--repeat`) maps to successive spans.
fn print_decision_spans(trace: &bqc_obs::TraceSnapshot, pair_hash: u64, used: &mut [bool]) {
    let hash_text = format!("{pair_hash:016x}");
    let root_idx = trace.events.iter().enumerate().position(|(i, e)| {
        !used[i]
            && e.name == "decide"
            && e.args.iter().any(|(k, v)| *k == "pair" && *v == hash_text)
    });
    let Some(root_idx) = root_idx else { return };
    used[root_idx] = true;
    let root = &trace.events[root_idx];
    let end = root.start_ns + root.dur_ns;
    let mut members: Vec<usize> = trace
        .events
        .iter()
        .enumerate()
        .filter(|(i, e)| {
            *i == root_idx
                || (e.tid == root.tid
                    && e.depth > root.depth
                    && e.start_ns >= root.start_ns
                    && e.start_ns <= end)
        })
        .map(|(i, _)| i)
        .collect();
    // Completion order → start order, parents before their children on ties.
    members.sort_by_key(|&i| {
        let e = &trace.events[i];
        (e.start_ns, std::cmp::Reverse(e.dur_ns))
    });
    let mut markers: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    println!("  spans:");
    for i in members {
        let e = &trace.events[i];
        match e.kind {
            bqc_obs::TraceEventKind::Complete => {
                let indent = 4 + 2 * (e.depth - root.depth) as usize;
                println!("{:indent$}{} {:.3}ms", "", e.name, e.dur_ns as f64 / 1e6,);
            }
            bqc_obs::TraceEventKind::Instant => *markers.entry(e.name).or_insert(0) += 1,
        }
    }
    if !markers.is_empty() {
        let rendered: Vec<String> = markers
            .iter()
            .map(|(name, count)| format!("{name} x{count}"))
            .collect();
        println!("    markers: {}", rendered.join(", "));
    }
}

fn print_text(
    cli: &Cli,
    engine: &Engine,
    entries: &[WorkloadEntry],
    runs: &[Vec<BatchResult>],
    trace: Option<&bqc_obs::TraceSnapshot>,
    wall_micros: u64,
) {
    let mut spans_used = vec![false; trace.map_or(0, |t| t.events.len())];
    let first = &runs[0];
    println!(
        "bqc: {} requests ({} distinct canonical pairs), {} run(s)",
        entries.len(),
        distinct_pairs(first),
        runs.len()
    );
    for (run_index, results) in runs.iter().enumerate() {
        if runs.len() > 1 {
            println!("-- run {} --", run_index + 1);
        }
        for (entry, result) in entries.iter().zip(results) {
            let verdict = match &result.answer {
                Ok(summary) => summary.to_string(),
                Err(error) => format!("error: {error}"),
            };
            println!(
                "[line {:>3}] {:<8} {:>9.3}ms  {} vs {}: {verdict}",
                entry.line,
                result.provenance.to_string(),
                result.micros as f64 / 1000.0,
                entry.q1.name,
                entry.q2.name,
            );
            if cli.explain {
                if let Some(decision_trace) = &result.trace {
                    print!("{decision_trace}");
                }
                if let (Some(spans), Some(_)) = (trace, &result.trace) {
                    print_decision_spans(spans, result.pair_hash, &mut spans_used);
                }
            }
        }
    }
    let mut contained = 0usize;
    let mut not_contained = 0usize;
    let mut undecided = 0usize;
    let mut errors = 0usize;
    for result in runs.iter().flatten() {
        match &result.answer {
            Ok(s) if s.is_contained() => contained += 1,
            Ok(s) if s.is_not_contained() => not_contained += 1,
            Ok(_) => undecided += 1,
            Err(_) => errors += 1,
        }
    }
    println!(
        "verdicts: {contained} contained, {not_contained} not contained, \
         {undecided} undecided, {errors} errors"
    );
    let stats = engine.cache_stats();
    println!(
        "cache: {} hits, {} restored hits, {} misses, {} evictions, {} entries \
         ({} shards x {})",
        stats.hits,
        stats.restored_hits,
        stats.misses,
        stats.evictions,
        stats.entries,
        cli.shards,
        cli.capacity
    );
    let pipeline = engine.pipeline_stats();
    let short = engine.short_circuit_stats();
    let traffic = pipeline.iter().map(|s| s.decided).sum::<u64>() + short.total();
    let pct = |n: u64| {
        if traffic == 0 {
            0.0
        } else {
            100.0 * n as f64 / traffic as f64
        }
    };
    if !pipeline.is_empty() {
        println!("pipeline (per stage, % of {traffic} total decisions served):");
        for stage in &pipeline {
            println!(
                "  {:<22} {:>4} decided ({:>5.1}%), {:>4} continued, {:>4} inapplicable, \
                 {:>9.3}ms",
                stage.stage,
                stage.decided,
                pct(stage.decided),
                stage.continued,
                stage.inapplicable,
                stage.micros as f64 / 1000.0
            );
        }
        println!(
            "  {:<22} {:>4} decided ({:>5.1}%): {} cache hits + {} restored + \
             {} in-flight dedups",
            "short-circuited",
            short.total(),
            pct(short.total()),
            short.cached,
            short.restored,
            short.deduped
        );
    }
    println!("wall time: {:.3}ms", wall_micros as f64 / 1000.0);
}

fn print_json(
    cli: &Cli,
    engine: &Engine,
    entries: &[WorkloadEntry],
    runs: &[Vec<BatchResult>],
    metrics: &bqc_obs::MetricsSnapshot,
    wall_micros: u64,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"workload\": \"{}\",\n  \"requests\": {},\n  \"runs\": {},\n",
        json_escape(&cli.file),
        entries.len(),
        runs.len()
    ));
    out.push_str(&format!(
        "  \"distinct_pairs\": {},\n  \"results\": [\n",
        distinct_pairs(&runs[0])
    ));
    let mut first_row = true;
    for (run_index, results) in runs.iter().enumerate() {
        for (entry, result) in entries.iter().zip(results) {
            if !first_row {
                out.push_str(",\n");
            }
            first_row = false;
            let (verdict, detail) = match &result.answer {
                Ok(summary) => (summary.verdict().to_string(), summary.to_string()),
                Err(error) => ("error".to_string(), error.to_string()),
            };
            out.push_str(&format!(
                "    {{\"run\": {}, \"line\": {}, \"q1\": \"{}\", \"q2\": \"{}\", \
                 \"verdict\": \"{}\", \"detail\": \"{}\", \"provenance\": \"{}\", \
                 \"pair_hash\": \"{:016x}\", \"micros\": {}",
                run_index + 1,
                entry.line,
                json_escape(&entry.q1.to_string()),
                json_escape(&entry.q2.to_string()),
                json_escape(&verdict),
                json_escape(&detail),
                result.provenance,
                result.pair_hash,
                result.micros
            ));
            if let Some(trace) = &result.trace {
                out.push_str(&format!(
                    ", \"decided_by\": \"{}\", \"trace\": [",
                    json_escape(trace.decided_by().unwrap_or(""))
                ));
                for (i, report) in trace.reports().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"stage\": \"{}\", \"status\": \"{}\", \"citation\": \"{}\", \
                         \"micros\": {}",
                        json_escape(report.stage),
                        json_escape(report.status.label()),
                        json_escape(report.citation),
                        report.micros
                    ));
                    if let Some(note) = &report.note {
                        out.push_str(&format!(", \"note\": \"{}\"", json_escape(note)));
                    }
                    out.push('}');
                }
                out.push(']');
            }
            out.push('}');
        }
    }
    out.push_str("\n  ],\n");
    let stats = engine.cache_stats();
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"restored_hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"entries\": {}}},\n",
        stats.hits, stats.restored_hits, stats.misses, stats.evictions, stats.entries
    ));
    let by_provenance = |p: Provenance| {
        runs.iter()
            .flatten()
            .filter(|result| result.provenance == p)
            .count()
    };
    out.push_str(&format!(
        "  \"provenance\": {{\"fresh\": {}, \"cached\": {}, \"deduped\": {}}},\n",
        by_provenance(Provenance::Fresh),
        by_provenance(Provenance::CachedHit),
        by_provenance(Provenance::DedupedInFlight)
    ));
    let short = engine.short_circuit_stats();
    out.push_str(&format!(
        "  \"short_circuited\": {{\"cached\": {}, \"restored\": {}, \"deduped\": {}}},\n",
        short.cached, short.restored, short.deduped
    ));
    out.push_str("  \"pipeline\": [\n");
    let pipeline = engine.pipeline_stats();
    for (i, stage) in pipeline.iter().enumerate() {
        let comma = if i + 1 == pipeline.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"decided\": {}, \"continued\": {}, \
             \"inapplicable\": {}, \"micros\": {}}}{comma}\n",
            json_escape(stage.stage),
            stage.decided,
            stage.continued,
            stage.inapplicable,
            stage.micros
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs\": {},\n",
        bqc_obs::json_snapshot(metrics)
    ));
    out.push_str(&format!("  \"wall_micros\": {wall_micros}\n}}"));
    println!("{out}");
}
