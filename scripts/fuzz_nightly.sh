#!/usr/bin/env bash
# Nightly-scale differential fuzzing entry point.
#
# CI runs a bounded 10k-pair campaign on every PR (deterministic seed,
# minutes); this script is the long-haul version: millions of generated
# pairs through the batch engine, every verdict replayed against the
# counting oracle, minimized repros collected as ready-to-check-in corpus
# cases.  Run it from cron / a nightly job, or by hand before a release:
#
#   scripts/fuzz_nightly.sh                      # 1M pairs, date-derived seed
#   scripts/fuzz_nightly.sh --pairs 10000000     # go bigger
#   scripts/fuzz_nightly.sh --seed 0xdecafbad    # replay a specific campaign
#
# Every discrepancy lands in target/fuzz-corpus/ as a corpus-format .bqc
# file: review it, add a comment line, and move it into examples/corpus/ —
# the corpus runner (tests/corpus_runner.rs, listed in CORPUS_FILES) will
# pin it forever after.
#
# The campaign is deterministic in (--pairs, --seed): rerunning with the
# values printed below reproduces every finding bit for bit.
set -euo pipefail
cd "$(dirname "$0")/.."

PAIRS=1000000
# Derived from the date so consecutive nights explore different pair
# streams while any single night stays reproducible from its log line.
SEED="0x$(date -u +%Y%m%d)"
OUT="target/fuzz-corpus"
EXTRA=()

while [ $# -gt 0 ]; do
  case "$1" in
    --pairs) PAIRS="$2"; shift 2 ;;
    --seed)  SEED="$2";  shift 2 ;;
    --out)   OUT="$2";   shift 2 ;;
    *)       EXTRA+=("$1"); shift ;;
  esac
done

echo "fuzz_nightly: $PAIRS pairs, seed $SEED, repros to $OUT"

# Self-test first: prove the oracle still catches an injected bug before
# trusting a clean run of the big campaign.
cargo run --release --bin bqc -- fuzz --pairs 500 --seed "$SEED" --self-test

# The campaign also writes its metric registry (LP pivots, cache hit rates,
# separation rounds, Scalar promotions) next to the repros: a night-to-night
# record of where the decision stack spends its work.
mkdir -p "$OUT"
exec cargo run --release --bin bqc -- \
  fuzz --pairs "$PAIRS" --seed "$SEED" --out "$OUT" \
  --metrics-out "$OUT/metrics-$SEED.txt" "${EXTRA[@]+"${EXTRA[@]}"}"
