#!/usr/bin/env bash
# The CI bench-regression gate, runnable locally too.
#
#   scripts/bench_compare.sh           run quick benches, compare to BENCH_PR5.json
#   scripts/bench_compare.sh --rebase  run quick benches, rewrite BENCH_PR5.json
#
# The quick-mode criterion run (BQC_BENCH_QUICK=1) appends per-scenario median
# records to a JSONL file (BQC_BENCH_JSON); `bench_compare collect` turns that
# into the canonical document and `bench_compare compare` enforces the 25%
# regression threshold plus five machine-independent speedup floors:
#
#   * the revised simplex >= 5x the dense oracle on the n=5 Shannon-cone
#     program;
#   * the warm lazy-separation prover >= 5x the eager materialized cone on
#     the n=6 chain validity check;
#   * the counting refuter >= 5x the LP-only path on the refutable
#     parallel-blocks workload (m=3, a Γ_6 refutation avoided by counting);
#   * the staged pipeline (with trace collection) within 10% of the
#     pre-refactor direct path on the LP-bound k=6 cycle-in-path scenario
#     (legacy/pipeline >= 0.909, i.e. pipeline <= 1.1x legacy);
#   * live bqc-obs metric probes within 5% of the same run with the runtime
#     kill switch off, on the cold-engine stage-mix batch
#     (disabled/enabled >= 0.952, i.e. enabled <= 1.05x disabled);
#   * resource budgets armed-but-never-exhausted within 5% of the unlimited
#     run on the LP-bound k=6 cycle-in-path scenario
#     (off/on >= 0.952, i.e. on <= 1.05x off);
#   * a snapshot-restored engine >= 5x a cold engine on the LP-bound restart
#     workload (experiment E19: restart warmth — a restored decision cache
#     answers repeat traffic without re-solving any LP).
#
# --normalize calibrates away uniform machine-speed differences (geomean of
# all ratios), so the committed baseline stays usable on CI runners that are
# faster or slower than the machine that recorded it; only scenario-local
# regressions trip the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR5.json
RAW=$(mktemp -t bqc-bench-raw.XXXXXX.jsonl)
# Kept after the run (CI uploads it as an artifact; it is also the file to
# commit over $BASELINE when intentionally shifting the baseline).
NEW=target/bench-medians.json
trap 'rm -f "$RAW"' EXIT
mkdir -p target

# Each suite runs twice; `collect` keeps the best (smallest) median per
# scenario, which strips the scheduler-noise upper tail that a single
# quick-mode run of the multi-threaded engine scenarios is prone to.
for _ in 1 2; do
    BQC_BENCH_QUICK=1 BQC_BENCH_JSON="$RAW" cargo bench -p bqc-bench --bench bench_lp
    BQC_BENCH_QUICK=1 BQC_BENCH_JSON="$RAW" cargo bench -p bqc-bench --bench bench_engine
    BQC_BENCH_QUICK=1 BQC_BENCH_JSON="$RAW" cargo bench -p bqc-bench --bench bench_pipeline
    BQC_BENCH_QUICK=1 BQC_BENCH_JSON="$RAW" cargo bench -p bqc-bench --bench bench_serve
done

cargo run --release -p bqc-bench --bin bench_compare -- collect "$RAW" > "$NEW"

if [[ "${1:-}" == "--rebase" ]]; then
    cp "$NEW" "$BASELINE"
    echo "rewrote $BASELINE"
    exit 0
fi

cargo run --release -p bqc-bench --bin bench_compare -- compare "$BASELINE" "$NEW" \
    --threshold 1.25 --normalize \
    --min-speedup lp/shannon_cone_feasibility/dense/5 lp/shannon_cone_feasibility/revised/5 5 \
    --min-speedup lp/gamma_validity/eager/6 lp/gamma_validity/lazy_warm/6 5 \
    --min-speedup pipeline/refutable/lp_only/3 pipeline/refutable/refuter/3 5 \
    --min-speedup pipeline/overhead/legacy/6 pipeline/overhead/pipeline/6 0.909 \
    --min-speedup pipeline/obs/disabled/4 pipeline/obs/enabled/4 0.952 \
    --min-speedup pipeline/budget/off/6 pipeline/budget/on/6 0.952 \
    --min-speedup serve/restart/cold/4 serve/restart/restored/4 5
