#!/usr/bin/env bash
# End-to-end smoke test of the `bqc serve` daemon, runnable locally and as
# the CI serve-smoke job.  Exercises exactly the operator flow documented in
# docs/OPERATIONS.md:
#
#   1. start the daemon on an OS-assigned port with a snapshot path;
#   2. stream the smoke workload through a TCP client, asserting verdicts
#      and provenance (fresh first, cached/deduped for canonical repeats);
#   3. write a snapshot with the !snapshot admin command;
#   4. stop the daemon with SIGTERM (graceful: drains, snapshots, exits 0);
#   5. restart on the same snapshot and assert the *same* workload is now
#      answered entirely from the restored cache (provenance=cached,
#      restored>0 in !stats);
#   6. shut down via the !shutdown admin command and validate the exported
#      --metrics-out serve counters.
set -euo pipefail
cd "$(dirname "$0")/.."

BQC=${BQC:-target/release/bqc}
if [[ ! -x "$BQC" ]]; then
    echo "building $BQC"
    cargo build --release --bin bqc
fi

WORK=$(mktemp -d -t bqc-serve-smoke.XXXXXX)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
SNAPSHOT="$WORK/cache.bqcsnap"

# The TCP client: streams stdin lines to the daemon, prints every response
# line (banner included).  Python's socket module is in the CI image; the
# protocol itself needs nothing beyond a newline-framed TCP stream.
cat > "$WORK/client.py" <<'EOF'
import socket, sys

port = int(sys.argv[1])
requests = sys.stdin.read().splitlines()
stream = socket.create_connection(("127.0.0.1", port), timeout=30)
wire = stream.makefile("rw", newline="\n")
print(wire.readline().rstrip())  # banner
for request in requests:
    wire.write(request + "\n")
    wire.flush()
    print(wire.readline().rstrip())
stream.close()
EOF
client() { # client PORT < requests
    python3 "$WORK/client.py" "$1"
}

# stdin close is one of the documented shutdown triggers, so give the
# daemons a stdin that stays open: a fifo held read-write by this shell.
mkfifo "$WORK/serve-stdin"
exec 8<>"$WORK/serve-stdin"

start_daemon() { # start_daemon LOGFILE -> sets SERVE_PID and PORT
    local log=$1
    "$BQC" serve --addr 127.0.0.1:0 --snapshot "$SNAPSHOT" \
        --metrics-out "$WORK/metrics.txt" <&8 > "$log" &
    SERVE_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        if PORT=$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' "$log" \
                  | grep -oE '[0-9]+$'); then
            break
        fi
        sleep 0.1
    done
    [[ -n "$PORT" ]] || { echo "daemon never printed its listening line"; exit 1; }
}

echo "== first life: cold start, fresh decisions =="
start_daemon "$WORK/serve1.log"
grep -q "no snapshot at" "$WORK/serve1.log"

{ cat examples/workloads/smoke.bqc; echo '!stats'; echo '!snapshot'; } \
    | client "$PORT" | tee "$WORK/run1.out"
grep -q "^ok bqc-serve proto=1$" "$WORK/run1.out"
# 5 distinct canonical pairs; the renamed triangle repeat is served without
# fresh work (cached or deduped-in-flight, depending on micro-batch cuts).
[ "$(grep -c "provenance=fresh" "$WORK/run1.out")" -eq 5 ]
[ "$(grep -cE "provenance=(cached|deduped)" "$WORK/run1.out")" -eq 1 ]
[ "$(grep -c "verdict=contained" "$WORK/run1.out")" -eq 4 ]
[ "$(grep -c "verdict=not-contained witness=verified" "$WORK/run1.out")" -eq 2 ]
grep -q "ok stats traffic=6 fresh=5" "$WORK/run1.out"
grep -q "ok snapshot entries=5" "$WORK/run1.out"

echo "== SIGTERM: graceful shutdown writes the snapshot =="
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "shutdown complete" "$WORK/serve1.log"
grep -q "snapshot written (5 entries" "$WORK/serve1.log"
[[ -f "$SNAPSHOT" ]]

echo "== second life: restart answers the same traffic from the snapshot =="
start_daemon "$WORK/serve2.log"
grep -q "restored 5 cached decisions" "$WORK/serve2.log"

{ cat examples/workloads/smoke.bqc; echo '!stats'; echo '!shutdown'; } \
    | client "$PORT" | tee "$WORK/run2.out"
# Every question was seen by the previous process: zero fresh work, all six
# requests (the renamed repeat included) served from restored entries.
[ "$(grep -c "provenance=fresh" "$WORK/run2.out")" -eq 0 ]
[ "$(grep -cE "provenance=(cached|deduped)" "$WORK/run2.out")" -eq 6 ]
grep -q "ok stats traffic=6 fresh=0 cached=0 restored=6" "$WORK/run2.out"
grep -q "^ok shutting-down$" "$WORK/run2.out"
wait "$SERVE_PID"
grep -q "shutdown complete" "$WORK/serve2.log"

echo "== exported metrics cover the serving layer =="
grep -q "bqc_serve_connections_total 1" "$WORK/metrics.txt"
# Every streamed line is a request (comment lines get `ok skip`), so pin
# only nonzero here rather than coupling this to the workload's line count.
grep -qE "bqc_serve_requests_total [1-9]" "$WORK/metrics.txt"
grep -q "bqc_serve_batches_total" "$WORK/metrics.txt"
grep -q "bqc_engine_restored_hits_total 6" "$WORK/metrics.txt"
grep -q "bqc_engine_snapshot_restored_entries_total 5" "$WORK/metrics.txt"
grep -q "bqc_engine_snapshot_saves_total" "$WORK/metrics.txt"

echo "serve smoke: PASS"
