#![warn(missing_docs)]

//! # bqc-arith — exact arithmetic substrate
//!
//! Arbitrary-precision signed integers ([`BigInt`]) and rationals ([`Rational`])
//! used by the exact linear-programming solver and the decision procedures of
//! the *Bag Query Containment and Information Theory* reproduction.
//!
//! The decision procedure of Theorem 3.1 in the paper reduces containment to the
//! validity of a max-linear information inequality over the polymatroid cone
//! `Γ_n`, which is a linear-programming feasibility question with integer input
//! coefficients.  Deciding such a question with floating point would require an
//! arbitrary acceptance threshold; instead every pivot of the simplex solver in
//! `bqc-lp` is carried out exactly over [`Rational`].
//!
//! The implementation is deliberately self-contained (no external bignum crate)
//! and favours clarity over raw throughput: the magnitudes appearing in the
//! Shannon-cone LPs are modest, and all rationals are kept reduced.
//!
//! ## Quick example
//!
//! ```
//! use bqc_arith::{BigInt, Rational};
//!
//! let a = BigInt::from(1u64 << 62) * BigInt::from(12345);
//! let b = BigInt::from_str_radix("123456789012345678901234567890", 10).unwrap();
//! assert!(b > a);
//!
//! let third = Rational::new(BigInt::from(1), BigInt::from(3));
//! let sum = &third + &third + &third;
//! assert_eq!(sum, Rational::from_integer(1));
//! ```

mod bigint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use rational::Rational;

/// Convenience constructor for a rational from an integer pair.
///
/// Panics if `den == 0`.
pub fn ratio(num: i64, den: i64) -> Rational {
    Rational::new(BigInt::from(num), BigInt::from(den))
}

/// Convenience constructor for an integer-valued rational.
pub fn int(value: i64) -> Rational {
    Rational::from_integer(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_int_agree() {
        assert_eq!(ratio(4, 2), int(2));
        assert_eq!(ratio(-6, 4), ratio(-3, 2));
        assert_eq!(int(0), Rational::zero());
    }
}
