//! Sign–magnitude arbitrary-precision integers.
//!
//! The representation is a little-endian vector of `u64` limbs together with a
//! [`Sign`].  The invariant maintained everywhere is that the limb vector has no
//! trailing zero limbs and that zero is represented by an empty limb vector with
//! sign [`Sign::Plus`].  This makes structural equality, ordering and hashing
//! coincide with numeric equality.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].  Zero always carries [`Sign::Plus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use bqc_arith::BigInt;
/// let a: BigInt = "123456789123456789123456789".parse().unwrap();
/// let b = BigInt::from(3);
/// assert_eq!((&a * &b).to_string(), "370370367370370367370370367");
/// assert_eq!((&a % &b), BigInt::from(0));
/// ```
#[derive(Clone, Debug)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian limbs, no trailing zeros.
    limbs: Vec<u64>,
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            limbs: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> BigInt {
        BigInt::from(1u64)
    }

    /// Builds a big integer from a sign and little-endian limbs (normalizing).
    pub fn from_limbs(sign: Sign, limbs: Vec<u64>) -> BigInt {
        let mut n = BigInt { sign, limbs };
        n.normalize();
        n
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        if self.limbs.is_empty() {
            self.sign = Sign::Plus;
        }
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.is_zero() && self.sign == Sign::Plus
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` iff the value equals one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns -1, 0 or 1 as a plain integer.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.sign == Sign::Plus {
            1
        } else {
            -1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            limbs: self.limbs.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Parses a string in the given radix (2..=36), with optional leading `-`/`+`.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<BigInt, ParseBigIntError> {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseBigIntError::Empty);
        }
        let (sign, digits) = match s.as_bytes()[0] {
            b'-' => (Sign::Minus, &s[1..]),
            b'+' => (Sign::Plus, &s[1..]),
            _ => (Sign::Plus, s),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError::Empty);
        }
        let mut value = BigInt::zero();
        let radix_big = BigInt::from(radix as u64);
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch
                .to_digit(radix)
                .ok_or(ParseBigIntError::InvalidDigit(ch))?;
            value = &value * &radix_big + BigInt::from(d as u64);
        }
        value.sign = if value.is_zero() { Sign::Plus } else { sign };
        Ok(value)
    }

    /// Converts to an `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let mag = self.limbs[0];
                match self.sign {
                    Sign::Plus => i64::try_from(mag).ok(),
                    Sign::Minus => {
                        if mag <= i64::MAX as u64 + 1 {
                            Some((mag as i64).wrapping_neg())
                        } else {
                            None
                        }
                    }
                }
            }
            _ => None,
        }
    }

    /// Converts to a `u64` if the value fits (non-negative and small enough).
    pub fn to_u64(&self) -> Option<u64> {
        if self.is_negative() {
            return None;
        }
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (may lose precision or overflow to ±inf).
    pub fn to_f64(&self) -> f64 {
        let mut value = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            value = value * 18_446_744_073_709_551_616.0 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -value
        } else {
            value
        }
    }

    /// Raises `self` to a small non-negative power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Least common multiple (always non-negative); `lcm(0, x) == 0`.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        (&self.abs() / &g) * other.abs()
    }

    /// Simultaneous quotient and remainder with truncation toward zero.
    ///
    /// The remainder has the sign of the dividend (like Rust's `%` on primitives).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        assert!(!divisor.is_zero(), "division by zero BigInt");
        match cmp_mag(&self.limbs, &divisor.limbs) {
            Ordering::Less => (BigInt::zero(), self.clone()),
            Ordering::Equal => {
                let q_sign = if self.sign == divisor.sign {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                (BigInt::from_limbs(q_sign, vec![1]), BigInt::zero())
            }
            Ordering::Greater => {
                let (q_mag, r_mag) = div_rem_mag(&self.limbs, &divisor.limbs);
                let q_sign = if self.sign == divisor.sign {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                let q = BigInt::from_limbs(q_sign, q_mag);
                let r = BigInt::from_limbs(self.sign, r_mag);
                (q, r)
            }
        }
    }

    /// Euclidean division: the remainder is always in `[0, |divisor|)`.
    pub fn div_rem_euclid(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        let (mut q, mut r) = self.div_rem(divisor);
        if r.is_negative() {
            if divisor.is_positive() {
                q = &q - &BigInt::one();
                r = &r + divisor;
            } else {
                q = &q + &BigInt::one();
                r = &r - divisor;
            }
        }
        (q, r)
    }

    fn add_signed(&self, other: &BigInt) -> BigInt {
        if self.sign == other.sign {
            BigInt::from_limbs(self.sign, add_mag(&self.limbs, &other.limbs))
        } else {
            match cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, sub_mag(&self.limbs, &other.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(other.sign, sub_mag(&other.limbs, &self.limbs))
                }
            }
        }
    }
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseBigIntError {
    /// The input contained no digits.
    Empty,
    /// The input contained a character that is not a digit in the requested radix.
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigIntError::Empty => write!(f, "empty integer literal"),
            ParseBigIntError::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} in integer literal")
            }
        }
    }
}

impl std::error::Error for ParseBigIntError {}

// ----- magnitude helpers -----------------------------------------------------

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u128;
    for (i, &limb) in long.iter().enumerate() {
        let sum = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry;
        out.push(sum as u64);
        carry = sum >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// Computes `a - b` assuming `a >= b` (magnitudes).
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &limb) in a.iter().enumerate() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d1, under1) = limb.overflowing_sub(bi);
        let (d2, under2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (under1 || under2) as u64;
    }
    debug_assert_eq!(borrow, 0);
    out
}

fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn shl_bits(a: &[u64], s: u32) -> Vec<u64> {
    debug_assert!(s < 64);
    if s == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &limb in a {
        out.push((limb << s) | carry);
        carry = limb >> (64 - s);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_bits(a: &[u64], s: u32) -> Vec<u64> {
    debug_assert!(s < 64);
    if s == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    for i in 0..a.len() {
        out[i] = a[i] >> s;
        if i + 1 < a.len() {
            out[i] |= a[i + 1] << (64 - s);
        }
    }
    out
}

/// Knuth algorithm D.  Requires `|a| > |b|` (as magnitudes) and `b` non-empty.
fn div_rem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!b.is_empty());
    if b.len() == 1 {
        let d = b[0] as u128;
        let mut q = vec![0u64; a.len()];
        let mut rem: u128 = 0;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        return (q, vec![rem as u64]);
    }

    // Normalize so that the divisor's top limb has its high bit set.
    let shift = b.last().unwrap().leading_zeros();
    let mut u = shl_bits(a, shift);
    let v = shl_bits(b, shift);
    let n = v.len();
    let m = u.len().saturating_sub(n);
    u.push(0); // extra high limb for the first iteration
    let mut q = vec![0u64; m + 1];

    for j in (0..=m).rev() {
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v[n - 1] as u128;
        let mut rhat = top % v[n - 1] as u128;
        loop {
            if qhat >> 64 != 0 || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >> 64 == 0 {
                    continue;
                }
            }
            break;
        }

        // Multiply-and-subtract qhat * v from u[j .. j+n].
        let mut borrow: u128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128 + borrow;
            let lo = p as u64;
            borrow = p >> 64;
            let (diff, under) = u[j + i].overflowing_sub(lo);
            u[j + i] = diff;
            if under {
                borrow += 1;
            }
        }
        let (diff, under) = u[j + n].overflowing_sub(borrow as u64);
        u[j + n] = diff;

        if under {
            // qhat was one too large; add the divisor back.
            qhat -= 1;
            let mut carry: u128 = 0;
            for i in 0..n {
                let s = u[j + i] as u128 + v[i] as u128 + carry;
                u[j + i] = s as u64;
                carry = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }

    let rem = shr_bits(&u[..n], shift);
    (q, rem)
}

// ----- conversions ------------------------------------------------------------

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                BigInt::from_limbs(Sign::Plus, vec![v as u64])
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
                let mag = (v as i128).unsigned_abs() as u64;
                BigInt::from_limbs(sign, vec![mag])
            }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, isize);

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let mag = v.unsigned_abs();
        BigInt::from_limbs(sign, vec![mag as u64, (mag >> 64) as u64])
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> BigInt {
        BigInt::from_limbs(Sign::Plus, vec![v as u64, (v >> 64) as u64])
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        BigInt::from_str_radix(s, 10)
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

// ----- equality / ordering / hashing -------------------------------------------

impl PartialEq for BigInt {
    fn eq(&self, other: &BigInt) -> bool {
        self.sign == other.sign && self.limbs == other.limbs
    }
}

impl Eq for BigInt {}

impl Hash for BigInt {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.limbs.hash(state);
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => cmp_mag(&self.limbs, &other.limbs),
            (Sign::Minus, Sign::Minus) => cmp_mag(&other.limbs, &self.limbs),
        }
    }
}

// ----- operators ----------------------------------------------------------------

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        self.add_signed(rhs)
    }
}
forward_binop!(Add, add);

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        let negated = BigInt {
            sign: rhs.sign.flip(),
            limbs: rhs.limbs.clone(),
        };
        let mut n = self.add_signed(&negated);
        n.normalize();
        n
    }
}
forward_binop!(Sub, sub);

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_limbs(sign, mul_mag(&self.limbs, &rhs.limbs))
    }
}
forward_binop!(Mul, mul);

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}
forward_binop!(Div, div);

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}
forward_binop!(Rem, rem);

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: self.sign.flip(),
                limbs: self.limbs.clone(),
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        (&self).neg()
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl AddAssign<BigInt> for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl SubAssign<BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: BigInt) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl MulAssign<BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: BigInt) {
        *self = &*self * &rhs;
    }
}

// ----- formatting -----------------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.to_decimal_string();
        f.pad_integral(!self.is_negative(), "", s.trim_start_matches('-'))
    }
}

impl BigInt {
    /// Decimal string rendering, used by `Display`.
    fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = BigInt::from(CHUNK);
        let mut mag = self.abs();
        let mut parts: Vec<u64> = Vec::new();
        while !mag.is_zero() {
            let (q, r) = mag.div_rem(&chunk);
            parts.push(r.to_u64().unwrap_or(0));
            mag = q;
        }
        let mut s = String::new();
        if self.sign == Sign::Minus {
            s.push('-');
        }
        s.push_str(&parts.last().unwrap().to_string());
        for part in parts.iter().rev().skip(1) {
            s.push_str(&format!("{part:019}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero(), BigInt::from(0));
        assert_eq!(BigInt::zero().signum(), 0);
        assert_eq!(BigInt::one().signum(), 1);
        assert_eq!(big(-5).signum(), -1);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(big(2) + big(3), big(5));
        assert_eq!(big(2) - big(3), big(-1));
        assert_eq!(big(-2) * big(3), big(-6));
        assert_eq!(big(7) / big(2), big(3));
        assert_eq!(big(7) % big(2), big(1));
        assert_eq!(big(-7) / big(2), big(-3));
        assert_eq!(big(-7) % big(2), big(-1));
        assert_eq!(big(7) / big(-2), big(-3));
        assert_eq!(big(7) % big(-2), big(1));
    }

    #[test]
    fn euclidean_division() {
        let (q, r) = big(-7).div_rem_euclid(&big(2));
        assert_eq!((q, r), (big(-4), big(1)));
        let (q, r) = big(-7).div_rem_euclid(&big(-2));
        assert_eq!((q, r), (big(4), big(1)));
        let (q, r) = big(7).div_rem_euclid(&big(-2));
        assert_eq!((q, r), (big(-3), big(1)));
    }

    #[test]
    fn multi_limb_multiplication() {
        let a = BigInt::from(u64::MAX);
        let b = &a * &a;
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = BigInt::from(u128::MAX) - BigInt::from(u64::MAX) - BigInt::from(u64::MAX)
            + BigInt::from(0u64)
            + BigInt::one()
            - BigInt::one();
        // Simpler: compute through u128 directly.
        let direct = BigInt::from((u64::MAX as u128) * (u64::MAX as u128));
        assert_eq!(b, direct);
        let _ = expected;
    }

    #[test]
    fn multi_limb_division_roundtrip() {
        let a = BigInt::from_str_radix("340282366920938463463374607431768211456789", 10).unwrap();
        let b = BigInt::from_str_radix("98765432123456789", 10).unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
        assert!(!r.is_negative());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999",
        ];
        for case in cases {
            let parsed: BigInt = case.parse().unwrap();
            assert_eq!(parsed.to_string(), case.trim_start_matches('+'));
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!("".parse::<BigInt>(), Err(ParseBigIntError::Empty));
        assert_eq!("-".parse::<BigInt>(), Err(ParseBigIntError::Empty));
        assert!(matches!(
            "12x".parse::<BigInt>(),
            Err(ParseBigIntError::InvalidDigit('x'))
        ));
        assert_eq!(BigInt::from_str_radix("ff", 16).unwrap(), big(255));
        assert_eq!(BigInt::from_str_radix("-101", 2).unwrap(), big(-5));
        assert_eq!("1_000_000".parse::<BigInt>().unwrap(), big(1_000_000));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(-12).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(7)), big(7));
        assert_eq!(big(12).lcm(&big(18)), big(36));
        assert_eq!(big(0).lcm(&big(7)), big(0));
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(3).pow(0), big(1));
        assert_eq!(big(-2).pow(3), big(-8));
        assert_eq!(big(10).pow(30).to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn bit_length() {
        assert_eq!(BigInt::zero().bit_length(), 0);
        assert_eq!(big(1).bit_length(), 1);
        assert_eq!(big(255).bit_length(), 8);
        assert_eq!(big(256).bit_length(), 9);
        assert_eq!(BigInt::from(1u128 << 100).bit_length(), 101);
    }

    #[test]
    fn ordering() {
        assert!(big(-5) < big(-4));
        assert!(big(-5) < big(0));
        assert!(big(3) < big(10));
        assert!(BigInt::from(u128::MAX) > BigInt::from(u64::MAX));
        assert!(-BigInt::from(u128::MAX) < -BigInt::from(u64::MAX));
    }

    #[test]
    fn to_primitive_conversions() {
        assert_eq!(big(42).to_i64(), Some(42));
        assert_eq!(big(-42).to_i64(), Some(-42));
        assert_eq!(BigInt::from(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(BigInt::from(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(big(42).to_u64(), Some(42));
        assert_eq!(big(-1).to_u64(), None);
        assert!((big(1_000_000).to_f64() - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn to_f64_large() {
        let huge = BigInt::from(10u64).pow(40);
        let approx = huge.to_f64();
        assert!((approx / 1e40 - 1.0).abs() < 1e-10);
        assert_eq!((-huge).to_f64(), -approx);
    }

    #[test]
    fn decimal_string_matches_display() {
        let v: BigInt = "-123456789012345678901234567890".parse().unwrap();
        assert_eq!(v.to_decimal_string(), format!("{v}"));
    }

    proptest! {
        #[test]
        fn add_matches_i128(a in -10_000_000_000_000i128..10_000_000_000_000, b in -10_000_000_000_000i128..10_000_000_000_000) {
            prop_assert_eq!(BigInt::from(a) + BigInt::from(b), BigInt::from(a + b));
        }

        #[test]
        fn sub_matches_i128(a in -10_000_000_000_000i128..10_000_000_000_000, b in -10_000_000_000_000i128..10_000_000_000_000) {
            prop_assert_eq!(BigInt::from(a) - BigInt::from(b), BigInt::from(a - b));
        }

        #[test]
        fn mul_matches_i128(a in -3_000_000_000i128..3_000_000_000, b in -3_000_000_000i128..3_000_000_000) {
            prop_assert_eq!(BigInt::from(a) * BigInt::from(b), BigInt::from(a * b));
        }

        #[test]
        fn div_rem_matches_i128(a in -10_000_000_000_000i128..10_000_000_000_000, b in -1_000_000i128..1_000_000) {
            prop_assume!(b != 0);
            let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
            prop_assert_eq!(q, BigInt::from(a / b));
            prop_assert_eq!(r, BigInt::from(a % b));
        }

        #[test]
        fn div_rem_reconstructs(a_str in "[1-9][0-9]{0,50}", b_str in "[1-9][0-9]{0,25}") {
            let a: BigInt = a_str.parse().unwrap();
            let b: BigInt = b_str.parse().unwrap();
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&q * &b + &r, a);
            prop_assert!(r < b);
        }

        #[test]
        fn parse_display_roundtrip(s in "-?[1-9][0-9]{0,60}") {
            let v: BigInt = s.parse().unwrap();
            prop_assert_eq!(v.to_string(), s);
        }

        #[test]
        fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
        }

        #[test]
        fn gcd_divides_both(a in 1i64..1_000_000_000, b in 1i64..1_000_000_000) {
            let g = BigInt::from(a).gcd(&BigInt::from(b));
            prop_assert!((BigInt::from(a) % &g).is_zero());
            prop_assert!((BigInt::from(b) % &g).is_zero());
        }
    }
}
