//! Exact rational numbers built on [`BigInt`].
//!
//! Every [`Rational`] is kept in canonical form: the denominator is strictly
//! positive and `gcd(|numerator|, denominator) = 1`.  This guarantees that
//! structural equality, ordering and hashing coincide with numeric equality,
//! which the LP solver relies on.

use crate::bigint::{BigInt, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `numerator / denominator` with `denominator > 0`.
///
/// ```
/// use bqc_arith::{BigInt, Rational};
/// let a = Rational::new(BigInt::from(2), BigInt::from(4));
/// assert_eq!(a.to_string(), "1/2");
/// assert_eq!(&a + &a, Rational::from_integer(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates a rational from a numerator and denominator, reducing to
    /// canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Rational { num, den };
        r.reduce();
        r
    }

    /// The rational zero.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates an integer-valued rational.
    pub fn from_integer<T: Into<BigInt>>(value: T) -> Rational {
        Rational {
            num: value.into(),
            den: BigInt::one(),
        }
    }

    /// Creates a rational from an `i64` pair, reducing.
    pub fn from_pair(num: i64, den: i64) -> Rational {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    fn reduce(&mut self) {
        if self.den.is_negative() {
            self.num = -&self.num;
            self.den = -&self.den;
        }
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns -1, 0 or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, _) = self.num.div_rem_euclid(&self.den);
        q
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both parts are representable with good precision.
        let num_bits = self.num.bit_length() as i64;
        let den_bits = self.den.bit_length() as i64;
        if num_bits < 500 && den_bits < 500 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // For very large operands, shift both down by a common power of two.
        let shift = (num_bits.max(den_bits) - 500).max(0) as u32;
        let scale = BigInt::from(2u64).pow(shift.min(100_000));
        (&self.num / &scale).to_f64() / (&self.den / &scale).to_f64()
    }

    /// Raises the rational to an integer power (negative powers invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp >= 0 {
            Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Rational {
        Rational::zero()
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

macro_rules! impl_from_prim {
    ($($t:ty),*) => {$(
        impl From<$t> for Rational {
            fn from(v: $t) -> Rational {
                Rational { num: BigInt::from(v), den: BigInt::one() }
            }
        }
    )*};
}

impl_from_prim!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Error returned when parsing a [`Rational`] fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseRationalError {
    /// The numerator or denominator was not a valid integer literal.
    BadInteger(String),
    /// The denominator was zero.
    ZeroDenominator,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRationalError::BadInteger(part) => write!(f, "invalid integer part {part:?}"),
            ParseRationalError::ZeroDenominator => write!(f, "zero denominator"),
        }
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"`, `"a/b"` or a decimal literal such as `"1.25"`.
    fn from_str(s: &str) -> Result<Rational, ParseRationalError> {
        let s = s.trim();
        if let Some((num, den)) = s.split_once('/') {
            let num: BigInt = num
                .trim()
                .parse()
                .map_err(|_| ParseRationalError::BadInteger(num.to_string()))?;
            let den: BigInt = den
                .trim()
                .parse()
                .map_err(|_| ParseRationalError::BadInteger(den.to_string()))?;
            if den.is_zero() {
                return Err(ParseRationalError::ZeroDenominator);
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((whole, frac)) = s.split_once('.') {
            let negative = whole.trim_start().starts_with('-');
            let whole_val: BigInt = if whole.is_empty() || whole == "-" || whole == "+" {
                BigInt::zero()
            } else {
                whole
                    .parse()
                    .map_err(|_| ParseRationalError::BadInteger(whole.to_string()))?
            };
            let frac_digits = frac.trim();
            let frac_val: BigInt = if frac_digits.is_empty() {
                BigInt::zero()
            } else {
                frac_digits
                    .parse()
                    .map_err(|_| ParseRationalError::BadInteger(frac_digits.to_string()))?
            };
            let scale = BigInt::from(10u64).pow(frac_digits.len() as u32);
            let mag = whole_val.abs() * &scale + frac_val;
            let signed = if negative { -mag } else { mag };
            return Ok(Rational::new(signed, scale));
        }
        let v: BigInt = s
            .parse()
            .map_err(|_| ParseRationalError::BadInteger(s.to_string()))?;
        Ok(Rational::from(v))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d with b, d > 0 by cross-multiplication.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::new(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}
forward_rat_binop!(Add, add);

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        Rational::new(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}
forward_rat_binop!(Sub, sub);

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}
forward_rat_binop!(Mul, mul);

impl Div<&Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero Rational");
        Rational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}
forward_rat_binop!(Div, div);

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        (&self).neg()
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign<Rational> for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl SubAssign<Rational> for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl MulAssign<Rational> for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = &*self * &rhs;
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = &*self / rhs;
    }
}

impl DivAssign<Rational> for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = &*self / &rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

// Keep the unused import warning away when Sign is only used in debug assertions.
#[allow(unused)]
fn _sign_witness(s: Sign) -> Sign {
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_pair(n, d)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, -7), Rational::zero());
        assert!(rat(3, -6).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(-rat(2, 3), rat(-2, 3));
        assert_eq!(rat(1, 3) / rat(-1, 6), rat(-2, 1));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 1) > rat(13, 2));
        assert_eq!(rat(2, 6).cmp(&rat(1, 3)), Ordering::Equal);
        assert_eq!(rat(1, 2).max(rat(2, 3)), rat(2, 3));
        assert_eq!(rat(1, 2).min(rat(2, 3)), rat(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2));
        assert_eq!(rat(4, 2).ceil(), BigInt::from(2));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), rat(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), rat(-3, 4));
        assert_eq!("6/4".parse::<Rational>().unwrap().to_string(), "3/2");
        assert_eq!("5".parse::<Rational>().unwrap(), rat(5, 1));
        assert_eq!("1.25".parse::<Rational>().unwrap(), rat(5, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), rat(-1, 2));
        assert_eq!("2.".parse::<Rational>().unwrap(), rat(2, 1));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
        assert_eq!(rat(7, 1).to_string(), "7");
        assert_eq!(rat(-7, 3).to_string(), "-7/3");
    }

    #[test]
    fn recip_pow() {
        assert_eq!(rat(3, 4).recip(), rat(4, 3));
        assert_eq!(rat(-3, 4).recip(), rat(-4, 3));
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), Rational::one());
    }

    #[test]
    fn to_f64() {
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rat(-7, 2).to_f64() + 3.5).abs() < 1e-12);
        let big = Rational::new(BigInt::from(10u64).pow(200), BigInt::from(10u64).pow(199));
        assert!((big.to_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn sums() {
        let values = vec![rat(1, 2), rat(1, 3), rat(1, 6)];
        let total: Rational = values.iter().sum();
        assert_eq!(total, Rational::one());
        let total_owned: Rational = values.into_iter().sum();
        assert_eq!(total_owned, Rational::one());
    }

    proptest! {
        #[test]
        fn add_commutes(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000, d in 1i64..1000) {
            prop_assert_eq!(rat(a, b) + rat(c, d), rat(c, d) + rat(a, b));
        }

        #[test]
        fn mul_distributes(a in -100i64..100, b in 1i64..100, c in -100i64..100, d in 1i64..100, e in -100i64..100, f in 1i64..100) {
            let x = rat(a, b);
            let y = rat(c, d);
            let z = rat(e, f);
            prop_assert_eq!(&x * &(&y + &z), &x * &y + &x * &z);
        }

        #[test]
        fn sub_then_add_roundtrips(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000, d in 1i64..1000) {
            let x = rat(a, b);
            let y = rat(c, d);
            prop_assert_eq!(&(&x - &y) + &y, x);
        }

        #[test]
        fn div_then_mul_roundtrips(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000, d in 1i64..1000) {
            prop_assume!(c != 0);
            let x = rat(a, b);
            let y = rat(c, d);
            prop_assert_eq!(&(&x / &y) * &y, x);
        }

        #[test]
        fn cmp_matches_f64(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000, d in 1i64..1000) {
            let exact = rat(a, b).cmp(&rat(c, d));
            let approx = (a as f64 / b as f64).partial_cmp(&(c as f64 / d as f64)).unwrap();
            // f64 is exact for these small values.
            prop_assert_eq!(exact, approx);
        }

        #[test]
        fn floor_le_value_lt_floor_plus_one(a in -10_000i64..10_000, b in 1i64..1000) {
            let x = rat(a, b);
            let fl = Rational::from(x.floor());
            prop_assert!(fl <= x);
            prop_assert!(x < &fl + &Rational::one());
        }
    }
}
