//! The "remarkable formula" `E_T` (Eq. 7) and its equivalent forms.
//!
//! Fix a tree decomposition `(T, χ)` of a query and root every component.
//! The paper associates to it the conditional linear expression
//!
//! ```text
//!     E_T(h) = Σ_{t ∈ nodes(T)} h( χ(t) | χ(t) ∩ χ(parent(t)) )
//! ```
//!
//! which is independent of the chosen roots and can equivalently be written as
//! `Σ_t h(χ(t)) − Σ_{(t1,t2) ∈ edges(T)} h(χ(t1) ∩ χ(t2))` (the form used in
//! the running-intersection argument) or as the inclusion–exclusion expression
//! of Eq. (32), originally due to Tony Lee \[22\].  `E_T` is *simple* exactly
//! when the decomposition is simple, which is what feeds Theorem 3.6.

use bqc_arith::Rational;
use bqc_entropy::{ConditionalExpr, EntropyExpr, VarSet};
use bqc_hypergraph::TreeDecomposition;
use std::collections::BTreeSet;

/// Builds `E_T` as a conditional linear expression (Eq. 7), rooting each
/// component at its smallest node index (the result does not depend on this
/// choice).
pub fn et_expression(td: &TreeDecomposition) -> ConditionalExpr {
    let parent = td.rooted();
    let mut expr = ConditionalExpr::new();
    for (node, bag) in td.bags().iter().enumerate() {
        let y: VarSet = bag.iter().cloned().collect();
        let x: VarSet = match parent[node] {
            Some(p) => bag.intersection(&td.bags()[p]).cloned().collect(),
            None => BTreeSet::new(),
        };
        expr.add(Rational::one(), y, x);
    }
    expr
}

/// The node/edge form: `Σ_t h(χ(t)) − Σ_{(t1,t2)} h(χ(t1) ∩ χ(t2))`.
pub fn et_node_edge_form(td: &TreeDecomposition) -> EntropyExpr {
    let mut expr = EntropyExpr::zero();
    for bag in td.bags() {
        expr.add_term(Rational::one(), bag.iter().cloned());
    }
    for &edge in td.edges() {
        expr.add_term(-Rational::one(), td.separator(edge));
    }
    expr
}

/// The inclusion–exclusion form of Eq. (32):
/// `E_T = Σ_{∅ ≠ S ⊆ nodes(T)} (−1)^{|S|+1} · CC(T ∩ S) · h(χ(S))`,
/// where `χ(S)` is the intersection of the bags in `S` and `CC(T ∩ S)` counts
/// the connected components of the subforest induced by the nodes whose bags
/// meet `⋃_{t ∈ S} χ(t)`.
///
/// This form is exponential in the number of nodes and exists mainly to
/// cross-validate `E_T` (and to mirror Lee's original presentation); use
/// [`et_expression`] for computation.
pub fn et_inclusion_exclusion(td: &TreeDecomposition) -> EntropyExpr {
    let nodes = td.num_nodes();
    assert!(
        nodes < 20,
        "inclusion–exclusion form is exponential; too many nodes"
    );
    let mut expr = EntropyExpr::zero();
    for subset in 1u32..(1 << nodes) {
        let members: Vec<usize> = (0..nodes).filter(|i| subset & (1 << i) != 0).collect();
        // χ(S) = intersection of the member bags.
        let mut intersection: BTreeSet<String> = td.bags()[members[0]].clone();
        for &m in &members[1..] {
            intersection = intersection.intersection(&td.bags()[m]).cloned().collect();
        }
        if intersection.is_empty() {
            continue; // h(∅) = 0 contributes nothing
        }
        // Union of the member bags, then the induced subforest of nodes whose
        // bags intersect that union.
        let union: BTreeSet<String> = members
            .iter()
            .flat_map(|&m| td.bags()[m].iter().cloned())
            .collect();
        let touched: Vec<usize> = (0..nodes)
            .filter(|&t| td.bags()[t].iter().any(|v| union.contains(v)))
            .collect();
        let cc = connected_components_of(td, &touched);
        let sign = if members.len() % 2 == 1 { 1 } else { -1 };
        expr.add_term(Rational::from(sign * cc as i64), intersection);
    }
    expr
}

fn connected_components_of(td: &TreeDecomposition, nodes: &[usize]) -> usize {
    let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut components = 0;
    for &start in nodes {
        if seen.contains(&start) {
            continue;
        }
        components += 1;
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(current) = stack.pop() {
            for &(a, b) in td.edges() {
                let next = if a == current {
                    b
                } else if b == current {
                    a
                } else {
                    continue;
                };
                if node_set.contains(&next) && seen.insert(next) {
                    stack.push(next);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;
    use bqc_entropy::SetFunction;
    use bqc_hypergraph::Bag;

    fn bag(items: &[&str]) -> Bag {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// The chain decomposition {Y1,Y3} - {Y1,Y2} - {Y2,Y4} from Example 3.5.
    fn chain_td() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![bag(&["Y1", "Y3"]), bag(&["Y1", "Y2"]), bag(&["Y2", "Y4"])],
            vec![(0, 1), (1, 2)],
        )
    }

    fn random_polymatroid_like(vars: &[&str]) -> SetFunction {
        // A handcrafted polymatroid on up to 4 variables: h(X) = min(|X| + 1, 3)
        // except h(∅) = 0 — monotone and submodular.
        let names: Vec<String> = vars.iter().map(|s| s.to_string()).collect();
        let mut h = SetFunction::zero(names);
        for mask in bqc_entropy::all_masks(vars.len()) {
            if mask == 0 {
                continue;
            }
            let value = (mask.count_ones() as i64 + 1).min(3);
            h.set_value(mask, int(value));
        }
        assert!(bqc_entropy::is_polymatroid(&h));
        h
    }

    #[test]
    fn et_for_example_4_3() {
        // T = {Y1,Y2} - {Y1,Y3}: E_T = h(Y1Y2) + h(Y3|Y1) = h(Y1Y2) + h(Y1Y3) - h(Y1).
        let td = TreeDecomposition::new(vec![bag(&["Y1", "Y2"]), bag(&["Y1", "Y3"])], vec![(0, 1)]);
        let et = et_expression(&td);
        assert!(et.is_simple());
        let flat = et.flatten();
        assert_eq!(flat, et_node_edge_form(&td));
        let h = random_polymatroid_like(&["Y1", "Y2", "Y3"]);
        // h(Y1Y2) + h(Y1Y3) - h(Y1) = 3 + 3 - 2 = 4.
        assert_eq!(flat.evaluate(&h), int(4));
    }

    #[test]
    fn three_forms_agree_on_chains() {
        let td = chain_td();
        let et = et_expression(&td).flatten();
        let node_edge = et_node_edge_form(&td);
        let inclusion_exclusion = et_inclusion_exclusion(&td);
        assert_eq!(et, node_edge);
        let h = random_polymatroid_like(&["Y1", "Y2", "Y3", "Y4"]);
        assert_eq!(et.evaluate(&h), inclusion_exclusion.evaluate(&h));
    }

    #[test]
    fn et_is_root_independent() {
        // Compare against the node/edge form, which has no root at all, for a
        // star-shaped decomposition where different DFS orders give different
        // parents.
        let td = TreeDecomposition::new(
            vec![
                bag(&["A", "B"]),
                bag(&["B", "C"]),
                bag(&["B", "D"]),
                bag(&["B", "E"]),
            ],
            vec![(1, 0), (2, 1), (3, 1)],
        );
        assert_eq!(et_expression(&td).flatten(), et_node_edge_form(&td));
    }

    #[test]
    fn simplicity_of_et_tracks_decomposition() {
        assert!(et_expression(&chain_td()).is_simple());
        let wide = TreeDecomposition::new(
            vec![bag(&["A", "B", "C"]), bag(&["B", "C", "D"])],
            vec![(0, 1)],
        );
        assert!(!et_expression(&wide).is_simple());
    }

    #[test]
    fn disconnected_decomposition_is_unconditioned() {
        let td = TreeDecomposition::new(vec![bag(&["A", "B"]), bag(&["C", "D"])], vec![]);
        let et = et_expression(&td);
        assert!(et.is_unconditioned());
        let flat = et.flatten();
        // h(AB) + h(CD).
        assert_eq!(flat.num_terms(), 2);
        assert_eq!(flat, et_node_edge_form(&td));
    }

    #[test]
    fn lee_acyclic_join_characterization_direction() {
        // For a relation that *does* decompose along T, E_T(h) = h(V).  Take two
        // independent bits B1, B2 and the decomposition {B1} - ∅ - ... simply
        // {B1,B2} split as {B1}, {B2} with no shared variables.
        let td = TreeDecomposition::new(vec![bag(&["B1"]), bag(&["B2"])], vec![]);
        let h = SetFunction::from_values(
            vec!["B1".into(), "B2".into()],
            vec![int(0), int(1), int(1), int(2)],
        );
        assert_eq!(et_expression(&td).flatten().evaluate(&h), int(2));
        assert_eq!(h.value(h.full_mask()), &int(2));
    }

    #[test]
    fn inclusion_exclusion_on_two_node_tree() {
        // Bags {A,B}, {B,C} with edge: Eq.(32) gives h(AB) + h(BC) - h(B).
        let td = TreeDecomposition::new(vec![bag(&["A", "B"]), bag(&["B", "C"])], vec![(0, 1)]);
        let expr = et_inclusion_exclusion(&td);
        let mut expected = EntropyExpr::zero();
        expected.add_term(int(1), ["A", "B"]);
        expected.add_term(int(1), ["B", "C"]);
        expected.add_term(int(-1), ["B"]);
        assert_eq!(expr, expected);
    }
}
