//! The reduction Max-IIP ≤m BagCQC-A (Section 5.3, Theorem 5.1).
//!
//! Given a Uniform-Max-IIP `q·h(V) ≤ max_i E_i(h)` (produced by Lemma 5.3 /
//! [`bqc_iip::uniformize`]) with distinguished variable `U`, the construction
//! emits two Boolean conjunctive queries `Q1`, `Q2` with `Q2` acyclic such
//! that `Q1 ⊑ Q2` iff the inequality is valid.  The gist:
//!
//! * `U` is split into two variables `U1 U2`;
//! * `Q2` has one fresh binary atom `S_m(Ũ_m)` per unit of the `n·h(U)` term,
//!   plus a chain of atoms `R_0(X̃_0 Ỹ_0 Z̃), …, R_p(X̃_p Ỹ_p Z̃)` whose
//!   variable blocks are disjoint fresh copies `Y_{ij}^{(i,j)}` of the chain
//!   sets, stitched together by the shared copies `X̃_j ⊆ Ỹ_{j−1}` and the
//!   `k` chain-identifier variables `Z̃`;
//! * `Q1` is the conjunction of `q` disjoint adorned copies, each of which is
//!   the conjunction over `i ∈ [k]` of a sub-query that collapses every block
//!   other than the `i`-th to the distinguished variable and uses the `Z̃`
//!   positions to force any homomorphism to pick a single disjunct `i`.
//!
//! The containment inequality (Eq. 8) of the produced pair erases — in the
//! sense of Lemma 5.4 — back to the original inequality, which the tests below
//! verify both syntactically (conditions (a) and (b) of the lemma) and, for
//! small instances, semantically over the Shannon cone.

use bqc_iip::{UniformExpression, UniformMaxIip};
use bqc_relational::{Atom, ConjunctiveQuery};
use std::collections::BTreeSet;

/// The queries produced by [`max_iip_to_containment`], plus bookkeeping that
/// the tests and examples use to relate them back to the inequality.
#[derive(Clone, Debug)]
pub struct ReductionOutput {
    /// The contained query (a conjunction of `q` adorned copies).
    pub q1: ConjunctiveQuery,
    /// The containing query (acyclic).
    pub q2: ConjunctiveQuery,
    /// Name of the first half of the split distinguished variable.
    pub u1: String,
    /// Name of the second half of the split distinguished variable.
    pub u2: String,
    /// The number of adorned copies (`q` of the uniform inequality).
    pub copies: usize,
}

/// Suffix used to adorn `Q1`'s variable copies; copy `ℓ` of variable `v` is
/// named `v#ℓ`.
pub fn adorned_name(variable: &str, copy: usize) -> String {
    format!("{variable}#{copy}")
}

/// Strips the adornment introduced by [`adorned_name`], returning the base
/// variable name.
pub fn erase_adornment(variable: &str) -> String {
    match variable.rsplit_once('#') {
        Some((base, _)) => base.to_string(),
        None => variable.to_string(),
    }
}

/// Expands a chain variable set into an ordered list of concrete variable
/// names, splitting the distinguished variable into its two halves.
fn expand_block(set: &BTreeSet<String>, distinguished: &str, u1: &str, u2: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(set.len() + 1);
    for v in set {
        if v == distinguished {
            out.push(u1.to_string());
            out.push(u2.to_string());
        } else {
            out.push(v.clone());
        }
    }
    out
}

/// Builds the containment instance of Theorem 5.1 from a Uniform-Max-IIP.
///
/// # Panics
///
/// Panics if the input fails [`UniformMaxIip::validate`] or has no
/// expressions.
pub fn max_iip_to_containment(uniform: &UniformMaxIip) -> ReductionOutput {
    uniform
        .validate()
        .expect("input must be a valid Uniform-Max-IIP");
    assert!(
        !uniform.expressions.is_empty(),
        "need at least one disjunct"
    );
    let k = uniform.expressions.len();
    let n = uniform.expressions[0].head_count;
    let p = uniform.expressions[0].chain.len();
    let q = uniform.q;
    let u = &uniform.distinguished;
    let u1 = format!("{u}1");
    let u2 = format!("{u}2");

    // ---- Q2 ------------------------------------------------------------
    let mut q2_atoms: Vec<Atom> = Vec::new();
    // S_m(Ũ_m): binary atoms over disjoint fresh variable pairs.
    for m in 1..=n {
        q2_atoms.push(Atom::new(
            format!("S{m}"),
            [format!("us{m}_a"), format!("us{m}_b")],
        ));
    }
    // The chain identifiers Z̃.
    let z_vars: Vec<String> = (1..=k).map(|i| format!("zz{i}")).collect();
    // Copy of variable `v` used for block (i, j) of the Ỹ side.
    let copy_name = |v: &String, i: usize, j: usize| format!("{v}@{i}_{j}");
    // R_j(X̃_j Ỹ_j Z̃).
    for j in 0..p {
        let mut args: Vec<String> = Vec::new();
        if j > 0 {
            for (i, expr) in uniform.expressions.iter().enumerate() {
                let (_, x) = &expr.chain[j];
                for v in expand_block(x, u, &u1, &u2) {
                    // X̃_j uses the copies made for Ỹ_{j−1} (chain condition:
                    // X_{ij} ⊆ Y_{i(j−1)}).
                    args.push(copy_name(&v, i + 1, j - 1));
                }
            }
        }
        for (i, expr) in uniform.expressions.iter().enumerate() {
            let (y, _) = &expr.chain[j];
            for v in expand_block(y, u, &u1, &u2) {
                args.push(copy_name(&v, i + 1, j));
            }
        }
        args.extend(z_vars.iter().cloned());
        q2_atoms.push(Atom::new(format!("R{j}"), args));
    }
    let q2 =
        ConjunctiveQuery::boolean("Q2_reduction", q2_atoms).expect("reduction produces a valid Q2");

    // ---- Q1 ------------------------------------------------------------
    let mut q1_atoms: Vec<Atom> = Vec::new();
    for copy in 1..=q {
        let u1_c = adorned_name(&u1, copy);
        let u2_c = adorned_name(&u2, copy);
        for m in 1..=n {
            q1_atoms.push(Atom::new(format!("S{m}"), [u1_c.clone(), u2_c.clone()]));
        }
        for (i, _expr) in uniform.expressions.iter().enumerate() {
            let chain_index = i + 1;
            for j in 0..p {
                let mut args: Vec<String> = Vec::new();
                if j > 0 {
                    for (i2, expr2) in uniform.expressions.iter().enumerate() {
                        let (_, x) = &expr2.chain[j];
                        args.extend(block_for_copy(
                            x,
                            u,
                            &u1,
                            &u2,
                            i2 + 1 == chain_index,
                            copy,
                            &u1_c,
                        ));
                    }
                }
                for (i2, expr2) in uniform.expressions.iter().enumerate() {
                    let (y, _) = &expr2.chain[j];
                    args.extend(block_for_copy(
                        y,
                        u,
                        &u1,
                        &u2,
                        i2 + 1 == chain_index,
                        copy,
                        &u1_c,
                    ));
                }
                for m in 1..=k {
                    args.push(if m == chain_index {
                        u2_c.clone()
                    } else {
                        u1_c.clone()
                    });
                }
                q1_atoms.push(Atom::new(format!("R{j}"), args));
            }
        }
    }
    let q1 =
        ConjunctiveQuery::boolean("Q1_reduction", q1_atoms).expect("reduction produces a valid Q1");

    ReductionOutput {
        q1,
        q2,
        u1,
        u2,
        copies: q,
    }
}

/// The `Q1` variable block for a chain set: the adorned original variables
/// when this is the active disjunct `i`, and the adorned `U1` otherwise (one
/// occurrence per position of the expanded block).
fn block_for_copy(
    set: &BTreeSet<String>,
    distinguished: &str,
    u1: &str,
    u2: &str,
    active: bool,
    copy: usize,
    u1_adorned: &str,
) -> Vec<String> {
    let expanded = expand_block(set, distinguished, u1, u2);
    if active {
        expanded
            .into_iter()
            .map(|v| adorned_name(&v, copy))
            .collect()
    } else {
        expanded.iter().map(|_| u1_adorned.to_string()).collect()
    }
}

/// The flattened "erased" right-hand side of a uniform expression, with the
/// distinguished variable split into `U1 U2`:
/// `n·h(U1U2) + Σ_j h(Y_j | X_j)` (no `−q·h(V)` term).  Used by the tests to
/// state conditions (a)/(b) of Lemma 5.4.
pub fn erased_disjunct(
    expr: &UniformExpression,
    distinguished: &str,
    u1: &str,
    u2: &str,
) -> bqc_entropy::EntropyExpr {
    let mut out = bqc_entropy::EntropyExpr::zero();
    out.add_term(
        bqc_arith::Rational::from(expr.head_count as i64),
        [u1.to_string(), u2.to_string()],
    );
    for (y, x) in &expr.chain {
        let y_split: BTreeSet<String> =
            expand_block(y, distinguished, u1, u2).into_iter().collect();
        let x_split: BTreeSet<String> =
            expand_block(x, distinguished, u1, u2).into_iter().collect();
        out.add_conditional(bqc_arith::Rational::one(), &y_split, &x_split);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::containment_inequality;
    use bqc_arith::int;
    use bqc_entropy::EntropyExpr;
    use bqc_hypergraph::Hypergraph;
    use bqc_iip::{check_max_inequality, uniformize, LinearInequality, MaxInequality};
    use std::collections::BTreeMap;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    fn reduce(max: &MaxInequality) -> (ReductionOutput, bqc_iip::UniformMaxIip) {
        let uniform = uniformize(max, "UU");
        let output = max_iip_to_containment(&uniform);
        (output, uniform)
    }

    /// Conditions (a) and (b) of Lemma 5.4 for the produced instance: every
    /// composed expression `E_T ∘ φ` erases to some disjunct, and every
    /// disjunct has a constant adornment among the compositions.
    fn check_lemma_5_4_conditions(output: &ReductionOutput, uniform: &bqc_iip::UniformMaxIip) {
        let hypergraph = Hypergraph::new(output.q2.hyperedges());
        assert!(hypergraph.is_alpha_acyclic(), "Q2 must be acyclic");
        let td = hypergraph
            .join_tree()
            .expect("acyclic queries have join trees");
        let (_, composed) = containment_inequality(&output.q1, &output.q2, &td)
            .expect("the identity-style homomorphisms always exist");
        assert!(!composed.is_empty());

        let erased_disjuncts: Vec<EntropyExpr> = uniform
            .expressions
            .iter()
            .map(|e| erased_disjunct(e, &uniform.distinguished, &output.u1, &output.u2))
            .collect();

        // Condition (a): every E_T ∘ φ erases to one of the disjuncts.
        let mut seen_constant_adornments = vec![false; erased_disjuncts.len()];
        for conditional in &composed {
            let flat = conditional.flatten();
            // Erase the adornments.
            let rename: BTreeMap<String, String> = flat
                .variables()
                .into_iter()
                .map(|v| (v.clone(), erase_adornment(&v)))
                .collect();
            let erased = flat.compose(&rename);
            let position = erased_disjuncts.iter().position(|d| d == &erased);
            assert!(
                position.is_some(),
                "composed expression erased to {erased}, which is not a disjunct"
            );
            // Track constant adornments: all variables adorned with the same copy.
            let copies: BTreeSet<String> = flat
                .variables()
                .into_iter()
                .filter_map(|v| v.rsplit_once('#').map(|(_, l)| l.to_string()))
                .collect();
            if copies.len() <= 1 {
                seen_constant_adornments[position.expect("checked above")] = true;
            }
        }
        // Condition (b): every disjunct appears as a constant adornment.
        assert!(
            seen_constant_adornments.iter().all(|&b| b),
            "some disjunct has no constant adornment among hom(Q2, Q1)"
        );
    }

    #[test]
    fn reduction_of_a_valid_linear_inequality() {
        // 0 <= h(X): trivially valid.
        let ineq = LinearInequality::new(vars(&["X"]), expr(&[(1, &["X"])]));
        let (output, uniform) = reduce(&ineq.to_max());
        check_lemma_5_4_conditions(&output, &uniform);
        // Semantic equivalence over the Shannon cone (small enough to solve):
        // the containment inequality of (Q1, Q2) must be valid.
        let hypergraph = Hypergraph::new(output.q2.hyperedges());
        let td = hypergraph.join_tree().unwrap();
        let (containment, _) = containment_inequality(&output.q1, &output.q2, &td).unwrap();
        assert!(check_max_inequality(&containment).is_valid());
    }

    #[test]
    fn reduction_of_an_invalid_linear_inequality() {
        // 0 <= -h(X): invalid.
        let ineq = LinearInequality::new(vars(&["X"]), expr(&[(-1, &["X"])]));
        assert!(!check_max_inequality(&ineq.to_max()).is_valid());
        let (output, uniform) = reduce(&ineq.to_max());
        check_lemma_5_4_conditions(&output, &uniform);
        let hypergraph = Hypergraph::new(output.q2.hyperedges());
        let td = hypergraph.join_tree().unwrap();
        let (containment, _) = containment_inequality(&output.q1, &output.q2, &td).unwrap();
        assert!(!check_max_inequality(&containment).is_valid());
    }

    #[test]
    fn reduction_structure_of_example_5_2() {
        // Eq. (19): 0 <= h(X1) + 2h(X2) + h(X3) - h(X1X2) - h(X2X3).
        // The paper's Example 5.2 reduction has Q1 with 3 copies of 3 variables
        // (plus our U1/U2 split) and Q2 acyclic with a 3-atom chain plus unary
        // side atoms; our uniformization differs in inessential bookkeeping but
        // must produce an acyclic Q2 and satisfy Lemma 5.4.
        let ineq = LinearInequality::new(
            vars(&["X1", "X2", "X3"]),
            expr(&[
                (1, &["X1"]),
                (2, &["X2"]),
                (1, &["X3"]),
                (-1, &["X1", "X2"]),
                (-1, &["X2", "X3"]),
            ]),
        );
        let (output, uniform) = reduce(&ineq.to_max());
        assert_eq!(uniform.q, 3);
        assert_eq!(output.copies, 3);
        // Q1 consists of 3 adorned copies of the same sub-query.
        let q1_vars: BTreeSet<String> = output
            .q1
            .vars()
            .iter()
            .map(|v| erase_adornment(v))
            .collect();
        // X1, X2, X3, UU1, UU2.
        assert_eq!(q1_vars.len(), 5);
        assert_eq!(output.q1.num_vars(), 15);
        let hypergraph = Hypergraph::new(output.q2.hyperedges());
        assert!(hypergraph.is_alpha_acyclic());
        check_lemma_5_4_conditions(&output, &uniform);
    }

    #[test]
    fn reduction_of_a_max_inequality() {
        // max(h(X) - h(Y), h(Y) - h(X)) >= 0 (valid, but only as a max).
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        let (output, uniform) = reduce(&max);
        assert_eq!(uniform.expressions.len(), 2);
        check_lemma_5_4_conditions(&output, &uniform);
        // With two disjuncts the chain atoms carry two Z variables.
        let r0 = output
            .q2
            .atoms()
            .iter()
            .find(|a| a.relation == "R0")
            .expect("chain atom R0 exists");
        let z_count = r0.args.iter().filter(|v| v.starts_with("zz")).count();
        assert_eq!(z_count, 2);
    }

    #[test]
    fn homomorphisms_pick_a_single_disjunct() {
        // Every homomorphism Q2 → Q1 maps the whole chain into one adorned
        // copy and one disjunct — check via the Z variables' images.
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        let max = MaxInequality::new(vars(&["X", "Y"]), vec![d1, d2]);
        let (output, _uniform) = reduce(&max);
        let homs = crate::containment::query_homomorphisms(&output.q2, &output.q1);
        assert!(!homs.is_empty());
        for phi in &homs {
            let z_images: BTreeSet<&String> = phi
                .iter()
                .filter(|(v, _)| v.starts_with("zz"))
                .map(|(_, t)| t)
                .collect();
            // Exactly one Z variable maps to a U2 copy, the rest to the same U1 copy.
            let u2_images = z_images
                .iter()
                .filter(|t| erase_adornment(t).starts_with("UU2"))
                .count();
            assert_eq!(
                u2_images, 1,
                "homomorphism does not pick a single disjunct: {phi:?}"
            );
        }
    }
}
