//! The paper's syntactic reductions between containment-style problems.
//!
//! * Lemma A.1 — containment of queries with head variables reduces to
//!   containment of **Boolean** queries by adding one fresh unary atom per
//!   head variable ([`boolean_reduction`]).
//! * Fact A.3 — queries can be *saturated* with projection atoms so that every
//!   tree-decomposition bag is covered by atoms; saturation preserves
//!   containment ([`saturate`], [`saturate_pair`]).
//! * Section 2.2 — the bag-bag variant reduces to the bag-set variant by
//!   adding a fresh attribute to every atom occurrence
//!   ([`bag_bag_to_bag_set`]).
//! * Section 2.1 / 2.2 — the domination problem DOM between structures is the
//!   same problem as BagCQC via the structure ↔ query correspondence
//!   ([`dom_to_containment`]), and the exponent-domination problem of
//!   Kopparty–Rossman reduces to DOM by taking disjoint powers
//!   ([`exponent_domination_to_containment`]).

use bqc_relational::{structure_to_query, Atom, ConjunctiveQuery, Structure};
use std::collections::BTreeSet;

/// Lemma A.1: reduces a containment instance with head variables to a Boolean
/// one.  Both queries must have the same number of head variables; the head
/// variables are paired up positionally and each pair receives the same fresh
/// unary relation `U{i}`.
///
/// Returns an error string when the head arities differ.
pub fn boolean_reduction(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<(ConjunctiveQuery, ConjunctiveQuery), String> {
    if q1.head().len() != q2.head().len() {
        return Err(format!(
            "cannot compare queries with different head arities ({} vs {})",
            q1.head().len(),
            q2.head().len()
        ));
    }
    if q1.is_boolean() {
        return Ok((q1.clone(), q2.clone()));
    }
    // Choose a relation-name prefix that collides with nothing in either query.
    let mut prefix = "U".to_string();
    let used: BTreeSet<String> = q1
        .atoms()
        .iter()
        .chain(q2.atoms().iter())
        .map(|a| a.relation.clone())
        .collect();
    while used.iter().any(|r| r.starts_with(&prefix)) {
        prefix.push('_');
    }
    Ok((q1.to_boolean(&prefix), q2.to_boolean(&prefix)))
}

/// Fact A.3: adds, for every atom `R(x_1,…,x_a)` and every non-empty proper
/// subset `S ⊂ [a]` of its positions, a projection atom `R__S(x_S)` over a
/// fresh relation name.  The transformed query is equivalent for containment
/// purposes (both queries of an instance must be saturated together, and the
/// projection relations of a database are derived from the base relations).
pub fn saturate(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = query.atoms().to_vec();
    for atom in query.atoms() {
        let arity = atom.args.len();
        if arity <= 1 {
            continue;
        }
        for subset in 1u32..((1 << arity) - 1) {
            let positions: Vec<usize> = (0..arity).filter(|i| subset & (1 << i) != 0).collect();
            let name = format!(
                "{}__{}",
                atom.relation,
                positions
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join("_")
            );
            let args: Vec<String> = positions.iter().map(|&p| atom.args[p].clone()).collect();
            atoms.push(Atom::new(name, args));
        }
    }
    ConjunctiveQuery::new(format!("{}_sat", query.name), query.head().to_vec(), atoms)
        .expect("saturation of a valid query is valid")
}

/// Saturates both queries of a containment instance consistently.
pub fn saturate_pair(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> (ConjunctiveQuery, ConjunctiveQuery) {
    (saturate(q1), saturate(q2))
}

/// Section 2.2: reduces bag-bag containment to bag-set containment by adding
/// one fresh variable to every atom *occurrence* (modelling the tuple
/// multiplicity as an extra attribute).  Under this transformation repeated
/// atoms become distinct, as required by bag-bag semantics.
pub fn bag_bag_to_bag_set(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = query
        .atoms()
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            let mut args = atom.args.clone();
            args.push(format!("__mult_{}_{}", query.name, i));
            Atom::new(format!("{}_bb", atom.relation), args)
        })
        .collect();
    ConjunctiveQuery::new(
        format!("{}_bagbag", query.name),
        query.head().to_vec(),
        atoms,
    )
    .expect("bag-bag reduction of a valid query is valid")
}

/// The domination problem (Problem 2.1): `B` dominates `A` iff
/// `|hom(A,D)| ≤ |hom(B,D)|` for every `D`.  Via the structure ↔ query
/// correspondence of Section 2.2 this is the containment `Q_A ⊑ Q_B` of the
/// associated Boolean queries.  Returns `None` when either structure has no
/// tuples at all (its associated query would have an empty body; domination is
/// then settled directly by comparing domain sizes and is not interesting).
pub fn dom_to_containment(
    a: &Structure,
    b: &Structure,
) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
    let (qa, isolated_a) = structure_to_query(a, "Q_A");
    let (qb, isolated_b) = structure_to_query(b, "Q_B");
    if !isolated_a.is_empty() || !isolated_b.is_empty() {
        return None;
    }
    Some((qa?, qb?))
}

/// Problem 2.2 (exponent domination): `|hom(A,D)|^c ≤ |hom(B,D)|` for all `D`,
/// with `c = num/den ≥ 0` rational, reduces to DOM via
/// `|hom(n·A, D)| = |hom(A,D)|^n`: the instance becomes
/// `num·A  ⊑-dominated-by  den·B`.
///
/// # Panics
///
/// Panics if `den` is zero.
pub fn exponent_domination_to_containment(
    a: &Structure,
    b: &Structure,
    num: usize,
    den: usize,
) -> Option<(ConjunctiveQuery, ConjunctiveQuery)> {
    assert!(den > 0, "exponent denominator must be positive");
    if num == 0 {
        // |hom(A,D)|^0 = 1 ≤ |hom(B,D)| iff B always has a homomorphism; treat
        // as the domination of the "single fact" structure... simplest honest
        // answer: not expressible as a containment of these two queries.
        return None;
    }
    let a_pow = a.disjoint_copies(num);
    let b_pow = b.disjoint_copies(den);
    dom_to_containment(&a_pow, &b_pow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::{count_homomorphisms, parse_query, parse_structure, Value};

    #[test]
    fn boolean_reduction_example_a_2() {
        // Example A.2 (from Chaudhuri–Vardi):
        //   Q1(x,z) :- P(x), S(u,x), S(v,z), R(z)
        //   Q2(x,z) :- P(x), S(u,y), S(v,y), R(z)
        let q1 = parse_query("Q1(x, z) :- P(x), S(u, x), S(v, z), R(z)").unwrap();
        let q2 = parse_query("Q2(x, z) :- P(x), S(u, y), S(v, y), R(z)").unwrap();
        let (b1, b2) = boolean_reduction(&q1, &q2).unwrap();
        assert!(b1.is_boolean() && b2.is_boolean());
        assert_eq!(b1.atoms().len(), 6);
        assert_eq!(b2.atoms().len(), 6);
        // The same unary relation names are used on both sides.
        let unary_names_1: BTreeSet<&str> = b1
            .atoms()
            .iter()
            .filter(|a| a.args.len() == 1 && a.relation.starts_with('U'))
            .map(|a| a.relation.as_str())
            .collect();
        let unary_names_2: BTreeSet<&str> = b2
            .atoms()
            .iter()
            .filter(|a| a.args.len() == 1 && a.relation.starts_with('U'))
            .map(|a| a.relation.as_str())
            .collect();
        assert_eq!(unary_names_1, unary_names_2);
        assert_eq!(unary_names_1.len(), 2);
    }

    #[test]
    fn boolean_reduction_preserves_counts_on_instances() {
        // Sanity-check the semantics of Lemma A.1 on a concrete database: the
        // total number of homomorphisms of the Boolean query over D extended
        // with singleton unary relations U_i = {d_i} equals Q[d](D).
        let q = parse_query("Q(x) :- R(x, y)").unwrap();
        let (b, _) = boolean_reduction(&q, &q).unwrap();
        let db = parse_structure("R(1,2). R(1,3). R(2,3).").unwrap();
        // d = (1): out-degree 2.
        let mut extended = db.clone();
        extended.add_fact("U1", vec![Value::int(1)]);
        assert_eq!(count_homomorphisms(&b, &extended), 2);
        // d = (3): out-degree 0.
        let mut extended = db;
        extended.add_fact("U1", vec![Value::int(3)]);
        assert_eq!(count_homomorphisms(&b, &extended), 0);
    }

    #[test]
    fn boolean_reduction_rejects_mismatched_heads() {
        let q1 = parse_query("Q1(x) :- R(x, y)").unwrap();
        let q2 = parse_query("Q2(x, y) :- R(x, y)").unwrap();
        assert!(boolean_reduction(&q1, &q2).is_err());
    }

    #[test]
    fn boolean_reduction_avoids_name_clashes() {
        let q1 = parse_query("Q1(x) :- U1(x, y)").unwrap();
        let q2 = parse_query("Q2(z) :- U1(z, w)").unwrap();
        let (b1, _) = boolean_reduction(&q1, &q2).unwrap();
        // The fresh unary relation must not be called U1 (already a binary symbol).
        let unary: Vec<&Atom> = b1.atoms().iter().filter(|a| a.args.len() == 1).collect();
        assert_eq!(unary.len(), 1);
        assert_ne!(unary[0].relation, "U1");
    }

    #[test]
    fn saturation_adds_projection_atoms() {
        let q = parse_query("Q() :- R(x, y, z)").unwrap();
        let saturated = saturate(&q);
        // One original atom + 2^3 - 2 = 6 proper non-empty projections.
        assert_eq!(saturated.atoms().len(), 7);
        assert!(saturated
            .atoms()
            .iter()
            .any(|a| a.relation == "R__0_1" && a.args == vec!["x", "y"]));
        assert!(saturated
            .atoms()
            .iter()
            .any(|a| a.relation == "R__2" && a.args == vec!["z"]));
        // Unary atoms are left alone.
        let q = parse_query("Q() :- P(x)").unwrap();
        assert_eq!(saturate(&q).atoms().len(), 1);
    }

    #[test]
    fn bag_bag_reduction_adds_multiplicity_attributes() {
        let q = parse_query("Q() :- R(x, y), R(x, y), S(y)").unwrap();
        // Under bag-set semantics the repeated atom was dropped at parse time,
        // so start from a query where the atoms are distinct.
        assert_eq!(q.atoms().len(), 2);
        let bb = bag_bag_to_bag_set(&q);
        assert_eq!(bb.atoms().len(), 2);
        for atom in bb.atoms() {
            assert!(atom.relation.ends_with("_bb"));
            assert!(atom.args.last().unwrap().starts_with("__mult_"));
        }
        // Arities grew by one.
        assert_eq!(bb.vocabulary().arity_of("R_bb"), Some(3));
        assert_eq!(bb.vocabulary().arity_of("S_bb"), Some(2));
    }

    #[test]
    fn dom_reduction_round_trips_homomorphism_counts() {
        // A = single edge, B = 2-path; the associated queries count the same
        // homomorphisms as the structures do.
        let a = parse_structure("R(a, b).").unwrap();
        let b = parse_structure("R(a, b). R(b, c).").unwrap();
        let (qa, qb) = dom_to_containment(&a, &b).unwrap();
        let target = parse_structure("R(1,2). R(2,3). R(3,1).").unwrap();
        assert_eq!(
            count_homomorphisms(&qa, &target),
            bqc_relational::count_structure_homomorphisms(&a, &target)
        );
        assert_eq!(
            count_homomorphisms(&qb, &target),
            bqc_relational::count_structure_homomorphisms(&b, &target)
        );
    }

    #[test]
    fn dom_reduction_rejects_structures_with_isolated_values() {
        let mut a = parse_structure("R(a, b).").unwrap();
        a.add_domain_value(Value::text("isolated"));
        let b = parse_structure("R(a, b).").unwrap();
        assert!(dom_to_containment(&a, &b).is_none());
    }

    #[test]
    fn exponent_domination_builds_powers() {
        let a = parse_structure("R(a, b).").unwrap();
        let b = parse_structure("R(a, b). R(b, c).").unwrap();
        // c = 2/1: compare hom(A,D)^2 with hom(B,D).
        let (qa, qb) = exponent_domination_to_containment(&a, &b, 2, 1).unwrap();
        let target = parse_structure("R(1,2). R(2,3).").unwrap();
        let hom_a = bqc_relational::count_structure_homomorphisms(&a, &target);
        let hom_b = bqc_relational::count_structure_homomorphisms(&b, &target);
        assert_eq!(count_homomorphisms(&qa, &target), hom_a * hom_a);
        assert_eq!(count_homomorphisms(&qb, &target), hom_b);
        assert!(exponent_domination_to_containment(&a, &b, 0, 1).is_none());
    }
}
