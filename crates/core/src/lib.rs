//! # bqc-core — bag query containment via information theory
//!
//! The primary contribution of *Bag Query Containment and Information Theory*
//! (Abo Khamis, Kolaitis, Ngo, Suciu — PODS 2020), implemented end to end:
//!
//! * [`et`] — the expression `E_T` of Eq. (7) attached to a tree
//!   decomposition, in its conditional, node/edge and inclusion–exclusion
//!   (Eq. 32) forms;
//! * [`containment`] — the containment inequality of Eq. (8) linking
//!   `Q1 ⊑ Q2` to a max-information inequality (Theorems 4.2 / 4.4);
//! * [`decide`] — the decision procedure of Theorem 3.1: containment is
//!   decidable (in exponential time) when the containing query is chordal and
//!   admits a simple junction tree; sound "contained" answers are produced for
//!   arbitrary `Q2` via Theorem 4.2;
//! * [`pipeline`] — the staged form of that procedure: a cost-ordered
//!   [`pipeline::DecisionPipeline`] of [`pipeline::DecisionStage`]s (cheap
//!   structural screens, the counting refuter, the Shannon-cone LP, witness
//!   materialization), every answer carrying a structured
//!   [`pipeline::DecisionTrace`];
//! * [`legacy`] — the pre-refactor monolithic procedure, preserved verbatim
//!   as the equivalence-test oracle and benchmark baseline;
//! * [`oracle`] — the differential counting oracle: consensus homomorphism
//!   counting (backtracking vs junction-tree DP vs brute-force enumeration)
//!   and verdict replay against explicit database families, the independent
//!   ground truth behind the adversarial corpus and `bqc fuzz`;
//! * [`witness`] — witnesses of non-containment (Fact 3.2), product and
//!   normal witnesses (Theorem 3.4), extraction of verified witnesses from
//!   polymatroid counterexamples (Lemma 3.7 + Lemma 4.8), and a brute-force
//!   oracle for small instances;
//! * [`reductions`] — the Boolean reduction (Lemma A.1), query saturation
//!   (Fact A.3), the bag-bag → bag-set reduction, and the DOM /
//!   exponent-domination reductions of Section 2;
//! * [`reduction_to_bagcqc`] — the other half of Theorem 2.7: the many-one
//!   reduction from Max-IIP to containment with an acyclic containing query
//!   (Section 5);
//! * [`yannakakis`] — junction-tree based homomorphism counting for acyclic
//!   queries, used as a faster alternative to backtracking and as an ablation
//!   baseline in the benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use bqc_core::decide_containment;
//! use bqc_relational::parse_query;
//!
//! // Example 4.3 (attributed to Eric Vee): the triangle query is contained in
//! // the two-out-star query under bag-set semantics.
//! let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
//! let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
//! assert!(decide_containment(&triangle, &star).unwrap().is_contained());
//! assert!(decide_containment(&star, &triangle).unwrap().is_not_contained());
//! ```

pub mod containment;
pub mod decide;
pub mod et;
pub mod legacy;
// The oracle's `Err` is the full diagnostic (separating database, claimed
// vs recomputed counts) and only materializes when a checker finds a bug —
// the cold path by definition, so the large-variant lint does not apply.
#[allow(clippy::result_large_err)]
pub mod oracle;
pub mod pipeline;
pub mod reduction_to_bagcqc;
pub mod reductions;
pub mod witness;
pub mod yannakakis;

pub use containment::{
    containment_inequality, containment_inequality_from_homs, query_homomorphisms,
    query_homomorphisms_budgeted, sufficient_containment_check, QueryHomomorphism,
};
pub use decide::{
    decide_containment, decide_containment_in, decide_containment_traced, decide_containment_with,
    AnswerSummary, ContainmentAnswer, DecideContext, DecideError, DecideOptions, Obstruction,
};
pub use pipeline::{
    Decision, DecisionPipeline, DecisionStage, DecisionTrace, StageReport, StageStatus,
};
// Re-exported so engines can share separation skeletons across their worker
// contexts (see `DecideContext::with_skeletons`) without a direct
// `bqc-entropy` dependency.
pub use bqc_entropy::SkeletonCache;
// Re-exported so callers can configure `DecideOptions::budget` (and match on
// `Obstruction::ResourceExhausted`) without a direct `bqc-obs` dependency.
pub use bqc_obs::{Budget, BudgetResource, BudgetSpec, Exhausted};
pub use et::{et_expression, et_inclusion_exclusion, et_node_edge_form};
pub use oracle::{
    check_answer, check_obstruction, check_summary, checked_count, count_violation, naive_count,
    replay_witness, CheckReport, CountViolation, Discrepancy,
};
pub use reduction_to_bagcqc::{max_iip_to_containment, ReductionOutput};
pub use reductions::{
    bag_bag_to_bag_set, boolean_reduction, dom_to_containment, exponent_domination_to_containment,
    saturate, saturate_pair,
};
pub use witness::{
    exhaustive_containment_check, search_product_witness, verify_witness,
    witness_from_counterexample, NonContainmentWitness,
};
pub use yannakakis::count_homomorphisms_acyclic;
