//! The decision procedure for bag-set containment (Theorem 3.1).
//!
//! Given `Q1` and `Q2`, [`decide_containment`] answers `Q1 ⊑ Q2` by running
//! the staged pipeline of [`crate::pipeline`] — a cost-ordered cascade of
//! cheap structural screens (Boolean reduction, syntactic identity,
//! hom-existence, junction tree, the counting refuter) in front of the one
//! expensive Shannon-cone LP and, on refutation, witness materialization.
//! [`decide_containment_traced`] returns the same answer together with the
//! per-stage [`DecisionTrace`](crate::pipeline::DecisionTrace); the plain
//! entry points discard the trace.
//!
//! The possible answers are unchanged from the paper's procedure:
//!
//! * **Contained** — the Eq. (8) inequality is Shannon-valid (Theorem 4.2;
//!   sound for *every* `Q2`, chordal or not), or the queries are
//!   syntactically identical;
//! * **NotContained** — `hom(Q2, Q1) = ∅`, or the counting refuter found a
//!   separating database (Fact 3.2), or the instance is in the decidable
//!   class and the inequality failed (Theorem 3.1 / Lemma E.1), with a
//!   verified witness materialized when the budget allows;
//! * **Unknown** — the inequality failed but `Q2` is outside the decidable
//!   class; the violating polymatroid is returned alongside the obstruction —
//!   whether such instances are decidable at all is exactly the open problem
//!   the paper connects to Max-IIP (Theorem 2.7).

use crate::pipeline::{Decision, DecisionPipeline};
use crate::witness::NonContainmentWitness;
use bqc_entropy::{SetFunction, SkeletonCache};
use bqc_iip::{GammaProver, MaxInequality};
use bqc_obs::{BudgetResource, BudgetSpec};
use bqc_relational::ConjunctiveQuery;
use std::sync::OnceLock;

/// Why the decision procedure could not reach a yes/no answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Obstruction {
    /// `Q2`'s Gaifman graph is not chordal, so no junction tree exists.
    NotChordal,
    /// `Q2` is chordal but its junction tree is not simple, so Theorem 3.6
    /// does not apply and a polymatroid counterexample is inconclusive.
    JunctionTreeNotSimple,
    /// The decision's resource budget ([`DecideOptions::budget`]) ran out
    /// before the procedure reached a verdict.  Sound by construction — the
    /// answer is `Unknown`, never a guess — but unlike the structural
    /// obstructions it depends on the budget (and, for deadlines, on wall
    /// clock), so budget-exhausted answers must never be cached.
    ResourceExhausted {
        /// Which budgeted resource ran out.
        resource: BudgetResource,
    },
}

impl std::fmt::Display for Obstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Obstruction::NotChordal => write!(f, "containing query is not chordal"),
            Obstruction::JunctionTreeNotSimple => {
                write!(f, "junction tree of the containing query is not simple")
            }
            Obstruction::ResourceExhausted { resource } => {
                write!(f, "{} budget exhausted", resource.token())
            }
        }
    }
}

/// The answer of [`decide_containment`].
// One answer value exists per decision call, so the size skew between the
// witness-carrying and witness-free variants is not worth boxing away.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ContainmentAnswer {
    /// `Q1 ⊑ Q2` holds for every database; the containment inequality is
    /// Shannon-valid (Theorem 4.2).
    Contained {
        /// The Eq. (8) inequality that was proven valid, when one was built
        /// (`None` only for the syntactic-identity shortcut).
        inequality: Option<MaxInequality>,
    },
    /// `Q1 ⋢ Q2`; when the witness budget sufficed, `witness` carries a
    /// concrete database on which `Q1` has strictly more homomorphisms.
    NotContained {
        /// A verified counterexample database, if one was materialized.
        witness: Option<NonContainmentWitness>,
        /// The violating polymatroid from the LP, if the refutation came from
        /// the containment inequality (absent for the no-homomorphism and
        /// counting-refuter cases, which never touch the LP).
        counterexample: Option<SetFunction>,
    },
    /// The instance falls outside the decidable class of Theorem 3.1 and the
    /// sufficient condition of Theorem 4.2 did not fire.
    Unknown {
        /// What kept the instance out of the decidable class.
        obstruction: Obstruction,
        /// The violating polymatroid of the Γ_n check, when one was computed.
        counterexample: Option<SetFunction>,
    },
}

impl ContainmentAnswer {
    /// `true` iff the answer is a definite "contained".
    pub fn is_contained(&self) -> bool {
        matches!(self, ContainmentAnswer::Contained { .. })
    }

    /// `true` iff the answer is a definite "not contained".
    pub fn is_not_contained(&self) -> bool {
        matches!(self, ContainmentAnswer::NotContained { .. })
    }

    /// `true` iff the procedure could not decide.
    pub fn is_unknown(&self) -> bool {
        matches!(self, ContainmentAnswer::Unknown { .. })
    }

    /// A cheap, `Copy`-able summary of the answer, suitable for caching and
    /// batch reporting.  Drops the heavyweight payloads (inequality, witness
    /// database, counterexample polymatroid) and keeps the verdict.
    pub fn summary(&self) -> AnswerSummary {
        match self {
            ContainmentAnswer::Contained { .. } => AnswerSummary::Contained,
            ContainmentAnswer::NotContained { witness, .. } => AnswerSummary::NotContained {
                witness_verified: witness.is_some(),
            },
            ContainmentAnswer::Unknown { obstruction, .. } => AnswerSummary::Unknown {
                obstruction: *obstruction,
            },
        }
    }
}

impl std::fmt::Display for ContainmentAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainmentAnswer::Contained { .. } => write!(f, "contained"),
            ContainmentAnswer::NotContained {
                witness: Some(w), ..
            } => write!(
                f,
                "not contained (witness: {} Q1-homomorphisms vs {} Q2-homomorphisms)",
                w.hom_q1, w.hom_q2
            ),
            ContainmentAnswer::NotContained { witness: None, .. } => write!(f, "not contained"),
            ContainmentAnswer::Unknown { obstruction, .. } => {
                write!(f, "undecided: {obstruction}")
            }
        }
    }
}

/// The verdict of a containment decision without its heavyweight payloads.
///
/// [`ContainmentAnswer`] carries witnesses, polymatroids and inequalities;
/// this summary is `Copy`, hashable and a few machine words, which is what a
/// decision cache wants to store and what batch reports want to print.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnswerSummary {
    /// `Q1 ⊑ Q2` holds for every database.
    Contained,
    /// `Q1 ⋢ Q2`.
    NotContained {
        /// Whether a concrete counterexample database was materialized and
        /// verified by counting when the full answer was produced.
        witness_verified: bool,
    },
    /// The instance falls outside the decidable class of Theorem 3.1.
    Unknown {
        /// What kept the instance out of the decidable class.
        obstruction: Obstruction,
    },
}

impl AnswerSummary {
    /// `true` iff the verdict is a definite "contained".
    pub fn is_contained(&self) -> bool {
        matches!(self, AnswerSummary::Contained)
    }

    /// `true` iff the verdict is a definite "not contained".
    pub fn is_not_contained(&self) -> bool {
        matches!(self, AnswerSummary::NotContained { .. })
    }

    /// `true` iff the procedure could not decide.
    pub fn is_unknown(&self) -> bool {
        matches!(self, AnswerSummary::Unknown { .. })
    }

    /// The three-way verdict with payload flags erased, for comparing a
    /// summary against a [`ContainmentAnswer`] produced elsewhere.
    pub fn verdict(&self) -> &'static str {
        match self {
            AnswerSummary::Contained => "contained",
            AnswerSummary::NotContained { .. } => "not contained",
            AnswerSummary::Unknown { .. } => "undecided",
        }
    }
}

impl std::fmt::Display for AnswerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerSummary::Contained => write!(f, "contained"),
            AnswerSummary::NotContained {
                witness_verified: true,
            } => write!(f, "not contained (verified witness)"),
            AnswerSummary::NotContained {
                witness_verified: false,
            } => write!(f, "not contained"),
            AnswerSummary::Unknown { obstruction } => write!(f, "undecided: {obstruction}"),
        }
    }
}

/// Errors preventing the procedure from producing an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecideError {
    /// The queries have different numbers of head variables.
    MismatchedHeads(String),
    /// A custom [`DecisionPipeline`] ran
    /// out of stages before any of them decided the instance.  The standard
    /// pipeline never produces this: its LP and witness stages decide every
    /// instance that reaches them.
    PipelineIncomplete,
    /// The decision procedure panicked and the panic was contained by the
    /// caller (see `bqc-engine`).  The payload is the panic message.  This is
    /// an *error*, not an answer: nothing about the pair was established, and
    /// the result must never be cached.
    Panicked(String),
}

impl std::fmt::Display for DecideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecideError::MismatchedHeads(message) => write!(f, "{message}"),
            DecideError::PipelineIncomplete => {
                write!(f, "decision pipeline exhausted its stages without deciding")
            }
            DecideError::Panicked(message) => {
                write!(f, "decision procedure panicked: {message}")
            }
        }
    }
}

impl std::error::Error for DecideError {}

/// Tuning knobs for [`decide_containment_with`].
#[derive(Clone, Debug)]
pub struct DecideOptions {
    /// Maximum number of rows a materialized witness relation may have.
    pub witness_max_rows: u64,
    /// Whether to attempt witness extraction at all.
    pub extract_witness: bool,
    /// Whether the counting-refuter stage may run (sound fast refutation by
    /// hom-counting on small databases before any LP work; see
    /// [`crate::pipeline::CountingRefuter`]).  Disable to reproduce the
    /// LP-only cost profile of the pre-refactor procedure.
    pub counting_refuter: bool,
    /// Resource budget for the decision: a wall-clock deadline and/or caps
    /// on LP pivots, separation rounds and hom-steps, checked cooperatively
    /// throughout the pipeline.  An exhausted budget yields a sound
    /// `Unknown` answer with [`Obstruction::ResourceExhausted`] and a
    /// partial trace — never a wrong verdict.  The default is
    /// [`BudgetSpec::UNLIMITED`], under which every budget check is a single
    /// pointer test and verdicts are bit-identical to the unbudgeted
    /// procedure.
    pub budget: BudgetSpec,
}

impl Default for DecideOptions {
    fn default() -> DecideOptions {
        DecideOptions {
            witness_max_rows: 1 << 10,
            extract_witness: true,
            counting_refuter: true,
            budget: BudgetSpec::UNLIMITED,
        }
    }
}

/// Reusable state for a sequence of containment decisions.
///
/// The decision procedure bottoms out in exact LP feasibility probes over the
/// Shannon cone, which the [`GammaProver`] answers with a lazy separation
/// loop; a context carries the prover, whose warm cache (active elemental
/// rows and optimal basis per probe shape) lets consecutive decisions with
/// same-shaped programs start one separation round from done and skip LP
/// phase 1 (via the incremental solver in `bqc-lp`).  A context is cheap to
/// create and single-threaded by design — callers running decisions on a
/// worker pool (like `bqc-engine`) should hold one context per worker,
/// sharing the immutable separation skeletons through
/// [`DecideContext::with_skeletons`].
///
/// **Determinism boundary.**  A warm-started feasibility probe may terminate
/// at a *different* optimal vertex than a cold solve — still a valid
/// violating polymatroid, but a different one, and witness materialization
/// under [`DecideOptions::witness_max_rows`] is sensitive to which vertex it
/// starts from.  The shared prover is therefore consulted **only when
/// [`DecideOptions::extract_witness`] is `false`**; witness-extracting
/// decisions always run on a fresh prover.  This makes the verdict and the
/// [`AnswerSummary`] of every decision independent of context history —
/// which is what `bqc-engine`'s cache-determinism invariant needs — while
/// the `counterexample` polymatroid attached to a witness-free
/// `NotContained`/`Unknown` answer may still be a different (equally valid)
/// violating vertex than a cold decision would return.  High-throughput
/// serving paths that disable witnesses (the `bqc` CLI's `--no-witness`,
/// cache-fill workloads) get the warm-start speedup, and cached summaries
/// stay byte-identical to fresh recomputes.  Decision *traces* sit on the
/// same side of the boundary as summaries: the stage sequence and notes are
/// history-independent (the LP stage's trace does not expose separation
/// round counts), so the trace-determinism invariant holds for warm and
/// cold contexts alike.
#[derive(Debug, Default)]
pub struct DecideContext {
    gamma: GammaProver,
}

impl DecideContext {
    /// Creates a fresh context with an empty warm-start cache.
    pub fn new() -> DecideContext {
        DecideContext::default()
    }

    /// Creates a fresh context whose prover draws its cone skeletons (the
    /// immutable per-universe-size separation data) from a shared cache.
    ///
    /// Skeleton sharing is safe across the determinism boundary below: a
    /// skeleton carries no probe history, so it can be handed to every
    /// worker context *and* to the fresh provers of witness-extracting
    /// decisions without verdicts or witnesses depending on it.
    pub fn with_skeletons(skeletons: SkeletonCache) -> DecideContext {
        DecideContext {
            gamma: GammaProver::with_skeletons(skeletons),
        }
    }

    /// The underlying Shannon-cone prover (exposed for diagnostics).
    pub fn gamma(&self) -> &GammaProver {
        &self.gamma
    }
}

/// The process-wide standard pipeline: the stage list is immutable and the
/// stages are stateless, so one instance serves every decision.
fn standard_pipeline() -> &'static DecisionPipeline {
    static PIPELINE: OnceLock<DecisionPipeline> = OnceLock::new();
    PIPELINE.get_or_init(DecisionPipeline::standard)
}

/// Decides `Q1 ⊑ Q2` under bag-set semantics with default options.
pub fn decide_containment(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<ContainmentAnswer, DecideError> {
    decide_containment_with(q1, q2, &DecideOptions::default())
}

/// Decides `Q1 ⊑ Q2` under bag-set semantics.
pub fn decide_containment_with(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Result<ContainmentAnswer, DecideError> {
    decide_containment_in(&mut DecideContext::new(), q1, q2, options)
}

/// Decides `Q1 ⊑ Q2` under bag-set semantics, reusing `ctx` across calls.
pub fn decide_containment_in(
    ctx: &mut DecideContext,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Result<ContainmentAnswer, DecideError> {
    decide_containment_traced(ctx, q1, q2, options).map(|decision| decision.answer)
}

/// Decides `Q1 ⊑ Q2` and returns the answer together with its
/// [`DecisionTrace`](crate::pipeline::DecisionTrace) — which stage decided,
/// what each stage concluded, and what each cost.
pub fn decide_containment_traced(
    ctx: &mut DecideContext,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Result<Decision, DecideError> {
    // Witness-extracting decisions must not depend on the context's LP
    // history (see the DecideContext docs): give them a fresh prover; the
    // warm cache serves only vertex-insensitive (witness-free) decisions.
    // The immutable skeletons are still shared — they carry no history.
    let mut fresh = GammaProver::with_skeletons(ctx.gamma.skeletons().clone());
    let gamma = if options.extract_witness {
        &mut fresh
    } else {
        &mut ctx.gamma
    };
    standard_pipeline().run(gamma, q1, q2, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::exhaustive_containment_check;
    use bqc_relational::parse_query;

    #[test]
    fn example_4_3_triangle_contained_in_two_star() {
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let answer = decide_containment(&triangle, &star).unwrap();
        assert!(answer.is_contained());
        // The reverse direction fails, with a verified witness.
        let reverse = decide_containment(&star, &triangle).unwrap();
        match reverse {
            ContainmentAnswer::NotContained { witness, .. } => {
                let witness = witness.expect("witness should be materialized");
                assert!(witness.hom_q1 > witness.hom_q2);
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
    }

    #[test]
    fn example_3_5_not_contained_with_witness() {
        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        let answer = decide_containment(&q1, &q2).unwrap();
        match answer {
            ContainmentAnswer::NotContained { witness, .. } => {
                let witness = witness.expect("witness should be materialized");
                assert!(witness.hom_q1 > witness.hom_q2);
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
        // With the counting refuter disabled the Theorem 3.1 LP path decides
        // and attaches its violating polymatroid.
        let options = DecideOptions {
            counting_refuter: false,
            ..DecideOptions::default()
        };
        let answer = decide_containment_with(&q1, &q2, &options).unwrap();
        match answer {
            ContainmentAnswer::NotContained {
                witness,
                counterexample,
            } => {
                assert!(counterexample.is_some());
                let witness = witness.expect("witness should be materialized");
                assert!(witness.hom_q1 > witness.hom_q2);
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
    }

    #[test]
    fn identical_queries_are_contained() {
        for text in [
            "Q() :- R(x,y)",
            "Q() :- R(x,y), S(y,z)",
            "Q() :- R(x,y), R(y,x)",
            "Q() :- R(x,x)",
        ] {
            let q = parse_query(text).unwrap();
            let answer = decide_containment(&q, &q).unwrap();
            assert!(answer.is_contained(), "query {text} must contain itself");
        }
    }

    #[test]
    fn adding_atoms_preserves_containment_direction() {
        // Q1 = R(x,y), S(x,y) ⊑ Q2 = R(u,v): dropping an atom can only keep or
        // increase the homomorphism count.
        let q1 = parse_query("Q1() :- R(x,y), S(x,y)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        assert!(decide_containment(&q1, &q2).unwrap().is_contained());
        // And the converse fails.
        let reverse = decide_containment(&q2, &q1).unwrap();
        assert!(reverse.is_not_contained());
    }

    #[test]
    fn no_homomorphism_case_yields_canonical_witness() {
        let q1 = parse_query("Q1() :- R(x,y)").unwrap();
        let q2 = parse_query("Q2() :- S(u,v)").unwrap();
        let answer = decide_containment(&q1, &q2).unwrap();
        match answer {
            ContainmentAnswer::NotContained {
                witness,
                counterexample,
            } => {
                assert!(counterexample.is_none());
                let witness = witness.expect("canonical witness");
                assert_eq!(witness.hom_q1, 1);
                assert_eq!(witness.hom_q2, 0);
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
    }

    #[test]
    fn non_boolean_queries_are_reduced() {
        // Example A.2's queries: what we check is simply that the procedure
        // runs end-to-end on non-Boolean input and agrees with the
        // brute-force oracle on the Boolean reduction.
        let q1 = parse_query("Q1(x, z) :- P(x), S(u, x), S(v, z), R(z)").unwrap();
        let q2 = parse_query("Q2(x, z) :- P(x), S(u, y), S(v, y), R(z)").unwrap();
        let answer = decide_containment(&q1, &q2).unwrap();
        assert!(!answer.is_unknown());
        // Mismatched heads are rejected.
        let q3 = parse_query("Q3(x) :- P(x)").unwrap();
        assert!(decide_containment(&q1, &q3).is_err());
    }

    #[test]
    fn decisions_agree_with_exhaustive_oracle_on_small_instances() {
        let cases = [
            ("Q1() :- R(x,y), R(y,z)", "Q2() :- R(u,v)"),
            ("Q1() :- R(x,y)", "Q2() :- R(u,v), R(v,w)"),
            ("Q1() :- R(x,y), R(y,x)", "Q2() :- R(u,v)"),
            ("Q1() :- R(x,x)", "Q2() :- R(u,v)"),
            ("Q1() :- R(x,y), S(y,z)", "Q2() :- R(u,v), S(v,w)"),
            ("Q1() :- R(x,y), S(y,x)", "Q2() :- R(u,v), S(v,w)"),
        ];
        for (t1, t2) in cases {
            let q1 = parse_query(t1).unwrap();
            let q2 = parse_query(t2).unwrap();
            let answer = decide_containment(&q1, &q2).unwrap();
            let oracle = exhaustive_containment_check(&q1, &q2, 2);
            match (&answer, &oracle) {
                (ContainmentAnswer::Contained { .. }, Err(db)) => {
                    panic!("procedure says contained but oracle found counterexample {db} for {t1} vs {t2}")
                }
                (ContainmentAnswer::NotContained { .. }, Ok(())) => {
                    // The oracle only checks domains of size 2, so this is not
                    // necessarily a contradiction; but for these hand-picked
                    // cases a small counterexample must exist.
                    panic!("procedure says not contained but oracle found none for {t1} vs {t2}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn extract_witness_false_suppresses_every_witness_path() {
        let options = DecideOptions {
            extract_witness: false,
            ..DecideOptions::default()
        };
        // No-homomorphism shortcut, counting-refuter shortcut, and the
        // Theorem 3.1 refutation path must all respect the flag.
        let cases = [
            ("Q1() :- R(x,y)", "Q2() :- S(u,v)"),
            ("Q1() :- R(u,v), R(u,w)", "Q2() :- R(x,y), R(y,z), R(z,x)"),
            (
                "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
                "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
            ),
        ];
        for (t1, t2) in cases {
            let q1 = parse_query(t1).unwrap();
            let q2 = parse_query(t2).unwrap();
            let answer = decide_containment_with(&q1, &q2, &options).unwrap();
            match answer {
                ContainmentAnswer::NotContained { witness, .. } => {
                    assert!(witness.is_none(), "{t1} vs {t2} must skip the witness")
                }
                other => panic!("expected NotContained for {t1} vs {t2}, got {other:?}"),
            }
        }
    }

    #[test]
    fn summaries_and_display_track_the_full_answer() {
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let contained = decide_containment(&triangle, &star).unwrap();
        assert_eq!(contained.summary(), AnswerSummary::Contained);
        assert_eq!(contained.to_string(), "contained");
        assert_eq!(contained.summary().verdict(), "contained");

        let not = decide_containment(&star, &triangle).unwrap();
        assert_eq!(
            not.summary(),
            AnswerSummary::NotContained {
                witness_verified: true
            }
        );
        assert!(not.to_string().starts_with("not contained (witness:"));
        assert_eq!(
            not.summary().to_string(),
            "not contained (verified witness)"
        );

        let square = parse_query("Q() :- R(a,b), R(b,c), R(c,d), R(d,a)").unwrap();
        let q1 = parse_query("Q1() :- R(x,y), R(y,z), R(z,w), R(w,x), R(x,z)").unwrap();
        let answer = decide_containment(&q1, &square).unwrap();
        if answer.is_unknown() {
            assert_eq!(
                answer.summary(),
                AnswerSummary::Unknown {
                    obstruction: Obstruction::NotChordal
                }
            );
            assert_eq!(
                answer.to_string(),
                "undecided: containing query is not chordal"
            );
        }
        assert_eq!(
            Obstruction::JunctionTreeNotSimple.to_string(),
            "junction tree of the containing query is not simple"
        );
    }

    #[test]
    fn shared_context_matches_fresh_contexts_across_a_sequence() {
        // Warm-started LP probes must never change a verdict: run a mixed
        // sequence twice, once through one shared context and once with a
        // fresh context per decision, and compare the summaries.
        let sequence = [
            ("Q1() :- R(x,y), R(y,z), R(z,x)", "Q2() :- R(u,v), R(u,w)"),
            ("Q1() :- R(u,v), R(u,w)", "Q2() :- R(x,y), R(y,z), R(z,x)"),
            ("Q1() :- R(x,y), S(y,z)", "Q2() :- R(u,v), S(v,w)"),
            ("Q1() :- R(x,y), S(y,x)", "Q2() :- R(u,v), S(v,w)"),
            ("Q1() :- R(x,y), R(y,z), R(z,x)", "Q2() :- R(u,v), R(u,w)"),
        ];
        // Witness-free options: the warm prover is actually shared.
        let witness_free = DecideOptions {
            extract_witness: false,
            ..DecideOptions::default()
        };
        // Default options: witness extraction forces a fresh prover per call,
        // so summaries must be bit-for-bit what a cold decision produces.
        for options in [witness_free, DecideOptions::default()] {
            let mut shared = DecideContext::new();
            for (t1, t2) in sequence {
                let q1 = parse_query(t1).unwrap();
                let q2 = parse_query(t2).unwrap();
                let warm = decide_containment_in(&mut shared, &q1, &q2, &options).unwrap();
                let cold = decide_containment_with(&q1, &q2, &options).unwrap();
                assert_eq!(warm.summary(), cold.summary(), "{t1} vs {t2}");
            }
        }
    }

    #[test]
    fn non_chordal_containing_query_is_reported_unknown_or_contained() {
        // Q2 is a 4-cycle (not chordal).  Containment of Q2 in itself must
        // still be recognized — now via the syntactic-identity shortcut
        // (before the refactor, via the trivial single-bag decomposition).
        let square = parse_query("Q() :- R(a,b), R(b,c), R(c,d), R(d,a)").unwrap();
        let answer = decide_containment(&square, &square).unwrap();
        assert!(answer.is_contained());
        // A non-chordal Q2 with a genuinely unclear instance reports Unknown.
        let q1 = parse_query("Q1() :- R(x,y), R(y,z), R(z,w), R(w,x), R(x,z)").unwrap();
        let answer = decide_containment(&q1, &square).unwrap();
        assert!(answer.is_unknown() || answer.is_contained() || answer.is_not_contained());
    }

    #[test]
    fn exhausted_pivot_budget_yields_sound_unknown_with_partial_trace() {
        let mut ctx = DecideContext::new();
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        // One LP pivot cannot finish the Γ_n probe for Example 4.3.
        let starved = DecideOptions {
            budget: BudgetSpec {
                max_pivots: Some(1),
                ..BudgetSpec::UNLIMITED
            },
            ..DecideOptions::default()
        };
        let decision = decide_containment_traced(&mut ctx, &triangle, &star, &starved).unwrap();
        match decision.answer {
            ContainmentAnswer::Unknown {
                obstruction:
                    Obstruction::ResourceExhausted {
                        resource: BudgetResource::Pivots,
                    },
                counterexample: None,
            } => {}
            other => panic!("expected pivot-exhausted Unknown, got {other:?}"),
        }
        // The partial trace still records every stage up to the abort, and
        // the exhausted stage's note carries the progress counters.
        assert_eq!(decision.trace.decided_by(), Some("shannon-lp"));
        let lp = decision.trace.reports().last().unwrap();
        assert!(lp
            .note
            .as_ref()
            .unwrap()
            .contains("pivots budget exhausted"));
        assert!(lp.note.as_ref().unwrap().contains("spent pivots="));
        assert_eq!(
            decision.answer.summary().to_string(),
            "undecided: pivots budget exhausted"
        );
        // The same pair without a budget still decides normally — and with a
        // generous budget the verdict is bit-identical to the unbudgeted one.
        let unbudgeted = decide_containment(&triangle, &star).unwrap();
        assert!(unbudgeted.is_contained());
        let generous = DecideOptions {
            budget: BudgetSpec {
                max_pivots: Some(1 << 20),
                ..BudgetSpec::UNLIMITED
            },
            ..DecideOptions::default()
        };
        let roomy = decide_containment_with(&triangle, &star, &generous).unwrap();
        assert_eq!(roomy.summary(), unbudgeted.summary());
    }

    #[test]
    fn exhausted_hom_step_budget_aborts_the_hom_screen() {
        let q1 = parse_query("Q1() :- R(x,y), S(x,y)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        let starved = DecideOptions {
            budget: BudgetSpec {
                max_hom_steps: Some(0),
                ..BudgetSpec::UNLIMITED
            },
            ..DecideOptions::default()
        };
        let answer = decide_containment_with(&q1, &q2, &starved).unwrap();
        match answer {
            ContainmentAnswer::Unknown {
                obstruction:
                    Obstruction::ResourceExhausted {
                        resource: BudgetResource::HomSteps,
                    },
                ..
            } => {}
            other => panic!("expected hom-step-exhausted Unknown, got {other:?}"),
        }
        // An aborted hom scan must never masquerade as `hom(Q2,Q1) = ∅`
        // (which would be a wrong NotContained: the pair is contained).
        assert!(decide_containment(&q1, &q2).unwrap().is_contained());
    }

    #[test]
    fn expired_deadline_decides_before_any_stage_work() {
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let expired = DecideOptions {
            budget: BudgetSpec {
                deadline: Some(std::time::Duration::ZERO),
                ..BudgetSpec::UNLIMITED
            },
            ..DecideOptions::default()
        };
        let mut ctx = DecideContext::new();
        let decision = decide_containment_traced(&mut ctx, &triangle, &star, &expired).unwrap();
        match decision.answer {
            ContainmentAnswer::Unknown {
                obstruction:
                    Obstruction::ResourceExhausted {
                        resource: BudgetResource::Deadline,
                    },
                ..
            } => {}
            other => panic!("expected deadline-exhausted Unknown, got {other:?}"),
        }
        // The run loop's pre-stage check fires on the very first stage.
        assert_eq!(decision.trace.reports().len(), 1);
    }

    #[test]
    fn traced_decisions_expose_the_deciding_stage() {
        let mut ctx = DecideContext::new();
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let decision =
            decide_containment_traced(&mut ctx, &triangle, &star, &DecideOptions::default())
                .unwrap();
        assert!(decision.answer.is_contained());
        assert_eq!(decision.trace.decided_by(), Some("shannon-lp"));
        // The plain entry point returns exactly the traced answer.
        let plain = decide_containment(&triangle, &star).unwrap();
        assert_eq!(plain.summary(), decision.answer.summary());
    }
}
