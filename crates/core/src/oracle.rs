//! The differential counting oracle: independent ground truth for verdicts.
//!
//! Everything else in this crate decides `Q1 ⊑ Q2` *symbolically* — junction
//! trees, Shannon-cone LPs, polymatroid counterexamples.  This module checks
//! those verdicts the only way Theorem 3.1 ultimately defines them: by
//! evaluating `|Q(D)|` exactly on explicit finite databases.
//!
//! * a **consensus counter** ([`checked_count`]) that computes `|hom(Q, D)|`
//!   three independent ways — the backtracking counter, the junction-tree DP
//!   (when `Q` is α-acyclic), and a brute-force `|adom|^n` enumeration (when
//!   affordable) — and reports a [`Discrepancy::CounterMismatch`] if they
//!   ever disagree, so a bug in the counting machinery cannot silently
//!   vouch for itself;
//! * a **verdict checker** ([`check_answer`] / [`check_summary`]) replaying a
//!   decision against a caller-supplied family of labeled databases:
//!   a `Contained` verdict with *any* database where `|Q1(D)| > |Q2(D)|`
//!   (pointwise per head tuple for non-Boolean pairs) is an unconditional
//!   soundness bug (Fact 3.2); a `NotContained` witness is re-counted on its
//!   own separating database ([`replay_witness`]); an `Unknown` obstruction
//!   is recomputed from `Q2`'s structure ([`check_obstruction`]);
//! * the [`Discrepancy`] type itself, which carries enough of the violating
//!   instance to emit a standalone repro.
//!
//! The oracle can only ever *refute*: a pair that survives every database in
//! a family is not thereby proven contained (the family is finite; Fact 3.2
//! quantifies over all databases).  What the families *can* catch is spelled
//! out in ARCHITECTURE.md ("The differential oracle").

use crate::containment::{containment_inequality_from_homs, query_homomorphisms};
use crate::decide::{AnswerSummary, ContainmentAnswer, Obstruction};
use crate::reductions::{boolean_reduction, saturate_pair};
use crate::witness::NonContainmentWitness;
use bqc_hypergraph::{junction_tree, Graph};
use bqc_relational::{bag_set_answer, count_homomorphisms, ConjunctiveQuery, Structure, Tuple};
use std::fmt;

/// Largest number of assignments the brute-force enumerator of
/// [`naive_count`] is willing to walk (`|adom|^{|vars|}`).  Past this the
/// consensus falls back to the two structured counters.  Sized so the walk
/// stays microseconds on the fuzz harness's small-domain families while
/// still covering every database a minimized repro can contain.
pub const NAIVE_ENUMERATION_LIMIT: u128 = 1 << 16;

/// A verdict/count inconsistency found by the oracle.  Every variant is a
/// bug somewhere: either in the decision procedure (the first three) or in
/// the counting machinery itself (the last).
#[derive(Clone, Debug)]
pub enum Discrepancy {
    /// A `Contained` verdict, yet a concrete database has strictly more
    /// `Q1`-answers than `Q2`-answers — by Fact 3.2 the verdict is wrong.
    ContainedViolated {
        /// Label of the family member that separated the pair.
        family: String,
        /// The separating database.
        database: Structure,
        /// The violated head tuple (`None` for Boolean pairs).
        head: Option<Tuple>,
        /// `|Q1(D)|` on that head tuple.
        hom_q1: u128,
        /// `|Q2(D)|` on that head tuple (strictly smaller).
        hom_q2: u128,
    },
    /// A `NotContained` witness whose own database does not reproduce the
    /// claimed count separation under independent recounting.
    WitnessReplayFailed {
        /// The counts the witness claims.
        claimed: (u128, u128),
        /// The counts the oracle recomputed on the witness database (for the
        /// last query pair tried; see [`replay_witness`]).
        recomputed: (u128, u128),
    },
    /// An `Unknown` verdict whose reported obstruction does not match the
    /// actual structure of the (reduced) containing query.
    ObstructionInconsistent {
        /// The obstruction the verdict reported.
        claimed: Obstruction,
        /// What recomputation finds: `Some` other obstruction, or `None`
        /// meaning the instance is actually inside the decidable class and
        /// should never have been `Unknown`.
        actual: Option<Obstruction>,
    },
    /// Two evaluations of the *same* pair produced different verdicts — e.g.
    /// the engine's cached/batched answer vs a fresh direct decision.  A
    /// violation of the cache-determinism invariant rather than of Fact 3.2.
    VerdictMismatch {
        /// The verdict under scrutiny (e.g. the engine's).
        observed: AnswerSummary,
        /// The verdict a fresh decision produced.
        fresh: AnswerSummary,
    },
    /// Two independent homomorphism counters disagreed on `|hom(Q, D)|`.
    CounterMismatch {
        /// Name of the query being counted.
        query: String,
        /// The database the counters disagreed on.
        database: Structure,
        /// Each counter's name and result.
        counts: Vec<(&'static str, u128)>,
    },
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Discrepancy::ContainedViolated {
                family,
                head,
                hom_q1,
                hom_q2,
                ..
            } => {
                write!(
                    f,
                    "verdict Contained violated on {family}: |Q1(D)| = {hom_q1} > {hom_q2} = |Q2(D)|"
                )?;
                if let Some(head) = head {
                    write!(f, " for head tuple {head:?}")?;
                }
                Ok(())
            }
            Discrepancy::WitnessReplayFailed {
                claimed,
                recomputed,
            } => write!(
                f,
                "witness replay failed: claimed counts {} > {}, recomputed {} vs {}",
                claimed.0, claimed.1, recomputed.0, recomputed.1
            ),
            Discrepancy::ObstructionInconsistent { claimed, actual } => match actual {
                Some(actual) => write!(
                    f,
                    "obstruction mismatch: verdict says {claimed}, structure says {actual}"
                ),
                None => write!(
                    f,
                    "obstruction mismatch: verdict says {claimed}, but the instance is decidable"
                ),
            },
            Discrepancy::VerdictMismatch { observed, fresh } => write!(
                f,
                "verdicts disagree: observed {observed:?}, fresh decision {fresh:?}"
            ),
            Discrepancy::CounterMismatch { query, counts, .. } => {
                write!(f, "counters disagree on |hom({query}, D)|:")?;
                for (name, count) in counts {
                    write!(f, " {name}={count}")?;
                }
                Ok(())
            }
        }
    }
}

/// Brute-force homomorphism counter: walks all `|adom|^{|vars|}` assignments
/// of active-domain values to variables and checks every atom.  Shares no
/// code with the backtracking counter or the junction-tree DP — that
/// independence is its entire value.  Returns `None` when the walk would
/// exceed [`NAIVE_ENUMERATION_LIMIT`] assignments.
pub fn naive_count(query: &ConjunctiveQuery, data: &Structure) -> Option<u128> {
    let domain: Vec<_> = data.active_domain().into_iter().collect();
    let vars = query.vars();
    let total = (domain.len() as u128).checked_pow(vars.len() as u32)?;
    if total > NAIVE_ENUMERATION_LIMIT {
        return None;
    }
    if vars.is_empty() {
        // No variables: all atoms are ground 0-ary facts.
        let ok = query
            .atoms()
            .iter()
            .all(|a| data.contains_fact(&a.relation, &Vec::new()));
        return Some(if ok { 1 } else { 0 });
    }
    if domain.is_empty() {
        return Some(0);
    }
    let mut assignment = vec![0usize; vars.len()];
    let mut count = 0u128;
    loop {
        let satisfied = query.atoms().iter().all(|atom| {
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|v| {
                    let i = vars.iter().position(|w| w == v).expect("var in vars()");
                    domain[assignment[i]].clone()
                })
                .collect();
            data.contains_fact(&atom.relation, &tuple)
        });
        if satisfied {
            count += 1;
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return Some(count);
            }
            assignment[i] += 1;
            if assignment[i] < domain.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Computes `|hom(query, data)|` by consensus: the backtracking counter
/// always, the junction-tree DP when `query` is α-acyclic, the brute-force
/// enumeration when affordable.  Any disagreement is reported as a
/// [`Discrepancy::CounterMismatch`] instead of a count.
pub fn checked_count(query: &ConjunctiveQuery, data: &Structure) -> Result<u128, Discrepancy> {
    let backtracking = count_homomorphisms(query, data);
    let mut counts: Vec<(&'static str, u128)> = vec![("backtracking", backtracking)];
    if let Some(dp) = crate::yannakakis::count_homomorphisms_acyclic(query, data) {
        counts.push(("junction-tree-dp", dp));
    }
    if let Some(naive) = naive_count(query, data) {
        counts.push(("naive-enumeration", naive));
    }
    if counts.iter().all(|&(_, c)| c == backtracking) {
        Ok(backtracking)
    } else {
        Err(Discrepancy::CounterMismatch {
            query: query.name.clone(),
            database: data.clone(),
            counts,
        })
    }
}

/// A concrete count separation `|Q1(D)| > |Q2(D)|` on one database.
#[derive(Clone, Debug)]
pub struct CountViolation {
    /// The head tuple on which the counts separate (`None` for Boolean
    /// pairs, where the counts are the plain homomorphism counts).
    pub head: Option<Tuple>,
    /// `|Q1(D)|` restricted to that head tuple.
    pub hom_q1: u128,
    /// `|Q2(D)|` restricted to that head tuple.
    pub hom_q2: u128,
}

/// Evaluates both queries on `data` and returns the first head tuple whose
/// `Q1`-count strictly exceeds its `Q2`-count, or `None` when the database
/// respects containment.  Boolean pairs go through [`checked_count`]
/// (consensus of up to three counters); non-Boolean pairs are evaluated per
/// head tuple via [`bag_set_answer`], cross-checked against the consensus
/// total (every homomorphism projects to exactly one head tuple, so the
/// per-tuple counts must sum to `|hom(Q, D)|`).
pub fn count_violation(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    data: &Structure,
) -> Result<Option<CountViolation>, Discrepancy> {
    if q1.is_boolean() && q2.is_boolean() {
        let hom_q1 = checked_count(q1, data)?;
        let hom_q2 = checked_count(q2, data)?;
        return Ok((hom_q1 > hom_q2).then_some(CountViolation {
            head: None,
            hom_q1,
            hom_q2,
        }));
    }
    let answers_q1 = bag_set_answer(q1, data);
    let answers_q2 = bag_set_answer(q2, data);
    for (query, answers) in [(q1, &answers_q1), (q2, &answers_q2)] {
        let total: u128 = answers.values().sum();
        let consensus = checked_count(query, data)?;
        if total != consensus {
            return Err(Discrepancy::CounterMismatch {
                query: query.name.clone(),
                database: data.clone(),
                counts: vec![("bag-set-answer-total", total), ("consensus", consensus)],
            });
        }
    }
    for (head, &hom_q1) in &answers_q1 {
        let hom_q2 = answers_q2.get(head).copied().unwrap_or(0);
        if hom_q1 > hom_q2 {
            return Ok(Some(CountViolation {
                head: Some(head.clone()),
                hom_q1,
                hom_q2,
            }));
        }
    }
    Ok(None)
}

/// Independently re-verifies a [`NonContainmentWitness`] by recounting both
/// queries on the witness's own separating database.
///
/// The pipeline may have produced the witness for the Boolean reduction of
/// the pair, or for its saturated variant (Lemma A.1, Fact A.3) — so the
/// replay mirrors those transformations and accepts the witness if *any* of
/// the candidate pairs reproduces the claimed counts with a strict
/// separation.  The recomputed counts of the last candidate are reported on
/// failure.
pub fn replay_witness(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    witness: &NonContainmentWitness,
) -> Result<(), Discrepancy> {
    let base = if q1.is_boolean() && q2.is_boolean() {
        (q1.clone(), q2.clone())
    } else {
        match boolean_reduction(q1, q2) {
            Ok(reduced) => reduced,
            Err(_) => (q1.clone(), q2.clone()),
        }
    };
    let saturated = saturate_pair(&base.0, &base.1);
    let mut recomputed = (0, 0);
    for (p1, p2) in [&base, &saturated] {
        let hom_q1 = checked_count(p1, &witness.database)?;
        let hom_q2 = checked_count(p2, &witness.database)?;
        recomputed = (hom_q1, hom_q2);
        if hom_q1 == witness.hom_q1 && hom_q2 == witness.hom_q2 && hom_q1 > hom_q2 {
            return Ok(());
        }
    }
    Err(Discrepancy::WitnessReplayFailed {
        claimed: (witness.hom_q1, witness.hom_q2),
        recomputed,
    })
}

/// Recomputes what the decision pipeline's junction-tree stage would have
/// classified for this pair and checks it against a claimed obstruction:
/// `Q2`'s Gaifman graph not chordal ⇒ [`Obstruction::NotChordal`]; chordal
/// but the junction tree or a composed `E_T ∘ φ` not simple ⇒
/// [`Obstruction::JunctionTreeNotSimple`]; otherwise the instance is inside
/// the decidable class of Theorem 3.1 and an `Unknown` verdict is itself the
/// bug.  [`Obstruction::ResourceExhausted`] is non-structural (it reflects
/// the budget the decision ran under, not the pair) and is always accepted.
pub fn check_obstruction(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    claimed: Obstruction,
) -> Result<(), Discrepancy> {
    if let Obstruction::ResourceExhausted { .. } = claimed {
        // Not a structural claim: exhaustion depends on the budget (and, for
        // deadlines, on wall clock), not on the query pair, so there is
        // nothing to recompute and nothing to convict.
        return Ok(());
    }
    let (q1, q2) = if q1.is_boolean() && q2.is_boolean() {
        (q1.clone(), q2.clone())
    } else {
        match boolean_reduction(q1, q2) {
            Ok(reduced) => reduced,
            // Mismatched heads never reach a verdict; nothing to check.
            Err(_) => return Ok(()),
        }
    };
    let actual = actual_obstruction(&q1, &q2);
    if actual == Some(claimed) {
        Ok(())
    } else {
        Err(Discrepancy::ObstructionInconsistent { claimed, actual })
    }
}

/// The obstruction the (already Boolean) pair actually has, or `None` when
/// it is inside the decidable class.  Mirrors the pipeline's junction-tree
/// stage exactly, but recomputes everything from scratch.
fn actual_obstruction(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Option<Obstruction> {
    let mut gaifman = Graph::from_cliques(q2.hyperedges());
    for v in q2.vars() {
        gaifman.add_vertex(v.clone());
    }
    let Some(td) = junction_tree(&gaifman) else {
        return Some(Obstruction::NotChordal);
    };
    let homomorphisms = query_homomorphisms(q2, q1);
    let Some((_, composed)) = containment_inequality_from_homs(q1, &td, &homomorphisms) else {
        // No homomorphism Q2 → Q1: the pipeline decides NotContained before
        // ever classifying, so no obstruction applies.
        return None;
    };
    if td.is_simple() && composed.iter().all(|e| e.is_simple()) {
        None
    } else {
        Some(Obstruction::JunctionTreeNotSimple)
    }
}

/// The outcome of replaying one verdict against a database family.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// How many databases were evaluated.
    pub databases: usize,
    /// Label of the first family member with `|Q1(D)| > |Q2(D)|`, if any.
    /// For a `NotContained` verdict this is independent confirmation; for
    /// `Unknown` it is a sound separation the procedure declined to claim
    /// (allowed — the refuter is confined to the decidable class); for
    /// `Contained` it accompanies a [`Discrepancy::ContainedViolated`].
    pub separated_by: Option<String>,
    /// Every inconsistency found.  Empty means the verdict survived.
    pub discrepancies: Vec<Discrepancy>,
}

impl CheckReport {
    /// `true` iff no discrepancy was found.
    pub fn ok(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Replays a verdict summary against a family of labeled databases.  See
/// [`check_answer`] for the variant that additionally replays the witness
/// and obstruction payloads of a full [`ContainmentAnswer`].
pub fn check_summary(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    summary: AnswerSummary,
    family: &[(String, Structure)],
) -> CheckReport {
    let mut report = CheckReport::default();
    for (label, database) in family {
        report.databases += 1;
        match count_violation(q1, q2, database) {
            Ok(Some(violation)) => {
                if report.separated_by.is_none() {
                    report.separated_by = Some(label.clone());
                }
                if matches!(summary, AnswerSummary::Contained) {
                    report.discrepancies.push(Discrepancy::ContainedViolated {
                        family: label.clone(),
                        database: database.clone(),
                        head: violation.head,
                        hom_q1: violation.hom_q1,
                        hom_q2: violation.hom_q2,
                    });
                }
            }
            Ok(None) => {}
            Err(mismatch) => report.discrepancies.push(mismatch),
        }
    }
    if let AnswerSummary::Unknown { obstruction } = summary {
        if let Err(d) = check_obstruction(q1, q2, obstruction) {
            report.discrepancies.push(d);
        }
    }
    report
}

/// Replays a full [`ContainmentAnswer`] against a family of labeled
/// databases: the summary checks of [`check_summary`] plus, for
/// `NotContained` answers carrying a witness, an independent
/// [`replay_witness`] recount on the witness database.
pub fn check_answer(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    answer: &ContainmentAnswer,
    family: &[(String, Structure)],
) -> CheckReport {
    let mut report = check_summary(q1, q2, answer.summary(), family);
    if let ContainmentAnswer::NotContained {
        witness: Some(witness),
        ..
    } = answer
    {
        if let Err(d) = replay_witness(q1, q2, witness) {
            report.discrepancies.push(d);
        }
        if report.separated_by.is_none() {
            report.separated_by = Some("witness database".to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide_containment;
    use bqc_relational::{parse_query, parse_structure, Value};

    fn db(text: &str) -> Structure {
        parse_structure(text).unwrap()
    }

    #[test]
    fn naive_count_matches_backtracking() {
        let q = parse_query("Q() :- R(x,y), R(y,z)").unwrap();
        let d = db("R(1,2). R(2,3). R(3,1). R(2,2).");
        assert_eq!(naive_count(&q, &d), Some(count_homomorphisms(&q, &d)));
        let zero_vars = parse_query("Q() :- R(x,x)").unwrap();
        let empty = Structure::empty();
        assert_eq!(naive_count(&zero_vars, &empty), Some(0));
    }

    #[test]
    fn checked_count_consensus() {
        let q = parse_query("Q() :- R(x,y), S(y,z)").unwrap();
        let d = db("R(1,2). S(2,3). S(2,4).");
        assert_eq!(checked_count(&q, &d).unwrap(), 2);
    }

    #[test]
    fn count_violation_boolean_and_headed() {
        // Triangle vs 2-star on the dense 2-loop database: star wins.
        let tri = parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let star = parse_query("Q2() :- R(u,v), R(u,w)").unwrap();
        let d = db("R(1,1). R(2,2). R(1,2).");
        assert!(count_violation(&tri, &star, &d).unwrap().is_none());
        // The reverse direction separates on the same database.
        let violation = count_violation(&star, &tri, &d).unwrap().unwrap();
        assert!(violation.hom_q1 > violation.hom_q2);
        // Headed: per-tuple comparison.
        let p1 = parse_query("P1(a) :- S(a,b), S(a,c)").unwrap();
        let p2 = parse_query("P2(a) :- S(a,b)").unwrap();
        let d = db("S(1,2). S(1,3).");
        let violation = count_violation(&p1, &p2, &d).unwrap().unwrap();
        assert_eq!(violation.head, Some(vec![Value::int(1)]));
        assert_eq!((violation.hom_q1, violation.hom_q2), (4, 2));
        assert!(count_violation(&p2, &p1, &d).unwrap().is_none());
    }

    #[test]
    fn witness_replay_accepts_pipeline_witnesses() {
        let star = parse_query("Q1() :- R(u,v), R(u,w)").unwrap();
        let tri = parse_query("Q2() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let answer = decide_containment(&star, &tri).unwrap();
        let ContainmentAnswer::NotContained {
            witness: Some(witness),
            ..
        } = &answer
        else {
            panic!("expected a witnessed refutation, got {answer}");
        };
        replay_witness(&star, &tri, witness).unwrap();
        // A corrupted count must be caught.
        let mut broken = witness.clone();
        broken.hom_q2 = broken.hom_q1 + 1;
        assert!(matches!(
            replay_witness(&star, &tri, &broken),
            Err(Discrepancy::WitnessReplayFailed { .. })
        ));
    }

    #[test]
    fn obstruction_checks() {
        // 4-cycle Q2 is not chordal.
        let q1 = parse_query("Q1() :- R(x,y)").unwrap();
        let square = parse_query("Q2() :- R(a,b), R(b,c), R(c,d), R(d,a)").unwrap();
        check_obstruction(&q1, &square, Obstruction::NotChordal).unwrap();
        assert!(matches!(
            check_obstruction(&q1, &square, Obstruction::JunctionTreeNotSimple),
            Err(Discrepancy::ObstructionInconsistent {
                actual: Some(Obstruction::NotChordal),
                ..
            })
        ));
        // A chordal, simple Q2: claiming any obstruction is inconsistent.
        let path = parse_query("Q2() :- R(a,b), R(b,c)").unwrap();
        assert!(matches!(
            check_obstruction(&q1, &path, Obstruction::NotChordal),
            Err(Discrepancy::ObstructionInconsistent { actual: None, .. })
        ));
    }

    #[test]
    fn check_answer_catches_flipped_verdicts() {
        let star = parse_query("Q1() :- R(u,v), R(u,w)").unwrap();
        let tri = parse_query("Q2() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let family = vec![
            ("canonical(Q1)".to_string(), star.canonical_structure()),
            ("dense-2".to_string(), db("R(1,1). R(1,2). R(2,1). R(2,2).")),
        ];
        let answer = decide_containment(&star, &tri).unwrap();
        let report = check_answer(&star, &tri, &answer, &family);
        assert!(report.ok(), "{:?}", report.discrepancies);
        assert!(report.separated_by.is_some());
        // Flip the verdict to Contained: the family must convict it.
        let flipped = check_summary(&star, &tri, AnswerSummary::Contained, &family);
        assert!(!flipped.ok());
        assert!(matches!(
            flipped.discrepancies[0],
            Discrepancy::ContainedViolated { .. }
        ));
    }
}
