//! The containment inequality (Eq. 8) connecting `Q1 ⊑ Q2` to a Max-II.
//!
//! Theorem 4.2: if the max-information inequality
//!
//! ```text
//!     h(vars(Q1))  ≤  max_{(T,χ) ∈ TD(Q2)}  max_{φ ∈ hom(Q2,Q1)}  (E_T ∘ φ)(h)
//! ```
//!
//! holds for every entropic `h`, then `Q1 ⊑ Q2`.  Theorem 4.4 shows the
//! converse when `Q2` is acyclic, and Lemma E.1 when `Q2` is chordal with a
//! simple junction tree — in both cases it suffices to take a single junction
//! tree on the right-hand side (see the remark closing Section 4.2).  This
//! module constructs that inequality for a *given* tree decomposition of `Q2`,
//! which is what the decision procedure in [`crate::decide`] consumes.

use crate::et::et_expression;
use bqc_arith::Rational;
use bqc_entropy::{ConditionalExpr, EntropyExpr};
use bqc_hypergraph::TreeDecomposition;
use bqc_iip::MaxInequality;
use bqc_obs::{Budget, Exhausted};
use bqc_relational::{enumerate_homomorphisms_budgeted, ConjunctiveQuery, Value};
use std::collections::BTreeMap;

/// A homomorphism `φ : Q2 → Q1` between queries, i.e. a mapping from `Q2`'s
/// variables to `Q1`'s variables preserving atoms.
pub type QueryHomomorphism = BTreeMap<String, String>;

/// Enumerates the homomorphisms `φ ∈ hom(Q2, Q1)` by evaluating `Q2` on the
/// canonical structure of `Q1`.
pub fn query_homomorphisms(q2: &ConjunctiveQuery, q1: &ConjunctiveQuery) -> Vec<QueryHomomorphism> {
    query_homomorphisms_budgeted(q2, q1, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`query_homomorphisms`] under a cooperative work budget: charges one
/// hom-step per node of the backtracking search and aborts with
/// `Err(Exhausted)` when the budget runs out.  An aborted enumeration
/// certifies nothing (it must not be read as `hom(Q2, Q1) = ∅`).
pub fn query_homomorphisms_budgeted(
    q2: &ConjunctiveQuery,
    q1: &ConjunctiveQuery,
    budget: &Budget,
) -> Result<Vec<QueryHomomorphism>, Exhausted> {
    let canonical = q1.canonical_structure();
    Ok(enumerate_homomorphisms_budgeted(q2, &canonical, budget)?
        .into_iter()
        .map(|assignment| {
            assignment
                .into_iter()
                .map(|(var, value)| match value {
                    Value::Text(name) => (var, name),
                    other => panic!("canonical structure produced a non-text value {other}"),
                })
                .collect()
        })
        .collect())
}

/// The containment inequality of Eq. (8) for a fixed tree decomposition `T`
/// of `Q2`:
///
/// `0 ≤ max_{φ ∈ hom(Q2,Q1)} [ (E_T ∘ φ)(h) − h(vars(Q1)) ]`,
///
/// returned as a [`MaxInequality`] over `vars(Q1)`, together with the
/// composed conditional expressions (whose *simplicity* the decision
/// procedure inspects).  Returns `None` when `hom(Q2, Q1) = ∅` (in which case
/// `Q1 ⋢ Q2` outright, witnessed by the canonical database of `Q1`).
pub fn containment_inequality(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    td: &TreeDecomposition,
) -> Option<(MaxInequality, Vec<ConditionalExpr>)> {
    containment_inequality_from_homs(q1, td, &query_homomorphisms(q2, q1))
}

/// [`containment_inequality`] with the homomorphisms `hom(Q2, Q1)` supplied
/// by the caller — the staged decision pipeline enumerates them once in its
/// hom-existence screen and reuses them here, instead of paying the
/// backtracking enumeration a second time.
pub fn containment_inequality_from_homs(
    q1: &ConjunctiveQuery,
    td: &TreeDecomposition,
    homomorphisms: &[QueryHomomorphism],
) -> Option<(MaxInequality, Vec<ConditionalExpr>)> {
    if homomorphisms.is_empty() {
        return None;
    }
    let et = et_expression(td);
    let q1_vars: Vec<String> = q1.vars().to_vec();
    let mut disjuncts: Vec<EntropyExpr> = Vec::with_capacity(homomorphisms.len());
    let mut composed: Vec<ConditionalExpr> = Vec::with_capacity(homomorphisms.len());
    for phi in homomorphisms {
        let et_phi = et.compose(phi);
        let mut expr = et_phi.flatten();
        expr.add_term(-Rational::one(), q1_vars.iter().cloned());
        disjuncts.push(expr);
        composed.push(et_phi);
    }
    Some((MaxInequality::new(q1_vars, disjuncts), composed))
}

/// Theorem 4.2 as a one-shot *sufficient* containment test: builds Eq. (8)
/// for the given tree decomposition of `Q2` and checks it over the Shannon
/// cone.  `true` means `Q1 ⊑ Q2` (for every database, under bag-set
/// semantics); `false` is inconclusive in general.
pub fn sufficient_containment_check(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    td: &TreeDecomposition,
) -> bool {
    match containment_inequality(q1, q2, td) {
        None => false,
        Some((inequality, _)) => bqc_iip::check_max_inequality(&inequality).is_valid(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_hypergraph::{junction_tree, Graph};
    use bqc_relational::parse_query;

    fn junction_tree_of(q: &ConjunctiveQuery) -> TreeDecomposition {
        let graph = Graph::from_cliques(q.hyperedges());
        junction_tree(&graph).expect("query is chordal")
    }

    #[test]
    fn hom_enumeration_between_queries() {
        // Example 4.3: three homomorphisms from the 2-star into the triangle.
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let homs = query_homomorphisms(&star, &triangle);
        assert_eq!(homs.len(), 3);
        for phi in &homs {
            // y2 and y3 must both be the successor of y1 in the triangle.
            assert_eq!(phi["y2"], phi["y3"]);
            assert_ne!(phi["y1"], phi["y2"]);
        }
    }

    #[test]
    fn example_4_3_inequality_is_valid() {
        // Vee's example: the triangle is contained in the 2-star.
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let td = junction_tree_of(&star);
        assert!(td.is_simple());
        let (inequality, composed) =
            containment_inequality(&triangle, &star, &td).expect("homomorphisms exist");
        assert_eq!(inequality.num_disjuncts(), 3);
        assert!(composed.iter().all(|e| e.is_simple()));
        assert!(bqc_iip::check_max_inequality(&inequality).is_valid());
        assert!(sufficient_containment_check(&triangle, &star, &td));
    }

    #[test]
    fn example_3_5_inequality_is_invalid() {
        // Example 3.5: Q1 (two disjoint "3-parallel-edge" patterns) is NOT
        // contained in Q2 = A(y1,y2), B(y1,y3), C(y4,y2).
        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        let td = junction_tree_of(&q2);
        assert!(td.is_simple());
        let (inequality, composed) =
            containment_inequality(&q1, &q2, &td).expect("homomorphisms exist");
        assert!(composed.iter().all(|e| e.is_simple()));
        assert!(!bqc_iip::check_max_inequality(&inequality).is_valid());
    }

    #[test]
    fn no_homomorphism_means_no_inequality() {
        // Q2 uses a relation S that Q1 does not mention at all.
        let q1 = parse_query("Q1() :- R(x,y)").unwrap();
        let q2 = parse_query("Q2() :- S(u,v)").unwrap();
        let td = junction_tree_of(&q2);
        assert!(containment_inequality(&q1, &q2, &td).is_none());
        assert!(!sufficient_containment_check(&q1, &q2, &td));
    }

    #[test]
    fn identical_queries_are_contained() {
        let q = parse_query("Q() :- R(x,y), S(y,z)").unwrap();
        let td = junction_tree_of(&q);
        assert!(sufficient_containment_check(&q, &q, &td));
    }

    #[test]
    fn sub_query_contains_super_query() {
        // Q1 = R(x,y), R(y,z) (2-path) is contained in Q2 = R(u,v) (single edge):
        // every database has at least as many edges as ... no wait, the 2-path can
        // have MORE homomorphisms than edges (e.g. a star).  The correct direction
        // here: Q1 = R(x,y) is contained in Q2 = R(u,v) trivially (same query).
        // A more interesting one: Q1 = R(x,y), S(x,y) is contained in Q2 = R(u,v):
        // every (x,y) satisfying both R and S also satisfies R.
        let q1 = parse_query("Q1() :- R(x,y), S(x,y)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        let td = junction_tree_of(&q2);
        assert!(sufficient_containment_check(&q1, &q2, &td));
    }

    #[test]
    fn two_path_not_contained_in_triangle() {
        // Q1 = 2-path, Q2 = triangle: on a triangle-free graph with edges,
        // hom(Q2) = 0 < hom(Q1), so containment fails.  There is no homomorphism
        // from the triangle into the 2-path, so the inequality does not even exist.
        let path = parse_query("Q1() :- R(x,y), R(y,z)").unwrap();
        let triangle = parse_query("Q2() :- R(a,b), R(b,c), R(c,a)").unwrap();
        // The triangle's Gaifman graph is a 3-clique, hence chordal.
        let td = junction_tree_of(&triangle);
        assert!(containment_inequality(&path, &triangle, &td).is_none());
    }
}
