//! Junction-tree homomorphism counting for acyclic queries.
//!
//! For an α-acyclic Boolean conjunctive query the number of homomorphisms into
//! a database can be computed by dynamic programming over a join tree
//! (Yannakakis' algorithm, adapted to counting): each bag materializes the
//! satisfying assignments of its atoms, messages propagate partial counts from
//! the leaves towards the roots, and the total is the product over the roots
//! of the summed counts.  This is the classical `O(|D|·|Q|)`-ish alternative
//! to the generic backtracking counter in `bqc-relational`, and the benchmark
//! suite compares the two (experiment E10 in EXPERIMENTS.md).

use bqc_hypergraph::Hypergraph;
use bqc_relational::{Atom, ConjunctiveQuery, Structure, Value};
use std::collections::BTreeMap;

/// Counts `|hom(Q, D)|` for an α-acyclic Boolean query using join-tree
/// dynamic programming.  Returns `None` when the query is not acyclic (use
/// the backtracking counter instead) or has head variables.
pub fn count_homomorphisms_acyclic(query: &ConjunctiveQuery, data: &Structure) -> Option<u128> {
    if !query.is_boolean() {
        return None;
    }
    // Work with the distinct maximal hyperedges: dropping an edge contained in
    // another neither changes α-acyclicity nor coverage, and it guarantees
    // that every join-tree bag is the variable set of at least one atom.
    let mut unique: Vec<std::collections::BTreeSet<String>> = Vec::new();
    for edge in query.hyperedges() {
        if !unique.contains(&edge) {
            unique.push(edge);
        }
    }
    let maximal: Vec<std::collections::BTreeSet<String>> = unique
        .iter()
        .filter(|e| !unique.iter().any(|other| other != *e && e.is_subset(other)))
        .cloned()
        .collect();
    let hypergraph = Hypergraph::new(maximal);
    let join_tree = hypergraph.join_tree()?;

    // Assign every atom to a bag that covers it (its own hyperedge survives in
    // the join tree's bag list, possibly at a different index after empty-edge
    // filtering, so search for a covering bag).
    let bags = join_tree.bags();
    let mut atoms_of_bag: Vec<Vec<&Atom>> = vec![Vec::new(); bags.len()];
    for atom in query.atoms() {
        let vars = atom.var_set();
        let bag_index = (0..bags.len()).find(|&b| vars.is_subset(&bags[b]))?;
        atoms_of_bag[bag_index].push(atom);
    }

    // Materialize, per bag, the satisfying assignments of its atoms as tuples
    // ordered by the bag's (sorted) variables.
    let bag_vars: Vec<Vec<String>> = bags.iter().map(|b| b.iter().cloned().collect()).collect();
    let mut bag_rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(bags.len());
    for (b, vars) in bag_vars.iter().enumerate() {
        let rows = enumerate_bag_assignments(vars, &atoms_of_bag[b], data);
        bag_rows.push(rows);
    }

    // Bottom-up dynamic programming: children before parents.
    let parent = join_tree.rooted();
    let order = join_tree.topological_order();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
    for (node, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(node);
        }
    }
    // messages[c]: separator assignment -> summed count, for the edge (c, parent(c)).
    let mut messages: Vec<BTreeMap<Vec<Value>, u128>> = vec![BTreeMap::new(); bags.len()];
    let mut root_totals: Vec<u128> = Vec::new();
    for &node in order.iter().rev() {
        let vars = &bag_vars[node];
        let mut total_here: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
        for row in &bag_rows[node] {
            let mut count: u128 = 1;
            for child in &children[node] {
                // The separator values, in the child's variable order (the same
                // order the child used when building its message keys).
                let key: Vec<Value> = bag_vars[*child]
                    .iter()
                    .filter(|v| vars.contains(v))
                    .map(|v| {
                        let position = vars
                            .iter()
                            .position(|x| x == v)
                            .expect("separator var in bag");
                        row[position].clone()
                    })
                    .collect();
                count = count.saturating_mul(*messages[*child].get(&key).unwrap_or(&0));
                if count == 0 {
                    break;
                }
            }
            if count == 0 {
                continue;
            }
            match parent[node] {
                Some(p) => {
                    let parent_bag = &bags[p];
                    let key: Vec<Value> = vars
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| parent_bag.contains(*v))
                        .map(|(i, _)| row[i].clone())
                        .collect();
                    *total_here.entry(key).or_insert(0) += count;
                }
                None => {
                    *total_here.entry(Vec::new()).or_insert(0) += count;
                }
            }
        }
        if parent[node].is_some() {
            messages[node] = total_here;
        } else {
            root_totals.push(total_here.values().sum());
        }
    }
    Some(root_totals.into_iter().product())
}

/// Enumerates the assignments of the bag's variables (sorted order) that
/// satisfy every atom assigned to this bag, starting from the tuples of the
/// first atom.
fn enumerate_bag_assignments(
    vars: &[String],
    atoms: &[&Atom],
    data: &Structure,
) -> Vec<Vec<Value>> {
    // Drive the enumeration from the atom mentioning the most bag variables
    // (with maximal distinct bags, some atom mentions all of them).
    let Some(driver) = atoms.iter().max_by_key(|a| a.var_set().len()) else {
        return Vec::new();
    };
    let mut partials: Vec<BTreeMap<String, Value>> = Vec::new();
    'tuples: for tuple in data.facts(&driver.relation) {
        let mut assignment: BTreeMap<String, Value> = BTreeMap::new();
        for (position, var) in driver.args.iter().enumerate() {
            match assignment.get(var) {
                Some(existing) if existing != &tuple[position] => continue 'tuples,
                Some(_) => {}
                None => {
                    assignment.insert(var.clone(), tuple[position].clone());
                }
            }
        }
        partials.push(assignment);
    }
    // Extend over any bag variable the driver atom does not mention (only
    // possible for defensively handled degenerate bags).
    let missing: Vec<&String> = vars.iter().filter(|v| !driver.args.contains(*v)).collect();
    if !missing.is_empty() {
        let domain: Vec<Value> = data.active_domain().into_iter().collect();
        for var in missing {
            let mut extended = Vec::with_capacity(partials.len() * domain.len());
            for partial in &partials {
                for value in &domain {
                    let mut next = partial.clone();
                    next.insert(var.clone(), value.clone());
                    extended.push(next);
                }
            }
            partials = extended;
        }
    }
    // Keep assignments satisfying every atom of the bag.
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for assignment in partials {
        let satisfied = atoms.iter().all(|atom| {
            let image: Vec<Value> = atom.args.iter().map(|v| assignment[v].clone()).collect();
            data.contains_fact(&atom.relation, &image)
        });
        if satisfied {
            rows.push(vars.iter().map(|v| assignment[v].clone()).collect());
        }
    }
    rows.sort();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::{count_homomorphisms, parse_query, parse_structure};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph_db(vertices: usize, edges: usize, seed: u64) -> Structure {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Structure::empty();
        for _ in 0..edges {
            let a = rng.gen_range(0..vertices);
            let b = rng.gen_range(0..vertices);
            db.add_fact("R", vec![Value::int(a as i64), Value::int(b as i64)]);
        }
        db
    }

    #[test]
    fn matches_backtracking_on_paths_and_stars() {
        let queries = [
            "Q() :- R(x,y)",
            "Q() :- R(x,y), R(y,z)",
            "Q() :- R(x,y), R(y,z), R(z,w)",
            "Q() :- R(c,a), R(c,b), R(c,d)",
            "Q() :- R(x,y), S(y,z)",
        ];
        let db = parse_structure("R(1,2). R(2,3). R(3,1). R(1,3). S(3,4). S(1,2).").unwrap();
        for text in queries {
            let q = parse_query(text).unwrap();
            let expected = count_homomorphisms(&q, &db);
            assert_eq!(
                count_homomorphisms_acyclic(&q, &db),
                Some(expected),
                "query {text}"
            );
        }
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let triangle = parse_query("Q() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let db = parse_structure("R(1,2).").unwrap();
        assert_eq!(count_homomorphisms_acyclic(&triangle, &db), None);
        let with_head = parse_query("Q(x) :- R(x,y)").unwrap();
        assert_eq!(count_homomorphisms_acyclic(&with_head, &db), None);
    }

    #[test]
    fn repeated_variables_and_multiple_atoms_per_bag() {
        let q = parse_query("Q() :- R(x,x), S(x,y), T(x,y)").unwrap();
        let db = parse_structure("R(1,1). R(2,3). S(1,2). S(1,3). T(1,2). T(4,4).").unwrap();
        let expected = count_homomorphisms(&q, &db);
        assert_eq!(count_homomorphisms_acyclic(&q, &db), Some(expected));
        assert_eq!(expected, 1);
    }

    #[test]
    fn disconnected_queries_multiply() {
        let q = parse_query("Q() :- R(x,y), S(a,b)").unwrap();
        let db = parse_structure("R(1,2). R(2,3). S(7,8). S(8,9). S(9,7).").unwrap();
        assert_eq!(count_homomorphisms_acyclic(&q, &db), Some(6));
    }

    #[test]
    fn matches_backtracking_on_random_databases() {
        let queries = [
            "Q() :- R(x,y), R(y,z)",
            "Q() :- R(x,y), R(x,z), R(z,w)",
            "Q() :- R(x,y), R(y,z), R(z,w), R(w,v)",
        ];
        for seed in 0..5u64 {
            let db = random_graph_db(6, 12, seed);
            for text in queries {
                let q = parse_query(text).unwrap();
                assert_eq!(
                    count_homomorphisms_acyclic(&q, &db),
                    Some(count_homomorphisms(&q, &db)),
                    "seed {seed}, query {text}"
                );
            }
        }
    }

    #[test]
    fn empty_database_gives_zero() {
        let q = parse_query("Q() :- R(x,y), R(y,z)").unwrap();
        let db = Structure::empty();
        assert_eq!(count_homomorphisms_acyclic(&q, &db), Some(0));
    }
}
