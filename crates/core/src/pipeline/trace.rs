//! Structured decision traces: which stage decided, how long each cost.
//!
//! Every answer the staged pipeline produces carries a [`DecisionTrace`] — an
//! ordered record of the stages that ran, what each concluded
//! ([`StageStatus`]), the paper result it implements, and its wall-clock
//! cost.  Traces are what make verdicts *explainable*: the `bqc` CLI renders
//! them under `--explain`, the JSON report embeds them verbatim, and
//! `bqc-engine` aggregates them into per-stage serving telemetry.
//!
//! **Determinism.**  Everything in a trace except the `micros` timings is a
//! deterministic function of the query pair and the
//! [`DecideOptions`](crate::DecideOptions) — the same invariant the engine's
//! decision cache relies on for answers, extended to explanations.  The
//! timing-free projection is exposed as [`DecisionTrace::signature`] and
//! covered by the trace-determinism tests.

use std::fmt;

/// What a single stage concluded for the instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StageStatus {
    /// The stage produced the final answer; the payload is the three-way
    /// verdict (`"contained"` / `"not contained"` / `"undecided"`).
    Decided(&'static str),
    /// The stage ran, enriched the pipeline state, and handed over to the
    /// next stage.
    Continued,
    /// The stage's precondition did not hold for this instance (or it was
    /// disabled by options); nothing was computed.
    Inapplicable,
}

impl StageStatus {
    /// `true` iff the stage produced the final answer.
    pub fn is_decided(&self) -> bool {
        matches!(self, StageStatus::Decided(_))
    }

    /// A short machine-readable label (`"decided"` / `"continued"` /
    /// `"inapplicable"`).
    pub fn label(&self) -> &'static str {
        match self {
            StageStatus::Decided(_) => "decided",
            StageStatus::Continued => "continued",
            StageStatus::Inapplicable => "inapplicable",
        }
    }
}

impl fmt::Display for StageStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageStatus::Decided(verdict) => write!(f, "decided: {verdict}"),
            StageStatus::Continued => write!(f, "continued"),
            StageStatus::Inapplicable => write!(f, "inapplicable"),
        }
    }
}

/// The record of one stage execution inside a [`DecisionTrace`].
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stable stage name (e.g. `"counting-refuter"`), shared with the
    /// engine's telemetry counters and the CLI's `--explain` output.
    pub stage: &'static str,
    /// The paper result the stage implements (e.g. `"Theorem 3.1"`).
    pub citation: &'static str,
    /// What the stage concluded.
    pub status: StageStatus,
    /// Optional deterministic detail (e.g. `"3 homomorphisms"`); excluded
    /// from [`DecisionTrace::signature`] but shown by `--explain`.
    pub note: Option<String>,
    /// Wall-clock cost of the stage in microseconds.  The only
    /// non-deterministic field of a trace.
    pub micros: u64,
}

/// The end-to-end explanation attached to every pipeline answer.
#[derive(Clone, Debug, Default)]
pub struct DecisionTrace {
    reports: Vec<StageReport>,
}

impl DecisionTrace {
    /// An empty trace (used while the pipeline is running).
    pub fn new() -> DecisionTrace {
        DecisionTrace::default()
    }

    /// Appends a stage record.
    pub fn push(&mut self, report: StageReport) {
        self.reports.push(report);
    }

    /// The per-stage records, in execution order.
    pub fn reports(&self) -> &[StageReport] {
        &self.reports
    }

    /// Name of the stage that produced the final answer, if any stage did.
    pub fn decided_by(&self) -> Option<&'static str> {
        self.reports
            .iter()
            .find(|r| r.status.is_decided())
            .map(|r| r.stage)
    }

    /// Total wall-clock microseconds across all recorded stages.
    pub fn total_micros(&self) -> u64 {
        self.reports.iter().map(|r| r.micros).sum()
    }

    /// The timing-free projection of the trace: `stage:status` steps joined
    /// by `" → "`.  Two decisions of the same instance under the same options
    /// must produce equal signatures (the trace-determinism invariant).
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for (i, report) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push_str(" → ");
            }
            out.push_str(report.stage);
            out.push(':');
            match report.status {
                StageStatus::Decided(verdict) => {
                    out.push_str("decided(");
                    out.push_str(verdict);
                    out.push(')');
                }
                StageStatus::Continued => out.push_str("continued"),
                StageStatus::Inapplicable => out.push_str("inapplicable"),
            }
        }
        out
    }
}

impl fmt::Display for DecisionTrace {
    /// Multi-line human rendering, one stage per line (the `--explain`
    /// format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in &self.reports {
            write!(
                f,
                "  {:<22} {:>9.3}ms  {}",
                report.stage,
                report.micros as f64 / 1000.0,
                report.status
            )?;
            if let Some(note) = &report.note {
                write!(f, " — {note}")?;
            }
            writeln!(f, "  [{}]", report.citation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionTrace {
        let mut trace = DecisionTrace::new();
        trace.push(StageReport {
            stage: "boolean-reduction",
            citation: "Lemma A.1",
            status: StageStatus::Inapplicable,
            note: None,
            micros: 1,
        });
        trace.push(StageReport {
            stage: "hom-existence",
            citation: "Fact 3.2",
            status: StageStatus::Continued,
            note: Some("3 homomorphisms".into()),
            micros: 10,
        });
        trace.push(StageReport {
            stage: "shannon-lp",
            citation: "Theorem 4.2",
            status: StageStatus::Decided("contained"),
            note: None,
            micros: 100,
        });
        trace
    }

    #[test]
    fn accessors_and_signature() {
        let trace = sample();
        assert_eq!(trace.reports().len(), 3);
        assert_eq!(trace.decided_by(), Some("shannon-lp"));
        assert_eq!(trace.total_micros(), 111);
        assert_eq!(
            trace.signature(),
            "boolean-reduction:inapplicable → hom-existence:continued → \
             shannon-lp:decided(contained)"
        );
    }

    #[test]
    fn display_renders_every_stage() {
        let text = sample().to_string();
        assert!(text.contains("boolean-reduction"));
        assert!(text.contains("3 homomorphisms"));
        assert!(text.contains("decided: contained"));
        assert!(text.contains("[Theorem 4.2]"));
    }

    #[test]
    fn status_labels() {
        assert!(StageStatus::Decided("contained").is_decided());
        assert!(!StageStatus::Continued.is_decided());
        assert_eq!(StageStatus::Decided("contained").label(), "decided");
        assert_eq!(StageStatus::Continued.label(), "continued");
        assert_eq!(StageStatus::Inapplicable.label(), "inapplicable");
    }
}
