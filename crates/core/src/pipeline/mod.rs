//! The staged decision pipeline behind [`decide_containment`](crate::decide_containment).
//!
//! The Theorem 3.1 decision procedure is a cascade of cheap structural
//! checks in front of one expensive Shannon-cone LP.  This module makes
//! that cascade explicit: a [`DecisionPipeline`] runs a cost-ordered list of
//! [`DecisionStage`]s, each of which either **decides** the instance,
//! **continues** after enriching the shared [`PipelineState`], or is
//! **inapplicable**.  Every answer comes back as a [`Decision`] carrying a
//! structured [`DecisionTrace`] — per-stage verdict, timing and paper
//! citation — which is what `bqc --explain` renders and what `bqc-engine`
//! aggregates into serving telemetry.
//!
//! The standard stage list ([`DecisionPipeline::standard`]) is, in cost
//! order:
//!
//! | # | stage | decides | paper |
//! |---|-------|---------|-------|
//! | 1 | `boolean-reduction` | — (rewrites the pair) | Lemma A.1 |
//! | 2 | `identity-shortcut` | Contained | reflexivity |
//! | 3 | `hom-existence` | NotContained | Fact 3.2 |
//! | 4 | `junction-tree` | — (Eq. 8 + decidable class) | Theorem 3.1 |
//! | 5 | `counting-refuter` | NotContained | Fact 3.2 |
//! | 6 | `shannon-lp` | Contained / Unknown | Theorems 3.6 & 4.2 |
//! | 7 | `witness-materialization` | NotContained | Lemmas 3.7 & 4.8 |
//!
//! **Verdict equivalence.**  The pipeline's verdicts are identical to the
//! pre-refactor monolith's (retained as [`crate::legacy`], the oracle of the
//! equivalence proptests) by construction: stages 1–4, 6 and 7 are the
//! monolith's steps re-expressed, and the new counting refuter (stage 5) is
//! confined to the decidable class, where Theorem 3.1's completeness makes a
//! count separation and a failed Γ_n check the same verdict.  The only
//! deliberate divergences are payload upgrades: a refuter-decided answer
//! carries a witness extracted from the separating database itself, and the
//! non-chordal `Unknown` now returns the violating polymatroid instead of
//! discarding it.

mod refuter;
mod stages;
mod state;
mod trace;

pub use refuter::{
    candidate_count, counting_refutation, counting_refutation_budgeted, witness_from_refutation,
    CountRefutation, MAX_DOMAIN, RANDOM_FAMILY_MIN_VARS, RANDOM_STRUCTURES,
};
pub use stages::{
    BooleanReduction, CountingRefuter, HomExistence, IdentityShortcut, JunctionTree, ShannonLp,
    WitnessMaterialization,
};
pub use state::PipelineState;
pub use trace::{DecisionTrace, StageReport, StageStatus};

use crate::decide::{ContainmentAnswer, DecideError, DecideOptions, Obstruction};
use bqc_iip::GammaProver;
use bqc_obs::Exhausted;
use bqc_relational::ConjunctiveQuery;
use std::time::Instant;

/// The decided `Unknown` a stage (or the run loop) produces when the
/// decision's resource budget runs out mid-flight: sound — never a wrong
/// verdict — and carrying how far the procedure got in its trace note.
///
/// The note embeds the budget's progress counters (including elapsed wall
/// time), which makes it the one deliberate exception to the
/// trace-determinism invariant; that is safe because budget-exhausted
/// answers are excluded from every cache (see `bqc-engine`).
pub fn budget_exhausted_result(state: &PipelineState<'_>, exhausted: Exhausted) -> StageResult {
    StageResult::decided(ContainmentAnswer::Unknown {
        obstruction: Obstruction::ResourceExhausted {
            resource: exhausted.resource,
        },
        counterexample: None,
    })
    .with_note(format!("{exhausted}; {}", state.budget.progress_note()))
}

/// What a stage concluded for the current instance.
#[allow(clippy::large_enum_variant)] // one outcome per stage execution
#[derive(Debug)]
pub enum StageOutcome {
    /// The stage produced the final answer; the pipeline stops here.
    Decided(ContainmentAnswer),
    /// The stage ran and enriched the state; the next stage takes over.
    Continue,
    /// The stage's precondition did not hold; nothing was computed.
    Inapplicable,
}

/// A stage's outcome plus an optional deterministic trace note.
#[derive(Debug)]
pub struct StageResult {
    /// The control-flow outcome.
    pub outcome: StageOutcome,
    /// Deterministic detail for the trace (shown by `--explain`).
    pub note: Option<String>,
}

impl StageResult {
    /// A `Decided` result.
    pub fn decided(answer: ContainmentAnswer) -> StageResult {
        StageResult {
            outcome: StageOutcome::Decided(answer),
            note: None,
        }
    }

    /// A `Continue` result.
    pub fn cont() -> StageResult {
        StageResult {
            outcome: StageOutcome::Continue,
            note: None,
        }
    }

    /// An `Inapplicable` result.
    pub fn inapplicable() -> StageResult {
        StageResult {
            outcome: StageOutcome::Inapplicable,
            note: None,
        }
    }

    /// Attaches a trace note.  Notes must be deterministic in the instance
    /// and options (the trace-determinism invariant).
    pub fn with_note(mut self, note: impl Into<String>) -> StageResult {
        self.note = Some(note.into());
        self
    }
}

/// One stage of the decision pipeline.
///
/// Implementations must be deterministic: the outcome (and note) may depend
/// only on the [`PipelineState`] — which is itself a deterministic function
/// of the query pair and options — never on wall-clock time, thread
/// identity, or iteration order of unordered containers.
pub trait DecisionStage: Send + Sync {
    /// Stable stage name, shared by traces and engine telemetry.
    fn name(&self) -> &'static str;

    /// The paper result the stage implements.
    fn citation(&self) -> &'static str;

    /// Runs the stage against the shared state.
    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError>;
}

/// The final answer together with its end-to-end explanation.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The containment answer (exactly what
    /// [`decide_containment_with`](crate::decide_containment_with) returns).
    pub answer: ContainmentAnswer,
    /// Which stages ran, what each concluded, and what each cost.
    pub trace: DecisionTrace,
}

/// A cost-ordered list of [`DecisionStage`]s deciding `Q1 ⊑ Q2`.
pub struct DecisionPipeline {
    stages: Vec<Box<dyn DecisionStage>>,
}

impl DecisionPipeline {
    /// The standard seven-stage pipeline (see the module docs).
    pub fn standard() -> DecisionPipeline {
        DecisionPipeline::with_stages(vec![
            Box::new(BooleanReduction),
            Box::new(IdentityShortcut),
            Box::new(HomExistence),
            Box::new(JunctionTree),
            Box::new(CountingRefuter),
            Box::new(ShannonLp),
            Box::new(WitnessMaterialization),
        ])
    }

    /// A pipeline over a custom stage list.  The last reachable stage must
    /// decide every instance the earlier ones pass through, or
    /// [`DecideError::PipelineIncomplete`] is returned at run time.
    pub fn with_stages(stages: Vec<Box<dyn DecisionStage>>) -> DecisionPipeline {
        DecisionPipeline { stages }
    }

    /// The stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Decides `q1 ⊑ q2`, returning the answer and its trace.
    ///
    /// `gamma` answers the Shannon-cone feasibility probes; pass a fresh
    /// prover for history-independent answers or a warm one for
    /// vertex-insensitive (witness-free) serving paths — the policy
    /// [`decide_containment_in`](crate::decide_containment_in) implements.
    pub fn run(
        &self,
        gamma: &mut GammaProver,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        options: &DecideOptions,
    ) -> Result<Decision, DecideError> {
        let mut state = PipelineState::new(gamma, q1, q2, options);
        let mut trace = DecisionTrace::new();
        let _pipeline_span = bqc_obs::span("pipeline");
        for stage in &self.stages {
            bqc_obs::failpoint("pipeline::stage");
            let stage_span = bqc_obs::span(stage.name());
            let start = Instant::now();
            // The deadline is rechecked between stages so that work done by
            // budget-oblivious custom stages still cannot push a decision
            // past its deadline by more than one stage.
            let StageResult { outcome, note } = match state.budget.check_deadline() {
                Ok(()) => stage.run(&mut state)?,
                Err(exhausted) => budget_exhausted_result(&state, exhausted),
            };
            let micros = start.elapsed().as_micros() as u64;
            drop(stage_span);
            let status = match &outcome {
                StageOutcome::Decided(answer) => StageStatus::Decided(answer.summary().verdict()),
                StageOutcome::Continue => StageStatus::Continued,
                StageOutcome::Inapplicable => StageStatus::Inapplicable,
            };
            trace.push(StageReport {
                stage: stage.name(),
                citation: stage.citation(),
                status,
                note,
                micros,
            });
            if let StageOutcome::Decided(answer) = outcome {
                return Ok(Decision { answer, trace });
            }
        }
        Err(DecideError::PipelineIncomplete)
    }
}

impl Default for DecisionPipeline {
    fn default() -> DecisionPipeline {
        DecisionPipeline::standard()
    }
}

impl std::fmt::Debug for DecisionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionPipeline")
            .field("stages", &self.stage_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;

    fn run_standard(t1: &str, t2: &str, options: &DecideOptions) -> Decision {
        let q1 = parse_query(t1).unwrap();
        let q2 = parse_query(t2).unwrap();
        DecisionPipeline::standard()
            .run(&mut GammaProver::default(), &q1, &q2, options)
            .unwrap()
    }

    #[test]
    fn standard_stage_list_is_cost_ordered() {
        assert_eq!(
            DecisionPipeline::standard().stage_names(),
            vec![
                "boolean-reduction",
                "identity-shortcut",
                "hom-existence",
                "junction-tree",
                "counting-refuter",
                "shannon-lp",
                "witness-materialization",
            ]
        );
    }

    #[test]
    fn identity_pairs_stop_at_the_shortcut() {
        let decision = run_standard(
            "Q() :- R(x,y), S(y,z)",
            "Q() :- S(y,z), R(x,y)",
            &DecideOptions::default(),
        );
        assert!(decision.answer.is_contained());
        assert_eq!(decision.trace.decided_by(), Some("identity-shortcut"));
        assert_eq!(decision.trace.reports().len(), 2);
    }

    #[test]
    fn disjoint_vocabularies_stop_at_the_hom_screen() {
        let decision = run_standard(
            "Q1() :- R(x,y)",
            "Q2() :- S(u,v)",
            &DecideOptions::default(),
        );
        assert!(decision.answer.is_not_contained());
        assert_eq!(decision.trace.decided_by(), Some("hom-existence"));
    }

    #[test]
    fn example_4_3_reaches_the_lp() {
        let decision = run_standard(
            "Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)",
            "Q2() :- R(y1,y2), R(y1,y3)",
            &DecideOptions::default(),
        );
        assert!(decision.answer.is_contained());
        assert_eq!(decision.trace.decided_by(), Some("shannon-lp"));
        // The refuter ran (decidable class) but could not separate counts —
        // containment holds.
        let refuter = &decision.trace.reports()[4];
        assert_eq!(refuter.stage, "counting-refuter");
        assert_eq!(refuter.status, StageStatus::Continued);
    }

    #[test]
    fn example_3_5_is_decided_by_the_counting_refuter() {
        let decision = run_standard(
            "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
            &DecideOptions::default(),
        );
        assert_eq!(decision.trace.decided_by(), Some("counting-refuter"));
        match &decision.answer {
            ContainmentAnswer::NotContained {
                witness,
                counterexample,
            } => {
                assert!(counterexample.is_none(), "no LP ran");
                let witness = witness.as_ref().expect("refuting database verifies");
                assert!(witness.hom_q1 > witness.hom_q2);
            }
            other => panic!("expected NotContained, got {other:?}"),
        }
    }

    #[test]
    fn refuter_defers_to_the_lp_when_the_witness_budget_is_too_small() {
        // Example 3.5's separation has 4 Q1-homomorphisms; with a 2-row
        // witness budget the refuter must not decide witness-free — it
        // continues, and the LP + Lemma 3.7 path produces exactly what the
        // pre-refactor procedure would (here: no witness fits either).
        let options = DecideOptions {
            witness_max_rows: 2,
            ..DecideOptions::default()
        };
        let decision = run_standard(
            "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
            &options,
        );
        assert!(decision.answer.is_not_contained());
        assert_eq!(decision.trace.decided_by(), Some("witness-materialization"));
        let refuter = &decision.trace.reports()[4];
        assert_eq!(refuter.stage, "counting-refuter");
        assert_eq!(refuter.status, StageStatus::Continued);
        assert!(refuter
            .note
            .as_ref()
            .unwrap()
            .contains("exceeds the witness budget"));
        let legacy = crate::legacy::decide_containment_legacy(
            &parse_query(
                "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            )
            .unwrap(),
            &parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap(),
            &options,
        )
        .unwrap();
        assert_eq!(decision.answer.summary(), legacy.summary());
    }

    #[test]
    fn refuter_can_be_disabled() {
        let options = DecideOptions {
            counting_refuter: false,
            ..DecideOptions::default()
        };
        let decision = run_standard(
            "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
            &options,
        );
        assert!(decision.answer.is_not_contained());
        assert_eq!(
            decision.trace.decided_by(),
            Some("witness-materialization"),
            "with the refuter off the LP path decides"
        );
    }

    #[test]
    fn incomplete_custom_pipelines_report_an_error() {
        let pipeline = DecisionPipeline::with_stages(vec![Box::new(BooleanReduction)]);
        let q = parse_query("Q() :- R(x,y)").unwrap();
        let error = pipeline
            .run(
                &mut GammaProver::default(),
                &q,
                &q,
                &DecideOptions::default(),
            )
            .unwrap_err();
        assert_eq!(error, DecideError::PipelineIncomplete);
    }
}
