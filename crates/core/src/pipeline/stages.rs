//! The standard stages of the Theorem 3.1 decision pipeline.
//!
//! Cost-ordered: each stage is strictly cheaper than the ones after it, so
//! an instance is decided by the cheapest test that can decide it.
//!
//! 1. [`BooleanReduction`] — Lemma A.1, string rewriting;
//! 2. [`IdentityShortcut`] — syntactic identity (modulo atom order), a sort;
//! 3. [`HomExistence`] — `hom(Q2, Q1) = ∅` screen, backtracking enumeration;
//! 4. [`JunctionTree`] — chordality + Eq. (8) construction, pure graph and
//!    symbolic work (no LP);
//! 5. [`CountingRefuter`] — hom-counting on small databases (Fact 3.2),
//!    confined to the decidable class so pipeline verdicts are exactly the
//!    Theorem 3.1 procedure's;
//! 6. [`ShannonLp`] — the exact Γ_n feasibility probe, the expensive stage;
//! 7. [`WitnessMaterialization`] — Lemma 3.7 + Lemma 4.8 witness extraction
//!    from the violating polymatroid.

use crate::containment::{containment_inequality_from_homs, query_homomorphisms_budgeted};
use crate::decide::{ContainmentAnswer, DecideError, Obstruction};
use crate::reductions::{boolean_reduction, saturate_pair};
use crate::witness::{verify_witness, witness_from_counterexample, NonContainmentWitness};
use bqc_hypergraph::{junction_tree, Graph, TreeDecomposition};
use bqc_iip::GammaValidity;
use bqc_relational::{ConjunctiveQuery, VRelation, Value};

use super::refuter::{candidate_count, counting_refutation_budgeted, witness_from_refutation};
use super::{budget_exhausted_result, DecisionStage, PipelineState, StageResult};

/// Lemma A.1: queries with head variables are replaced by their Boolean
/// reductions (fresh unary atoms pairing the head variables positionally).
#[derive(Clone, Copy, Debug, Default)]
pub struct BooleanReduction;

impl DecisionStage for BooleanReduction {
    fn name(&self) -> &'static str {
        "boolean-reduction"
    }

    fn citation(&self) -> &'static str {
        "Lemma A.1"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        if state.q1.is_boolean() && state.q2.is_boolean() {
            return Ok(StageResult::inapplicable());
        }
        let head_vars = state.q1.head().len();
        let (q1, q2) =
            boolean_reduction(&state.q1, &state.q2).map_err(DecideError::MismatchedHeads)?;
        state.q1 = q1;
        state.q2 = q2;
        Ok(StageResult::cont().with_note(format!(
            "reduced to Boolean queries ({head_vars} head variable(s))"
        )))
    }
}

/// Reflexivity shortcut: syntactically identical queries (same atom multiset
/// after the Boolean reduction) are trivially contained in each other — no
/// homomorphism enumeration, no LP.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityShortcut;

impl DecisionStage for IdentityShortcut {
    fn name(&self) -> &'static str {
        "identity-shortcut"
    }

    fn citation(&self) -> &'static str {
        "bag-set reflexivity"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        let mut atoms1: Vec<(&str, &[String])> = state
            .q1
            .atoms()
            .iter()
            .map(|a| (a.relation.as_str(), a.args.as_slice()))
            .collect();
        let mut atoms2: Vec<(&str, &[String])> = state
            .q2
            .atoms()
            .iter()
            .map(|a| (a.relation.as_str(), a.args.as_slice()))
            .collect();
        atoms1.sort();
        atoms2.sort();
        if atoms1 == atoms2 {
            Ok(
                StageResult::decided(ContainmentAnswer::Contained { inequality: None }).with_note(
                    "queries are syntactically identical (modulo atom order)".to_string(),
                ),
            )
        } else {
            Ok(StageResult::inapplicable())
        }
    }
}

/// The `hom(Q2, Q1) = ∅` screen: with no homomorphism from the containing
/// query, the canonical database of `Q1` separates the pair immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct HomExistence;

impl DecisionStage for HomExistence {
    fn name(&self) -> &'static str {
        "hom-existence"
    }

    fn citation(&self) -> &'static str {
        "Fact 3.2"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        let homomorphisms = match query_homomorphisms_budgeted(&state.q2, &state.q1, &state.budget)
        {
            Ok(homomorphisms) => homomorphisms,
            Err(exhausted) => return Ok(budget_exhausted_result(state, exhausted)),
        };
        if homomorphisms.is_empty() {
            let witness = if state.options.extract_witness {
                canonical_witness(&state.q1, &state.q2)
            } else {
                None
            };
            return Ok(StageResult::decided(ContainmentAnswer::NotContained {
                witness,
                counterexample: None,
            })
            .with_note("no homomorphism Q2 → Q1".to_string()));
        }
        let note = format!("{} homomorphism(s) Q2 → Q1", homomorphisms.len());
        state.homomorphisms = Some(homomorphisms);
        Ok(StageResult::cont().with_note(note))
    }
}

/// Structural stage: builds the junction tree of `Q2` (or the single-bag
/// fallback when `Q2` is not chordal), constructs the Eq. (8) containment
/// inequality over it, and classifies the instance against the decidable
/// class of Theorem 3.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct JunctionTree;

impl DecisionStage for JunctionTree {
    fn name(&self) -> &'static str {
        "junction-tree"
    }

    fn citation(&self) -> &'static str {
        "Theorem 3.1"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        if state.homomorphisms.is_none() {
            // Defensive for custom stage lists that skipped the screen.
            match query_homomorphisms_budgeted(&state.q2, &state.q1, &state.budget) {
                Ok(homomorphisms) => state.homomorphisms = Some(homomorphisms),
                Err(exhausted) => return Ok(budget_exhausted_result(state, exhausted)),
            }
        }
        let gaifman = {
            let mut graph = Graph::from_cliques(state.q2.hyperedges());
            for v in state.q2.vars() {
                graph.add_vertex(v.clone());
            }
            graph
        };
        let (td, note) = match junction_tree(&gaifman) {
            Some(td) => {
                state.single_bag_fallback = false;
                let simple = td.is_simple();
                let note = format!(
                    "chordal: junction tree with {} bag(s){}",
                    td.bags().len(),
                    if simple { "" } else { ", not simple" }
                );
                (td, note)
            }
            None => {
                state.single_bag_fallback = true;
                state.obstruction = Some(Obstruction::NotChordal);
                (
                    TreeDecomposition::single_bag(state.q2.var_set()),
                    "not chordal: trivial single-bag decomposition".to_string(),
                )
            }
        };
        let homomorphisms = state.homomorphisms.as_deref().expect("stored above");
        let Some((inequality, composed)) =
            containment_inequality_from_homs(&state.q1, &td, homomorphisms)
        else {
            // Unreachable after the hom-existence screen, but a custom
            // pipeline may have skipped it: no homomorphism means not
            // contained, as in that screen.
            let witness = if state.options.extract_witness {
                canonical_witness(&state.q1, &state.q2)
            } else {
                None
            };
            return Ok(StageResult::decided(ContainmentAnswer::NotContained {
                witness,
                counterexample: None,
            })
            .with_note("no homomorphism Q2 → Q1".to_string()));
        };
        let simple = td.is_simple() && composed.iter().all(|e| e.is_simple());
        state.decidable = !state.single_bag_fallback && simple;
        if !state.decidable && state.obstruction.is_none() {
            state.obstruction = Some(Obstruction::JunctionTreeNotSimple);
        }
        state.decomposition = Some(td);
        state.inequality = Some(inequality);
        Ok(StageResult::cont().with_note(note))
    }
}

/// The counting refuter (Fact 3.2): evaluates `|hom(Q1, D)|` vs
/// `|hom(Q2, D)|` on the canonical database of `Q1` and a small
/// deterministic family of random structures, refuting containment before
/// any LP work when the counts disagree.
///
/// The stage is confined to the decidable class of Theorem 3.1: inside it a
/// count separation and a failed Γ_n check are the *same* verdict (the
/// theorem's completeness direction), so skipping the LP cannot change any
/// answer.  Outside the class a count separation would still be a sound
/// refutation, but the Theorem 3.1 procedure reports `Unknown` there, and
/// this pipeline is specified to return bit-identical verdicts — the
/// obstruction report is part of the contract.
///
/// When witness extraction is requested, the stage decides only if the
/// separating database also yields a witness within
/// [`DecideOptions::witness_max_rows`](crate::DecideOptions); a separation
/// whose homomorphism relation exceeds the budget instead *continues* to
/// the LP path, so the answer (including witness presence) is exactly what
/// the Lemma 3.7 extraction would have produced anyway.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingRefuter;

impl DecisionStage for CountingRefuter {
    fn name(&self) -> &'static str {
        "counting-refuter"
    }

    fn citation(&self) -> &'static str {
        "Fact 3.2"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        if !state.options.counting_refuter {
            return Ok(StageResult::inapplicable().with_note("disabled by options".to_string()));
        }
        if !state.decidable {
            return Ok(StageResult::inapplicable()
                .with_note("outside the decidable class of Theorem 3.1".to_string()));
        }
        match counting_refutation_budgeted(&state.q1, &state.q2, &state.budget) {
            Err(exhausted) => Ok(budget_exhausted_result(state, exhausted)),
            Ok(Some(refutation)) => {
                let witness = if state.options.extract_witness {
                    let witness = witness_from_refutation(
                        &state.q1,
                        &state.q2,
                        &refutation,
                        state.options.witness_max_rows,
                    );
                    if witness.is_none() {
                        // The separation is sound, but its homomorphism
                        // relation exceeds the witness budget.  Deciding here
                        // would return a witness-free answer where the legacy
                        // LP path might still extract one within budget, so
                        // defer to the LP + Lemma 3.7 machinery instead.
                        let note = format!(
                            "separation on {} ({} vs {} homomorphisms) exceeds the \
                             witness budget; deferring to the LP path",
                            refutation.candidate_label(),
                            refutation.hom_q1,
                            refutation.hom_q2
                        );
                        state.refutation = Some(refutation);
                        return Ok(StageResult::cont().with_note(note));
                    }
                    witness
                } else {
                    None
                };
                let note = format!(
                    "refuted on {}: {} vs {} homomorphisms",
                    refutation.candidate_label(),
                    refutation.hom_q1,
                    refutation.hom_q2
                );
                state.refutation = Some(refutation);
                Ok(StageResult::decided(ContainmentAnswer::NotContained {
                    witness,
                    counterexample: None,
                })
                .with_note(note))
            }
            Ok(None) => Ok(StageResult::cont().with_note(format!(
                "counts agree on {} candidate database(s)",
                candidate_count(&state.q1)
            ))),
        }
    }
}

/// The Shannon-cone LP: checks the Eq. (8) inequality over `Γ_n` with the
/// exact prover.  Validity decides **Contained** (Theorem 4.2, sound for
/// every `Q2`); a violating polymatroid decides **Unknown** outside the
/// decidable class and hands over to witness materialization inside it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShannonLp;

impl DecisionStage for ShannonLp {
    fn name(&self) -> &'static str {
        "shannon-lp"
    }

    fn citation(&self) -> &'static str {
        "Theorems 3.6 & 4.2"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        let Some(inequality) = state.inequality.take() else {
            return Ok(StageResult::inapplicable()
                .with_note("no containment inequality was built".to_string()));
        };
        let disjuncts = inequality.num_disjuncts();
        let budget = state.budget.clone();
        match state
            .gamma
            .check_max_inequality_budgeted(&inequality, &budget)
        {
            Err(exhausted) => Ok(budget_exhausted_result(state, exhausted)),
            Ok(GammaValidity::ValidShannon) => {
                Ok(StageResult::decided(ContainmentAnswer::Contained {
                    inequality: Some(inequality),
                })
                .with_note(format!(
                    "Eq. (8) inequality is Shannon-valid ({disjuncts} disjunct(s))"
                )))
            }
            Ok(GammaValidity::NotShannonProvable { counterexample }) => {
                if !state.decidable {
                    // The standard junction-tree stage always records the
                    // obstruction; a custom stage list that built the
                    // inequality without classifying the instance degrades
                    // to the structural default instead of panicking.
                    let obstruction = state.obstruction.unwrap_or(if state.single_bag_fallback {
                        Obstruction::NotChordal
                    } else {
                        Obstruction::JunctionTreeNotSimple
                    });
                    // The violating polymatroid is returned even though the
                    // verdict is Unknown: it is the concrete object a caller
                    // would need to push the instance further by hand.
                    return Ok(StageResult::decided(ContainmentAnswer::Unknown {
                        obstruction,
                        counterexample: Some(counterexample),
                    })
                    .with_note("violating polymatroid found; instance undecidable here"));
                }
                state.counterexample = Some(counterexample);
                Ok(StageResult::cont()
                    .with_note("violating polymatroid found (Theorem 3.1 refutation)"))
            }
        }
    }
}

/// Theorem 3.1's "not contained" branch: materializes a verified witness
/// database from the violating polymatroid (Lemma 3.7 normalization +
/// Lemma 4.8 amplification), falling back to the saturated pair (Fact A.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct WitnessMaterialization;

impl DecisionStage for WitnessMaterialization {
    fn name(&self) -> &'static str {
        "witness-materialization"
    }

    fn citation(&self) -> &'static str {
        "Lemma 3.7 + Lemma 4.8"
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageResult, DecideError> {
        let Some(counterexample) = state.counterexample.take() else {
            return Ok(
                StageResult::inapplicable().with_note("no violating polymatroid".to_string())
            );
        };
        let (witness, note) = if state.options.extract_witness {
            let witness = witness_from_counterexample(
                &state.q1,
                &state.q2,
                &counterexample,
                state.options.witness_max_rows,
            )
            .or_else(|| {
                let (s1, s2) = saturate_pair(&state.q1, &state.q2);
                witness_from_counterexample(
                    &s1,
                    &s2,
                    &counterexample,
                    state.options.witness_max_rows,
                )
            });
            let note = match &witness {
                Some(w) => format!(
                    "verified witness: {} vs {} homomorphisms",
                    w.hom_q1, w.hom_q2
                ),
                None => "witness budget exhausted".to_string(),
            };
            (witness, note)
        } else {
            (None, "witness extraction disabled".to_string())
        };
        Ok(StageResult::decided(ContainmentAnswer::NotContained {
            witness,
            counterexample: Some(counterexample),
        })
        .with_note(note))
    }
}

/// The canonical database of `Q1` as a witness relation: a single row mapping
/// every variable to itself.  Used when `hom(Q2, Q1) = ∅`.
pub(crate) fn canonical_witness(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Option<NonContainmentWitness> {
    let columns: Vec<String> = q1.vars().to_vec();
    let row: Vec<Value> = columns.iter().map(|v| Value::text(v.clone())).collect();
    let relation = VRelation::from_rows(columns, vec![row]);
    verify_witness(q1, q2, &relation)
}
