//! The shared mutable state a [`DecisionPipeline`](crate::pipeline::DecisionPipeline)
//! threads through its stages.
//!
//! Each stage reads what earlier stages established and enriches the state
//! for later ones: the Boolean reduction replaces the query pair, the
//! hom-existence screen stores the homomorphisms, the junction-tree stage
//! stores the decomposition, the Eq. (8) inequality, and the decidable-class
//! verdict, and the Shannon-cone LP stores its violating polymatroid for the
//! witness stage.  All fields are public so that custom
//! [`DecisionStage`](crate::pipeline::DecisionStage) implementations can
//! participate.

use crate::containment::QueryHomomorphism;
use crate::decide::DecideOptions;
use bqc_entropy::SetFunction;
use bqc_hypergraph::TreeDecomposition;
use bqc_iip::{GammaProver, MaxInequality};
use bqc_obs::Budget;
use bqc_relational::ConjunctiveQuery;

use super::refuter::CountRefutation;
use crate::decide::Obstruction;

/// Mutable pipeline state, created fresh for every decision.
pub struct PipelineState<'a> {
    /// Decision options (witness budget, refuter switch, …).
    pub options: &'a DecideOptions,
    /// The running resource budget, started from
    /// [`DecideOptions::budget`](crate::DecideOptions::budget) when the
    /// pipeline began.  Stages charge their work against it and convert an
    /// exhaustion into a decided `Unknown` (see
    /// [`budget_exhausted_result`](super::budget_exhausted_result)).
    pub budget: Budget,
    /// The Shannon-cone prover answering the LP stage's feasibility probes.
    pub gamma: &'a mut GammaProver,
    /// The contained-candidate query; replaced by its Boolean reduction by
    /// the first stage.
    pub q1: ConjunctiveQuery,
    /// The containing-candidate query; replaced by its Boolean reduction by
    /// the first stage.
    pub q2: ConjunctiveQuery,
    /// `hom(Q2, Q1)`, stored by the hom-existence screen (non-empty when
    /// that stage continued).
    pub homomorphisms: Option<Vec<QueryHomomorphism>>,
    /// The tree decomposition of `Q2` the inequality is built over: a real
    /// junction tree when `Q2` is chordal, otherwise the trivial single-bag
    /// decomposition.
    pub decomposition: Option<TreeDecomposition>,
    /// `true` when [`decomposition`](Self::decomposition) is the single-bag
    /// fallback (non-chordal `Q2`).
    pub single_bag_fallback: bool,
    /// The Eq. (8) containment inequality, built by the junction-tree stage.
    pub inequality: Option<MaxInequality>,
    /// Whether the instance is inside the decidable class of Theorem 3.1
    /// (`Q2` chordal, junction tree simple, composed expressions simple).
    pub decidable: bool,
    /// What keeps the instance out of the decidable class, when something
    /// does.
    pub obstruction: Option<Obstruction>,
    /// The violating polymatroid of the Γ_n check, stored by the LP stage
    /// when the inequality fails inside the decidable class.
    pub counterexample: Option<SetFunction>,
    /// The counting refuter's separation, when it fired (kept for
    /// diagnostics; the stage decides immediately).
    pub refutation: Option<CountRefutation>,
}

impl<'a> PipelineState<'a> {
    /// Initial state for a decision of `q1 ⊑ q2`.
    pub fn new(
        gamma: &'a mut GammaProver,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
        options: &'a DecideOptions,
    ) -> PipelineState<'a> {
        PipelineState {
            options,
            budget: options.budget.start(),
            gamma,
            q1: q1.clone(),
            q2: q2.clone(),
            homomorphisms: None,
            decomposition: None,
            single_bag_fallback: false,
            inequality: None,
            decidable: false,
            obstruction: None,
            counterexample: None,
            refutation: None,
        }
    }
}
