//! The counting refuter: sound non-containment by counting on small databases.
//!
//! Fact 3.2 makes any concrete database `D` with
//! `|hom(Q1, D)| > |hom(Q2, D)|` an outright proof of `Q1 ⋢ Q2` — no LP, no
//! polymatroids.  This stage evaluates both counts on the canonical database
//! of `Q1` (the classic first candidate: every set-semantics separation lives
//! there, and so do many bag separations, e.g. Example 3.5) and then on a
//! small deterministic family of pseudo-random structures over the joint
//! vocabulary, refuting containment before any LP work whenever the counts
//! disagree.
//!
//! Counting goes through the junction-tree dynamic program
//! ([`crate::yannakakis::count_homomorphisms_acyclic`]) whenever the query is
//! α-acyclic and falls back to the exact backtracking counter otherwise; the
//! candidate structures are tiny (≤ [`MAX_DOMAIN`] elements), so either
//! counter is microseconds where a Shannon-cone probe is milliseconds.
//!
//! The family is a pure function of the query pair (fixed seed, sizes, and
//! count), which keeps pipeline verdicts — and decision traces — perfectly
//! deterministic, matching the engine's cache-determinism invariant.

use crate::witness::{verify_witness, NonContainmentWitness};
use bqc_obs::{Budget, Exhausted};
use bqc_relational::{
    count_homomorphisms, count_homomorphisms_budgeted, enumerate_homomorphisms, ConjunctiveQuery,
    Structure, VRelation, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of pseudo-random structures tried after the canonical database.
/// Two (one 2-element, one 3-element domain) is the sweet spot measured by
/// `pipeline/overhead/*`: enough to catch count separations the canonical
/// database misses (e.g. 5-cycle ⋢ 2-star needs the dense 3-element
/// structure), cheap enough that contained LP-bound decisions stay within
/// the 10% pipeline-overhead CI floor.
pub const RANDOM_STRUCTURES: usize = 2;

/// Largest domain used for the random structures.
pub const MAX_DOMAIN: usize = 3;

/// Smallest `|vars(Q1)|` for which the random family runs.  Below this the
/// Shannon-cone LP is on its cheap small-universe path and counting over
/// the whole candidate family would cost more than the LP it tries to
/// avoid, so only the canonical database (a few microseconds, and the
/// candidate that catches Example 3.5) is tried.  At and above it the LP is
/// the 2^n wall and the family is noise by comparison.
pub const RANDOM_FAMILY_MIN_VARS: usize = 5;

/// How many candidate databases [`counting_refutation`] evaluates for this
/// contained-candidate query (the canonical database, plus the random family
/// for universes of at least [`RANDOM_FAMILY_MIN_VARS`] variables).
pub fn candidate_count(q1: &ConjunctiveQuery) -> usize {
    if q1.num_vars() >= RANDOM_FAMILY_MIN_VARS {
        1 + RANDOM_STRUCTURES
    } else {
        1
    }
}

/// Per-relation cap on the tuples a random structure may hold (arity blowup
/// guard; irrelevant for the binary/unary vocabularies of practice).
const MAX_TUPLES_PER_RELATION: usize = 64;

/// Fixed seed of the structure family: the refuter is a pure function of the
/// query pair.
const FAMILY_SEED: u64 = 0x6261_675f_6371_6331; // "bag_cqc1"

/// A successful counting refutation: a concrete database separating the two
/// queries, with the counts that prove it.
#[derive(Clone, Debug)]
pub struct CountRefutation {
    /// The separating database.
    pub database: Structure,
    /// Which candidate produced it: `0` is the canonical database of `Q1`,
    /// `1..` are the members of the random family.
    pub candidate: usize,
    /// `|hom(Q1, database)|`.
    pub hom_q1: u128,
    /// `|hom(Q2, database)|` (strictly smaller).
    pub hom_q2: u128,
}

impl CountRefutation {
    /// Human label of the candidate that separated the queries.
    pub fn candidate_label(&self) -> String {
        if self.candidate == 0 {
            "canonical database of Q1".to_string()
        } else {
            format!("random structure #{}", self.candidate)
        }
    }
}

/// Counts `|hom(query, data)|`, preferring the acyclic junction-tree DP and
/// falling back to exact backtracking for cyclic queries.
pub fn count_homomorphisms_fast(query: &ConjunctiveQuery, data: &Structure) -> u128 {
    crate::yannakakis::count_homomorphisms_acyclic(query, data)
        .unwrap_or_else(|| count_homomorphisms(query, data))
}

/// [`count_homomorphisms_fast`] under a cooperative work budget.  Limited
/// budgets count by budgeted backtracking instead of the (budget-oblivious)
/// junction-tree DP; both counters are exact, so the count — and hence every
/// verdict derived from it — is the same either way.
fn count_homomorphisms_fast_budgeted(
    query: &ConjunctiveQuery,
    data: &Structure,
    budget: &Budget,
) -> Result<u128, Exhausted> {
    if budget.is_unlimited() {
        Ok(count_homomorphisms_fast(query, data))
    } else {
        count_homomorphisms_budgeted(query, data, budget)
    }
}

/// Runs the counting refuter on a (Boolean) containment instance: evaluates
/// `|hom(Q1, D)|` vs `|hom(Q2, D)|` on the canonical database of `Q1` and —
/// for universes of at least [`RANDOM_FAMILY_MIN_VARS`] variables, where the
/// LP being avoided is expensive — on the deterministic random family,
/// returning the first separation found.
///
/// `None` means *inconclusive* — containment may still fail on a database
/// outside the family; a `Some` is an unconditional proof of `Q1 ⋢ Q2`
/// (Fact 3.2).
pub fn counting_refutation(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Option<CountRefutation> {
    counting_refutation_budgeted(q1, q2, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`counting_refutation`] under a cooperative work budget: the hom counts
/// charge hom-steps and the scan aborts with `Err(Exhausted)` when the
/// budget runs out.  `Err` certifies nothing — in particular it is not an
/// `Ok(None)` (inconclusive but completed) scan.
pub fn counting_refutation_budgeted(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    budget: &Budget,
) -> Result<Option<CountRefutation>, Exhausted> {
    let canonical = q1.canonical_structure();
    if let Some(refutation) = check_candidate(q1, q2, canonical, 0, budget)? {
        return Ok(Some(refutation));
    }
    if candidate_count(q1) == 1 {
        return Ok(None);
    }
    let mut rng = StdRng::seed_from_u64(FAMILY_SEED);
    for index in 1..=RANDOM_STRUCTURES {
        let domain = 2 + (index - 1) % (MAX_DOMAIN - 1);
        let candidate = random_structure(q1, q2, domain, &mut rng);
        if let Some(refutation) = check_candidate(q1, q2, candidate, index, budget)? {
            return Ok(Some(refutation));
        }
    }
    Ok(None)
}

/// Materializes a verified [`NonContainmentWitness`] from a counting
/// refutation: the witness relation is the *full* set of `Q1`-homomorphisms
/// into the separating database, one row per homomorphism over `vars(Q1)`.
///
/// This always verifies: the induced database `D' = Π_{Q1}(P)` is a
/// substructure of the separating `D` containing the image of every
/// `Q1`-homomorphism, so `|P| = hom(Q1, D) = hom(Q1, D')` while
/// `hom(Q2, D') ≤ hom(Q2, D) < hom(Q1, D)`.  Returns `None` only when the
/// relation would exceed `max_rows` — possible when `Q1` has many
/// homomorphisms into even a tiny database (e.g. many disconnected
/// components), in which case the refuter stage defers to the LP path
/// rather than returning a witness-free refutation.
pub fn witness_from_refutation(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    refutation: &CountRefutation,
    max_rows: u64,
) -> Option<NonContainmentWitness> {
    if refutation.hom_q1 > max_rows as u128 {
        return None;
    }
    let columns: Vec<String> = q1.vars().to_vec();
    let rows: Vec<Vec<Value>> = enumerate_homomorphisms(q1, &refutation.database)
        .into_iter()
        .map(|assignment| columns.iter().map(|v| assignment[v].clone()).collect())
        .collect();
    let relation = VRelation::from_rows(columns, rows);
    verify_witness(q1, q2, &relation)
}

fn check_candidate(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    database: Structure,
    candidate: usize,
    budget: &Budget,
) -> Result<Option<CountRefutation>, Exhausted> {
    let hom_q1 = count_homomorphisms_fast_budgeted(q1, &database, budget)?;
    if hom_q1 == 0 {
        // hom(Q2) can't be beaten by an empty count; skip the second count.
        return Ok(None);
    }
    let hom_q2 = count_homomorphisms_fast_budgeted(q2, &database, budget)?;
    Ok(if hom_q1 > hom_q2 {
        Some(CountRefutation {
            database,
            candidate,
            hom_q1,
            hom_q2,
        })
    } else {
        None
    })
}

/// One member of the deterministic family: every possible fact over a domain
/// of `domain` elements is included independently with probability 1/2, per
/// relation of the joint vocabulary (capped at [`MAX_TUPLES_PER_RELATION`]
/// tuples per relation to guard against high arities).
fn random_structure(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    domain: usize,
    rng: &mut StdRng,
) -> Structure {
    let mut vocabulary = q1.vocabulary();
    vocabulary.merge(&q2.vocabulary());
    let mut structure = Structure::new(vocabulary.clone());
    for value in 0..domain {
        structure.add_domain_value(Value::int(value as i64));
    }
    for symbol in vocabulary.symbols() {
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..symbol.arity {
            let mut next = Vec::with_capacity(tuples.len() * domain);
            for prefix in &tuples {
                for value in 0..domain {
                    let mut tuple = prefix.clone();
                    tuple.push(Value::int(value as i64));
                    next.push(tuple);
                }
            }
            tuples = next;
            if tuples.len() > MAX_TUPLES_PER_RELATION {
                tuples.truncate(MAX_TUPLES_PER_RELATION);
            }
        }
        for tuple in tuples {
            if rng.gen_range(0..2) == 1 {
                structure.add_fact(&symbol.name, tuple);
            }
        }
    }
    structure
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;

    #[test]
    fn example_3_5_is_refuted_on_the_canonical_database() {
        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        let refutation = counting_refutation(&q1, &q2).expect("counts disagree");
        assert_eq!(refutation.candidate, 0);
        assert_eq!(refutation.candidate_label(), "canonical database of Q1");
        // Two blocks, each mappable to either block: 2^2 = 4 Q1-homs; the
        // containing query has one hom per block: 2.
        assert_eq!(refutation.hom_q1, 4);
        assert_eq!(refutation.hom_q2, 2);
    }

    #[test]
    fn contained_pairs_are_never_refuted() {
        // Triangle ⊑ 2-star (Example 4.3) and Q ⊑ Q: containment holds, so no
        // candidate database may separate the counts.
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        assert!(counting_refutation(&triangle, &star).is_none());
        assert!(counting_refutation(&star, &star).is_none());
    }

    #[test]
    fn refuter_is_deterministic() {
        let q1 = parse_query("Q1() :- R(u,v), R(u,w)").unwrap();
        let q2 = parse_query("Q2() :- R(x,y), R(y,z)").unwrap();
        let first = counting_refutation(&q1, &q2);
        let second = counting_refutation(&q1, &q2);
        match (&first, &second) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.candidate, b.candidate);
                assert_eq!(a.hom_q1, b.hom_q1);
                assert_eq!(a.hom_q2, b.hom_q2);
                assert_eq!(a.database, b.database);
            }
            other => panic!("non-deterministic refuter: {other:?}"),
        }
    }

    #[test]
    fn fast_counter_matches_backtracking_on_cyclic_queries() {
        let triangle = parse_query("Q() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let db = triangle.canonical_structure();
        assert_eq!(
            count_homomorphisms_fast(&triangle, &db),
            count_homomorphisms(&triangle, &db)
        );
    }
}
