//! Witnesses for non-containment (Fact 3.2, Theorem 3.4, Lemma 4.8).
//!
//! A *witness* for `Q1 ⋢ Q2` is a relation `P ⊆ D^{vars(Q1)}` with
//! `|P| > |hom(Q2, Π_{Q1}(P))|` (Fact 3.2) — the induced database `Π_{Q1}(P)`
//! then has more `Q1`-homomorphisms than `Q2`-homomorphisms.  Theorem 3.4
//! shows that when `Q2` is chordal with a totally disconnected (resp. simple)
//! junction tree, a *product* (resp. *normal*) witness exists whenever any
//! witness exists.  This module verifies candidate witnesses by explicit
//! counting, extracts normal witnesses from polymatroid counterexamples of the
//! containment inequality (via the Lemma 3.7 normalization and the Lemma 4.8
//! gap amplification), searches for product witnesses by enumeration, and
//! provides a brute-force containment oracle for small instances.

use bqc_arith::Rational;
use bqc_entropy::{normal_relation_from_function, normalize, NormalFunction, SetFunction};
use bqc_relational::{count_homomorphisms, ConjunctiveQuery, Structure, VRelation, Value};

/// A verified proof that `Q1 ⋢ Q2`.
#[derive(Clone, Debug)]
pub struct NonContainmentWitness {
    /// The witnessing relation `P` over `vars(Q1)`.
    pub relation: VRelation,
    /// The induced database `D = Π_{Q1}(P)`.
    pub database: Structure,
    /// `|hom(Q1, D)|` (always at least `|P|`).
    pub hom_q1: u128,
    /// `|hom(Q2, D)|` (strictly less than `hom_q1`).
    pub hom_q2: u128,
    /// The queries the counts refer to (these may be the saturated variants of
    /// the original instance; saturation preserves containment by Fact A.3).
    pub q1_name: String,
    /// Name of the containing query used for the counts.
    pub q2_name: String,
}

impl NonContainmentWitness {
    /// The margin `hom_q1 − hom_q2`.
    pub fn margin(&self) -> u128 {
        self.hom_q1 - self.hom_q2
    }
}

/// Checks whether `P` witnesses `Q1 ⋢ Q2` in the sense of Fact 3.2:
/// `|P| > |hom(Q2, Π_{Q1}(P))|`.  (Since every row of `P` is a homomorphism of
/// `Q1` into the induced database, this implies `hom(Q1, D) > hom(Q2, D)`.)
/// The stricter `|P|`-based criterion is the one Theorem 3.4's product/normal
/// witness shapes refer to — Example 3.5 has a normal witness but no product
/// witness precisely under this definition.
pub fn verify_witness(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    relation: &VRelation,
) -> Option<NonContainmentWitness> {
    if relation.is_empty() {
        return None;
    }
    let database = relation.induced_database(q1);
    let hom_q2 = count_homomorphisms(q2, &database);
    if (relation.len() as u128) <= hom_q2 {
        return None;
    }
    let hom_q1 = count_homomorphisms(q1, &database);
    if hom_q1 > hom_q2 {
        Some(NonContainmentWitness {
            relation: relation.clone(),
            database,
            hom_q1,
            hom_q2,
            q1_name: q1.name.clone(),
            q2_name: q2.name.clone(),
        })
    } else {
        None
    }
}

/// Extracts a normal witness from a polymatroid counterexample of the
/// containment inequality (Eq. 8).
///
/// The counterexample is first pushed down into the normal functions
/// (Lemma 3.7 item 2 — sound because the composed expressions are simple when
/// `Q2`'s junction tree is simple), its step coefficients are scaled to
/// integers, and then the whole function is amplified by `k = 1, 2, …`
/// (Lemma 4.8) until the materialized normal relation verifies by counting or
/// the row budget `max_rows` is exhausted.
pub fn witness_from_counterexample(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    counterexample: &SetFunction,
    max_rows: u64,
) -> Option<NonContainmentWitness> {
    let normalized = normalize(counterexample);
    let normal = NormalFunction::try_from_set_function(&normalized)?;
    let (integral, _denominator) = normal.clear_denominators();
    for amplification in 1..=16u32 {
        let scaled = scale_normal(&integral, amplification);
        let Some(relation) = normal_relation_from_function(&scaled, max_rows) else {
            // The relation would exceed the row budget; larger amplifications
            // only grow it further.
            return None;
        };
        if let Some(witness) = verify_witness(q1, q2, &relation) {
            return Some(witness);
        }
    }
    None
}

fn scale_normal(normal: &NormalFunction, factor: u32) -> NormalFunction {
    let mut scaled = NormalFunction::zero(normal.vars().to_vec());
    let factor = Rational::from(factor as i64);
    for (&w, coeff) in normal.coefficients() {
        scaled.add_step(w, coeff * &factor);
    }
    scaled
}

/// Searches for a *product* witness (Theorem 3.4 item i) by enumerating
/// per-variable domain sizes from `sizes` (e.g. `[1, 2, 4]`) over all
/// variables of `Q1`, skipping candidates whose row count exceeds `max_rows`.
pub fn search_product_witness(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    sizes: &[u64],
    max_rows: u64,
) -> Option<NonContainmentWitness> {
    let vars = q1.vars().to_vec();
    let n = vars.len();
    let mut assignment = vec![0usize; n];
    loop {
        // Build the candidate for the current size assignment.
        let rows: u64 = assignment.iter().map(|&i| sizes[i]).product();
        if rows <= max_rows {
            let factors: Vec<(String, Vec<Value>)> = vars
                .iter()
                .zip(&assignment)
                .map(|(v, &i)| {
                    let values = (0..sizes[i])
                        .map(|j| Value::tagged(v.clone(), Value::int(j as i64)))
                        .collect();
                    (v.clone(), values)
                })
                .collect();
            let candidate = VRelation::product(&factors);
            if let Some(witness) = verify_witness(q1, q2, &candidate) {
                return Some(witness);
            }
        }
        // Advance the odometer.
        let mut position = 0;
        loop {
            if position == n {
                return None;
            }
            assignment[position] += 1;
            if assignment[position] < sizes.len() {
                break;
            }
            assignment[position] = 0;
            position += 1;
        }
    }
}

/// Brute-force containment oracle: checks `Q1(D) ≤ Q2(D)` for **every**
/// database over the active domain `{0, …, domain_size−1}` whose relations are
/// arbitrary subsets of all possible tuples.  Doubly exponential — use only
/// for tiny vocabularies in tests.  Returns a counterexample database if
/// containment fails.
pub fn exhaustive_containment_check(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    domain_size: usize,
) -> Result<(), Structure> {
    let mut vocabulary = q1.vocabulary();
    vocabulary.merge(&q2.vocabulary());
    // All possible facts over the domain.
    let mut all_facts: Vec<(String, Vec<Value>)> = Vec::new();
    for symbol in vocabulary.symbols() {
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..symbol.arity {
            let mut next = Vec::new();
            for prefix in &tuples {
                for v in 0..domain_size {
                    let mut t = prefix.clone();
                    t.push(Value::int(v as i64));
                    next.push(t);
                }
            }
            tuples = next;
        }
        for t in tuples {
            all_facts.push((symbol.name.clone(), t));
        }
    }
    assert!(
        all_facts.len() <= 20,
        "exhaustive check limited to at most 2^20 databases"
    );
    for subset in 0u64..(1 << all_facts.len()) {
        let mut db = Structure::new(vocabulary.clone());
        for (i, (name, tuple)) in all_facts.iter().enumerate() {
            if subset & (1 << i) != 0 {
                db.add_fact(name, tuple.clone());
            }
        }
        if count_homomorphisms(q1, &db) > count_homomorphisms(q2, &db) {
            return Err(db);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;
    use std::collections::BTreeSet;

    #[test]
    fn example_3_5_normal_witness_verifies() {
        // Example 3.5's witness P = {(u,u,v,v) | u,v ∈ [n]} for n = 3.
        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        let product = VRelation::product(&[
            ("u".to_string(), (1..=3).map(Value::int).collect()),
            ("v".to_string(), (1..=3).map(Value::int).collect()),
        ]);
        let psi: Vec<(String, BTreeSet<String>)> = vec![
            ("x1".to_string(), ["u".to_string()].into_iter().collect()),
            ("x2".to_string(), ["u".to_string()].into_iter().collect()),
            ("x1'".to_string(), ["v".to_string()].into_iter().collect()),
            ("x2'".to_string(), ["v".to_string()].into_iter().collect()),
        ];
        let normal = VRelation::normal_relation(&product, &psi);
        let witness = verify_witness(&q1, &q2, &normal).expect("P is a witness");
        // |P| = 9, hom(Q2, D) = 3 (the paper: n^2 vs n).
        assert_eq!(witness.hom_q1, 9);
        assert_eq!(witness.hom_q2, 3);
        assert!(witness.margin() > 0);
    }

    #[test]
    fn example_3_5_has_no_small_product_witness() {
        // The paper argues no product relation witnesses Example 3.5.
        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        assert!(search_product_witness(&q1, &q2, &[1, 2, 3], 200).is_none());
    }

    #[test]
    fn product_witness_found_when_one_exists() {
        // Q1 = R(x,y) vs Q2 = R(u,v), R(v,w): a single edge with no 2-path
        // (e.g. x≠y and no continuation) gives hom(Q1) = 1 > hom(Q2) = 0.
        let q1 = parse_query("Q1() :- R(x,y)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v), R(v,w)").unwrap();
        let witness = search_product_witness(&q1, &q2, &[1, 2], 100).expect("witness exists");
        assert!(witness.hom_q1 > witness.hom_q2);
    }

    #[test]
    fn verify_witness_rejects_non_witnesses() {
        // The triangle IS contained in the 2-star, so no relation can witness
        // non-containment; verify a couple of candidates are rejected.
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        let candidate = VRelation::product(&[
            ("x1".to_string(), (0..2).map(Value::int).collect()),
            ("x2".to_string(), (0..2).map(Value::int).collect()),
            ("x3".to_string(), (0..2).map(Value::int).collect()),
        ]);
        assert!(verify_witness(&triangle, &star, &candidate).is_none());
        let empty = VRelation::new(triangle.vars().to_vec());
        assert!(verify_witness(&triangle, &star, &empty).is_none());
    }

    #[test]
    fn exhaustive_oracle_agrees_on_small_cases() {
        // Triangle ⊑ 2-star holds on every database over a 2-element domain.
        let triangle = parse_query("Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)").unwrap();
        let star = parse_query("Q2() :- R(y1,y2), R(y1,y3)").unwrap();
        assert!(exhaustive_containment_check(&triangle, &star, 2).is_ok());

        // The reverse direction fails, and the oracle produces a counterexample.
        match exhaustive_containment_check(&star, &triangle, 2) {
            Err(db) => {
                assert!(count_homomorphisms(&star, &db) > count_homomorphisms(&triangle, &db));
            }
            Ok(()) => panic!("2-star is not contained in the triangle"),
        }
    }

    #[test]
    fn witness_from_counterexample_for_example_3_5() {
        // End-to-end: build the containment inequality for Example 3.5, get a
        // polymatroid counterexample from the LP, normalize it and materialize
        // a verified witness database.
        use crate::containment::containment_inequality;
        use bqc_hypergraph::{junction_tree, Graph};

        let q1 =
            parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
                .unwrap();
        let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
        let graph = Graph::from_cliques(q2.hyperedges());
        let td = junction_tree(&graph).unwrap();
        let (inequality, _) = containment_inequality(&q1, &q2, &td).unwrap();
        let counterexample = match bqc_iip::check_max_inequality(&inequality) {
            bqc_iip::GammaValidity::NotShannonProvable { counterexample } => counterexample,
            bqc_iip::GammaValidity::ValidShannon => panic!("Example 3.5 must be non-contained"),
        };
        let witness = witness_from_counterexample(&q1, &q2, &counterexample, 1 << 12)
            .expect("normal witness must verify");
        assert!(witness.hom_q1 > witness.hom_q2);
    }
}
