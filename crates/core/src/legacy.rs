//! The pre-refactor monolithic decision procedure, preserved verbatim.
//!
//! Before the staged [`crate::pipeline`] existed, `decide_containment_in`
//! was a single hard-coded cascade.  That exact control flow is kept here,
//! unchanged, for two jobs:
//!
//! * **equivalence oracle** — the proptest suite in
//!   `tests/pipeline_equivalence.rs` asserts that the pipeline's verdicts
//!   (and witness presence) match this function on random query pairs and on
//!   the whole hand-written corpus;
//! * **overhead baseline** — the `decide/overhead/*` benchmark scenarios
//!   measure the staged pipeline (with trace collection) against this direct
//!   path, and the CI gate enforces that the pipeline stays within 10% on
//!   LP-bound workloads.
//!
//! It is **not** part of the supported API: no traces, no counting refuter,
//! no warm-start context, and the known wart that the non-chordal fallback
//! discards its violating polymatroid (fixed in the pipeline) is preserved
//! on purpose.

use crate::containment::{containment_inequality, query_homomorphisms};
use crate::decide::{ContainmentAnswer, DecideError, DecideOptions, Obstruction};
use crate::reductions::{boolean_reduction, saturate_pair};
use crate::witness::{verify_witness, witness_from_counterexample, NonContainmentWitness};
use bqc_hypergraph::{junction_tree, Graph, TreeDecomposition};
use bqc_iip::{GammaProver, GammaValidity};
use bqc_relational::{ConjunctiveQuery, VRelation, Value};

/// Decides `Q1 ⊑ Q2` exactly as the pre-refactor monolith did (one fresh
/// Shannon-cone prover per call, no counting refuter, no trace).
pub fn decide_containment_legacy(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Result<ContainmentAnswer, DecideError> {
    let gamma = &mut GammaProver::default();

    // Step 1: Boolean reduction (Lemma A.1).
    let (q1, q2) = boolean_reduction(q1, q2).map_err(DecideError::MismatchedHeads)?;

    // Step 2: no homomorphism Q2 → Q1 means the canonical database of Q1
    // separates the queries immediately.
    if query_homomorphisms(&q2, &q1).is_empty() {
        let witness = if options.extract_witness {
            canonical_witness(&q1, &q2)
        } else {
            None
        };
        return Ok(ContainmentAnswer::NotContained {
            witness,
            counterexample: None,
        });
    }

    // Step 3: junction tree of Q2.
    let gaifman = {
        let mut graph = Graph::from_cliques(q2.hyperedges());
        for v in q2.vars() {
            graph.add_vertex(v.clone());
        }
        graph
    };
    let Some(td) = junction_tree(&gaifman) else {
        // Without a junction tree we can still try the sufficient condition on
        // a trivial single-bag decomposition (always a valid tree
        // decomposition: one bag containing all variables).
        let single = TreeDecomposition::single_bag(q2.var_set());
        if let Some((inequality, _)) = containment_inequality(&q1, &q2, &single) {
            if gamma.check_max_inequality(&inequality).is_valid() {
                return Ok(ContainmentAnswer::Contained {
                    inequality: Some(inequality),
                });
            }
        }
        return Ok(ContainmentAnswer::Unknown {
            obstruction: Obstruction::NotChordal,
            counterexample: None,
        });
    };

    // Step 4: build and check the containment inequality.
    let Some((inequality, composed)) = containment_inequality(&q1, &q2, &td) else {
        let witness = if options.extract_witness {
            canonical_witness(&q1, &q2)
        } else {
            None
        };
        return Ok(ContainmentAnswer::NotContained {
            witness,
            counterexample: None,
        });
    };
    match gamma.check_max_inequality(&inequality) {
        GammaValidity::ValidShannon => Ok(ContainmentAnswer::Contained {
            inequality: Some(inequality),
        }),
        GammaValidity::NotShannonProvable { counterexample } => {
            let simple = td.is_simple() && composed.iter().all(|e| e.is_simple());
            if !simple {
                return Ok(ContainmentAnswer::Unknown {
                    obstruction: Obstruction::JunctionTreeNotSimple,
                    counterexample: Some(counterexample),
                });
            }
            // Theorem 3.1: the instance is decidable and the answer is "not
            // contained".  Try to materialize a verified witness, first for
            // the original pair, then for the saturated pair (Fact A.3).
            let witness = if options.extract_witness {
                witness_from_counterexample(&q1, &q2, &counterexample, options.witness_max_rows)
                    .or_else(|| {
                        let (s1, s2) = saturate_pair(&q1, &q2);
                        witness_from_counterexample(
                            &s1,
                            &s2,
                            &counterexample,
                            options.witness_max_rows,
                        )
                    })
            } else {
                None
            };
            Ok(ContainmentAnswer::NotContained {
                witness,
                counterexample: Some(counterexample),
            })
        }
    }
}

/// The canonical database of `Q1` as a witness relation: a single row mapping
/// every variable to itself.  Used when `hom(Q2, Q1) = ∅`.
fn canonical_witness(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Option<NonContainmentWitness> {
    let columns: Vec<String> = q1.vars().to_vec();
    let row: Vec<Value> = columns.iter().map(|v| Value::text(v.clone())).collect();
    let relation = VRelation::from_rows(columns, vec![row]);
    verify_witness(q1, q2, &relation)
}
