//! Equivalence and determinism properties of the staged decision pipeline.
//!
//! * **Verdict equivalence** — the pipeline's verdicts are bit-identical to
//!   the pre-refactor monolith ([`bqc_core::legacy`]) on random query pairs
//!   and on a hand-written corpus covering every branch.  The one documented
//!   payload upgrade: when the counting refuter decides (always inside the
//!   decidable class, always `NotContained`), the witness comes from the
//!   separating database itself and is therefore always verified, while the
//!   legacy Lemma 3.7 extraction could exhaust its row budget.  The
//!   comparison below is exact for witness-free options and exact up to that
//!   refuter upgrade otherwise.
//! * **Trace determinism** — the stage sequence (and every note) of a
//!   decision is a pure function of the query pair and options: cold
//!   contexts, warm contexts, and repeated runs all produce identical trace
//!   signatures.  This mirrors the engine's cache-determinism invariant at
//!   the explanation level.
//! * **Bugfix regression** — the non-chordal single-bag fallback returns the
//!   violating polymatroid it used to discard.

use bqc_core::legacy::decide_containment_legacy;
use bqc_core::{
    decide_containment_traced, decide_containment_with, AnswerSummary, ContainmentAnswer,
    DecideContext, DecideOptions, Decision,
};
use bqc_entropy::is_polymatroid;
use bqc_relational::{parse_query, Atom, ConjunctiveQuery};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random *Boolean* conjunctive query, deterministic in `seed`: up to
/// `max_atoms` atoms over up to `max_vars` variables from a small mixed
/// vocabulary.  Boolean heads keep every generated pair decidable-or-unknown
/// (never a head-arity error) and the universes small enough for the exact
/// LP to stay fast.
fn random_boolean_query(max_vars: usize, max_atoms: usize, seed: u64) -> ConjunctiveQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..max_vars + 1);
    let atom_count = rng.gen_range(1..max_atoms + 1);
    let relations: [(&str, usize); 3] = [("R", 2), ("S", 2), ("U", 1)];
    let atoms: Vec<Atom> = (0..atom_count)
        .map(|_| {
            let (relation, arity) = relations[rng.gen_range(0..relations.len())];
            let args: Vec<String> = (0..arity)
                .map(|_| format!("x{}", rng.gen_range(0..n)))
                .collect();
            Atom::new(relation, args)
        })
        .collect();
    ConjunctiveQuery::boolean("Q", atoms).expect("non-empty atom list")
}

fn witness_free() -> DecideOptions {
    DecideOptions {
        extract_witness: false,
        ..DecideOptions::default()
    }
}

fn decide_traced(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Decision {
    decide_containment_traced(&mut DecideContext::new(), q1, q2, options)
        .expect("Boolean pairs have matching heads")
}

/// Asserts pipeline/legacy equivalence for one pair under one option set,
/// returning an error string on mismatch (for `prop_assert!`).
fn check_equivalence(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
) -> Result<(), String> {
    let decision = decide_traced(q1, q2, options);
    let legacy = decide_containment_legacy(q1, q2, options).expect("matching heads");
    let pipeline_summary = decision.answer.summary();
    let legacy_summary = legacy.summary();
    if decision.trace.decided_by() == Some("counting-refuter") {
        // Inside the decidable class a count separation and a failed Γ_n
        // check are the same verdict (Theorem 3.1), so legacy must also say
        // NotContained; the witness flag may only be *upgraded* (the
        // refuter's witness always verifies, the legacy budgeted extraction
        // may fail).
        if !legacy_summary.is_not_contained() {
            return Err(format!(
                "refuter decided NotContained but legacy said {legacy_summary} \
                 for {q1} vs {q2}"
            ));
        }
        if options.extract_witness {
            if pipeline_summary
                != (AnswerSummary::NotContained {
                    witness_verified: true,
                })
            {
                return Err(format!(
                    "refuter-decided answer must carry a verified witness, \
                     got {pipeline_summary} for {q1} vs {q2}"
                ));
            }
        } else if pipeline_summary != legacy_summary {
            return Err(format!(
                "witness-free summaries diverge: pipeline {pipeline_summary}, \
                 legacy {legacy_summary} for {q1} vs {q2}"
            ));
        }
        return Ok(());
    }
    if pipeline_summary != legacy_summary {
        return Err(format!(
            "summaries diverge: pipeline {pipeline_summary}, legacy {legacy_summary} \
             for {q1} vs {q2}"
        ));
    }
    // Witness presence (not just the summary flag) must match too.
    let pipeline_witness = matches!(
        &decision.answer,
        ContainmentAnswer::NotContained {
            witness: Some(_),
            ..
        }
    );
    let legacy_witness = matches!(
        &legacy,
        ContainmentAnswer::NotContained {
            witness: Some(_),
            ..
        }
    );
    if pipeline_witness != legacy_witness {
        return Err(format!(
            "witness presence diverges (pipeline {pipeline_witness}, legacy \
             {legacy_witness}) for {q1} vs {q2}"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipeline verdicts equal the pre-refactor procedure's on random pairs,
    /// with and without witness extraction.
    #[test]
    fn pipeline_matches_legacy_on_random_pairs(
        seed1 in 0u64..100_000,
        seed2 in 0u64..100_000,
    ) {
        let q1 = random_boolean_query(4, 4, seed1);
        let q2 = random_boolean_query(4, 4, seed2.wrapping_add(0x9e37));
        for options in [witness_free(), DecideOptions::default()] {
            if let Err(message) = check_equivalence(&q1, &q2, &options) {
                prop_assert!(false, "{}", message);
            }
        }
    }

    /// The trace signature (stages, statuses) and all notes are identical
    /// across repeated decisions of the same pair — cold context, warm
    /// context, any history.
    #[test]
    fn traces_are_deterministic(
        seed1 in 0u64..100_000,
        seed2 in 0u64..100_000,
    ) {
        let q1 = random_boolean_query(4, 4, seed1);
        let q2 = random_boolean_query(4, 4, seed2.wrapping_add(0x51f1));
        let options = witness_free();
        let cold = decide_traced(&q1, &q2, &options);
        // A warm context that has already decided other pairs (including
        // this one) must reproduce the same stage sequence and notes.
        let mut warm = DecideContext::new();
        let warmup = random_boolean_query(4, 4, seed1 ^ 0xabcd);
        let _ = decide_containment_traced(&mut warm, &warmup, &q2, &options);
        let first = decide_containment_traced(&mut warm, &q1, &q2, &options).unwrap();
        let second = decide_containment_traced(&mut warm, &q1, &q2, &options).unwrap();
        prop_assert_eq!(cold.trace.signature(), first.trace.signature());
        prop_assert_eq!(first.trace.signature(), second.trace.signature());
        let notes = |d: &Decision| -> Vec<Option<String>> {
            d.trace.reports().iter().map(|r| r.note.clone()).collect()
        };
        prop_assert_eq!(notes(&cold), notes(&first));
        prop_assert_eq!(notes(&first), notes(&second));
        // And the verdicts agree with the trace determinism.
        prop_assert_eq!(cold.answer.summary(), second.answer.summary());
    }
}

/// The hand-written corpus: every pipeline branch, compared exactly.
#[test]
fn pipeline_matches_legacy_on_the_corpus() {
    let corpus = [
        // shannon-lp contained (Example 4.3).
        ("Q1() :- R(x,y), R(y,z), R(z,x)", "Q2() :- R(u,v), R(u,w)"),
        // hom-existence refutation.
        ("Q1() :- R(u,v), R(u,w)", "Q2() :- R(x,y), R(y,z), R(z,x)"),
        ("Q1() :- R(x,y)", "Q2() :- S(u,v)"),
        // identity (exact and reordered).
        ("Q() :- R(x,y), S(y,z)", "Q() :- R(x,y), S(y,z)"),
        ("Q() :- R(x,y), S(y,z)", "Q() :- S(y,z), R(x,y)"),
        // counting-refuter refutation (Example 3.5).
        (
            "Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')",
            "Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)",
        ),
        // LP-refuted, witness via Theorem 3.1 (refuter disabled below too).
        ("Q1() :- R(x,y), S(y,x)", "Q2() :- R(u,v), S(v,w)"),
        // Non-chordal containing query, contained via single-bag (Theorem 4.2).
        (
            "Q1() :- R(x,y), R(y,z), R(z,w), R(w,x), R(x,z)",
            "Q2() :- R(a,b), R(b,c), R(c,d), R(d,a)",
        ),
        // Non-chordal, undecided.
        (
            "Q1() :- R(a,b), R(b,c), R(c,d), R(d,a), S(u,v)",
            "Q2() :- R(p,q), R(q,r), R(r,s), R(s,p)",
        ),
        // Non-Boolean pair (Lemma A.1 reduction).
        (
            "Q1(x, z) :- P(x), S(u, x), S(v, z), R(z)",
            "Q2(x, z) :- P(x), S(u, y), S(v, y), R(z)",
        ),
    ];
    let lp_only = DecideOptions {
        counting_refuter: false,
        ..DecideOptions::default()
    };
    for (t1, t2) in corpus {
        let q1 = parse_query(t1).unwrap();
        let q2 = parse_query(t2).unwrap();
        for options in [witness_free(), DecideOptions::default(), lp_only.clone()] {
            check_equivalence(&q1, &q2, &options)
                .unwrap_or_else(|message| panic!("{message} (options {options:?})"));
        }
    }
}

/// With the counting refuter disabled the pipeline takes exactly the legacy
/// LP path, so summaries are bit-identical even on refuter-friendly pairs.
#[test]
fn refuter_disabled_reproduces_legacy_exactly() {
    let options = DecideOptions {
        counting_refuter: false,
        ..DecideOptions::default()
    };
    for seed in 0..40u64 {
        let q1 = random_boolean_query(4, 4, seed);
        let q2 = random_boolean_query(4, 4, seed.wrapping_mul(0x2545_f491));
        let decision = decide_traced(&q1, &q2, &options);
        assert_ne!(decision.trace.decided_by(), Some("counting-refuter"));
        let legacy = decide_containment_legacy(&q1, &q2, &options).unwrap();
        assert_eq!(decision.answer.summary(), legacy.summary(), "{q1} vs {q2}");
    }
}

/// Regression (PR 5 bugfix): the non-chordal single-bag fallback used to
/// discard the violating polymatroid of the failed Γ_n check; the pipeline
/// returns it, and it is a genuine polymatroid.
#[test]
fn non_chordal_unknown_carries_the_violating_polymatroid() {
    // Q2 is a 4-cycle (not chordal); Q1 embeds it but has two extra
    // variables no homomorphism covers, so the single-bag sufficient check
    // fails and the instance is undecided.
    let q1 = parse_query("Q1() :- R(a,b), R(b,c), R(c,d), R(d,a), S(u,v)").unwrap();
    let q2 = parse_query("Q2() :- R(p,q), R(q,r), R(r,s), R(s,p)").unwrap();
    let answer = decide_containment_with(&q1, &q2, &DecideOptions::default()).unwrap();
    match &answer {
        ContainmentAnswer::Unknown {
            obstruction,
            counterexample,
        } => {
            assert_eq!(obstruction.to_string(), "containing query is not chordal");
            let counterexample = counterexample
                .as_ref()
                .expect("the violating polymatroid must be returned, not discarded");
            assert!(is_polymatroid(counterexample));
        }
        other => panic!("expected Unknown, got {other:?}"),
    }
    // The legacy oracle preserves the old behaviour (polymatroid dropped) —
    // the verdict is unchanged, only the payload was upgraded.
    let legacy = decide_containment_legacy(&q1, &q2, &DecideOptions::default()).unwrap();
    match &legacy {
        ContainmentAnswer::Unknown { counterexample, .. } => assert!(counterexample.is_none()),
        other => panic!("expected Unknown from legacy, got {other:?}"),
    }
    assert_eq!(answer.summary(), legacy.summary());
}
