//! Differential properties of the counting oracle against the decision
//! pipeline: on random conjunctive-query pairs — acyclic and cyclic, headed
//! and Boolean — every verdict must be consistent with explicit
//! homomorphism counts over small domains, with the counting refuter both
//! enabled and disabled.
//!
//! This is the in-tree, property-test-sized sibling of `bqc fuzz`: the
//! fuzzer runs millions of engine-scale pairs out of band, these properties
//! run on every `cargo test` and shrink naturally with the seed space.

use bqc_core::oracle::{check_answer, checked_count, count_violation, replay_witness};
use bqc_core::{
    decide_containment_with, exhaustive_containment_check, ContainmentAnswer, DecideOptions,
};
use bqc_relational::{Atom, ConjunctiveQuery, Structure, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random Boolean conjunctive query, deterministic in `seed` — same
/// vocabulary and shape as the pipeline-equivalence suite, so the two
/// property suites explore the same pair space from different angles.
fn random_boolean_query(max_vars: usize, max_atoms: usize, seed: u64) -> ConjunctiveQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..max_vars + 1);
    let atom_count = rng.gen_range(1..max_atoms + 1);
    let relations: [(&str, usize); 3] = [("R", 2), ("S", 2), ("U", 1)];
    let atoms: Vec<Atom> = (0..atom_count)
        .map(|_| {
            let (relation, arity) = relations[rng.gen_range(0..relations.len())];
            let args: Vec<String> = (0..arity)
                .map(|_| format!("x{}", rng.gen_range(0..n)))
                .collect();
            Atom::new(relation, args)
        })
        .collect();
    ConjunctiveQuery::boolean("Q", atoms).expect("non-empty atom list")
}

/// Gives a Boolean query a one-variable head, exercising the Lemma A.1
/// reduction and the oracle's pointwise per-head-tuple counting.
fn with_head(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        q.name.clone(),
        vec![q.vars()[0].clone()],
        q.atoms().to_vec(),
    )
    .expect("first variable occurs in the body")
}

/// A small in-test database family: the canonical databases plus seeded
/// random structures over 2- and 3-element domains (the bench crate's
/// family generator cannot be used here — bench depends on core).
fn small_family(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    seed: u64,
) -> Vec<(String, Structure)> {
    let mut family = vec![
        ("canonical(Q1)".to_string(), q1.canonical_structure()),
        ("canonical(Q2)".to_string(), q2.canonical_structure()),
    ];
    let mut vocabulary = q1.vocabulary();
    vocabulary.merge(&q2.vocabulary());
    let mut rng = StdRng::seed_from_u64(seed);
    for domain in 2..=3usize {
        let mut structure = Structure::new(vocabulary.clone());
        for value in 0..domain {
            structure.add_domain_value(Value::int(value as i64));
        }
        for symbol in vocabulary.symbols() {
            let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
            for _ in 0..symbol.arity {
                let mut next = Vec::new();
                for prefix in &tuples {
                    for v in 0..domain {
                        let mut t = prefix.clone();
                        t.push(Value::int(v as i64));
                        next.push(t);
                    }
                }
                tuples = next;
            }
            for tuple in tuples {
                if rng.gen_bool(0.5) {
                    structure.add_fact(&symbol.name, tuple);
                }
            }
        }
        family.push((format!("random(domain={domain})"), structure));
    }
    family
}

/// One full differential check of a pair under one option set.
fn check_pair(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    options: &DecideOptions,
    seed: u64,
) -> Result<(), String> {
    let answer = decide_containment_with(q1, q2, options)
        .map_err(|e| format!("decision error for {q1} vs {q2}: {e}"))?;
    let family = small_family(q1, q2, seed);
    let report = check_answer(q1, q2, &answer, &family);
    if !report.ok() {
        return Err(format!(
            "oracle discrepancies for {q1} vs {q2} ({answer}): {:?}",
            report.discrepancies
        ));
    }
    // Ground truth by exhaustion: a `Contained` verdict must survive every
    // database over a 2-element domain, not just the generated family.
    if answer.is_contained() {
        if let Err(db) = exhaustive_containment_check(q1, q2, 2) {
            return Err(format!(
                "Contained verdict for {q1} vs {q2} refuted exhaustively on {db}"
            ));
        }
    }
    // A materialized witness must replay through the oracle's independent
    // counters exactly.
    if let ContainmentAnswer::NotContained {
        witness: Some(witness),
        ..
    } = &answer
    {
        replay_witness(q1, q2, witness).map_err(|d| format!("{q1} vs {q2}: {d}"))?;
    }
    Ok(())
}

fn refuter_off() -> DecideOptions {
    DecideOptions {
        counting_refuter: false,
        ..DecideOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Boolean pairs (cyclic and acyclic both arise from the generator):
    /// verdicts are count-consistent with the refuter on and off, and the
    /// two option sets never contradict each other.
    #[test]
    fn random_boolean_pairs_are_count_consistent(
        seed1 in 0u64..100_000,
        seed2 in 0u64..100_000,
    ) {
        let q1 = random_boolean_query(4, 4, seed1);
        let q2 = random_boolean_query(4, 4, seed2.wrapping_add(0x0dd5));
        for options in [DecideOptions::default(), refuter_off()] {
            if let Err(message) = check_pair(&q1, &q2, &options, seed1 ^ seed2) {
                prop_assert!(false, "{}", message);
            }
        }
        // Definite verdicts agree across the refuter toggle (the refuter
        // only ever converts would-be-unknowns/LP work into refutations,
        // never flips a definite verdict).
        let on = decide_containment_with(&q1, &q2, &DecideOptions::default()).unwrap();
        let off = decide_containment_with(&q1, &q2, &refuter_off()).unwrap();
        if !on.is_unknown() && !off.is_unknown() {
            prop_assert_eq!(
                on.is_contained(),
                off.is_contained(),
                "refuter toggle flipped {} vs {}", q1, q2
            );
        }
    }

    /// Headed pairs: the oracle counts pointwise per head tuple, so this
    /// exercises the Lemma A.1 Boolean reduction end to end.
    #[test]
    fn random_headed_pairs_are_count_consistent(
        seed1 in 0u64..100_000,
        seed2 in 0u64..100_000,
    ) {
        let q1 = with_head(&random_boolean_query(3, 3, seed1));
        let q2 = with_head(&random_boolean_query(3, 3, seed2.wrapping_add(0x0dd5)));
        if let Err(message) = check_pair(&q1, &q2, &DecideOptions::default(), seed1 ^ seed2) {
            prop_assert!(false, "{}", message);
        }
    }

    /// The consensus counters themselves agree on random query/database
    /// pairs (backtracking vs Yannakakis DP vs naive enumeration) — the
    /// oracle's own foundation, checked independently of any verdict.
    #[test]
    fn consensus_counters_agree(seed in 0u64..100_000) {
        let q = random_boolean_query(4, 4, seed);
        let other = random_boolean_query(4, 4, seed.wrapping_mul(0x2545_f491));
        for (label, db) in small_family(&q, &other, seed) {
            if let Err(d) = checked_count(&q, &db) {
                prop_assert!(false, "counter disagreement on {} for {}: {}", label, q, d);
            }
        }
    }
}

/// A deliberately wrong verdict is caught: feeding the oracle `Contained`
/// for a pair the family separates must produce a discrepancy.  This is the
/// unit-sized version of `bqc fuzz --self-test`.
#[test]
fn oracle_catches_a_lying_verdict() {
    use bqc_core::oracle::{check_summary, Discrepancy};
    use bqc_core::AnswerSummary;
    let q1 = bqc_relational::parse_query("Q1() :- R(u,v), R(u,w)").unwrap();
    let q2 = bqc_relational::parse_query("Q2() :- R(x,y), R(y,z), R(z,x)").unwrap();
    let family = small_family(&q1, &q2, 7);
    let report = check_summary(&q1, &q2, AnswerSummary::Contained, &family);
    assert!(!report.ok(), "a false Contained verdict went unchallenged");
    assert!(report
        .discrepancies
        .iter()
        .any(|d| matches!(d, Discrepancy::ContainedViolated { .. })));
}

/// The exhaustive ground truth and the count-violation primitive agree on a
/// decided corner: star vs triangle separates on a 2-element database, and
/// the violation the exhaustive search finds re-counts identically.
#[test]
fn exhaustive_search_and_count_violation_agree() {
    let q1 = bqc_relational::parse_query("Q1() :- R(u,v), R(u,w)").unwrap();
    let q2 = bqc_relational::parse_query("Q2() :- R(x,y), R(y,z), R(z,x)").unwrap();
    let db = exhaustive_containment_check(&q1, &q2, 2).unwrap_err();
    let violation = count_violation(&q1, &q2, &db)
        .expect("counters agree")
        .expect("exhaustively found database must separate");
    assert!(violation.hom_q1 > violation.hom_q2);
}
