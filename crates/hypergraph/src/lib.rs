//! # bqc-hypergraph — graphs, hypergraphs and tree decompositions
//!
//! The structural side of *Bag Query Containment and Information Theory*
//! (PODS 2020): Gaifman graphs, α-acyclicity (GYO reduction and join trees),
//! chordality (maximum-cardinality search), maximal cliques, junction trees
//! and the two structural restrictions the decision procedure of Theorem 3.1
//! relies on — *simple* and *totally disconnected* tree decompositions.
//!
//! ```
//! use bqc_hypergraph::{Graph, junction_tree};
//!
//! // Example 3.5's containing query has Gaifman graph y1-y2, y1-y3, y2-y4.
//! let mut g = Graph::new();
//! g.add_edge("y1", "y2");
//! g.add_edge("y1", "y3");
//! g.add_edge("y2", "y4");
//! assert!(g.is_chordal());
//! let jt = junction_tree(&g).unwrap();
//! assert!(jt.is_simple());
//! ```

pub mod graph;
pub mod hypergraph;
pub mod treedecomp;

pub use graph::{Graph, Vertex};
pub use hypergraph::Hypergraph;
pub use treedecomp::{junction_tree, maximum_weight_spanning_forest, Bag, TreeDecomposition};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chordal_query_with_simple_junction_tree() {
        // The chain {y1,y3} - {y1,y2} - {y2,y4} from Example 3.5.
        let edges: Vec<BTreeSet<String>> = vec![
            ["y1", "y2"].iter().map(|s| s.to_string()).collect(),
            ["y1", "y3"].iter().map(|s| s.to_string()).collect(),
            ["y2", "y4"].iter().map(|s| s.to_string()).collect(),
        ];
        let h = Hypergraph::new(edges.clone());
        assert!(h.is_alpha_acyclic());
        let graph = h.gaifman_graph();
        let jt = junction_tree(&graph).unwrap();
        assert!(jt.is_simple());
        assert!(jt.is_valid_for(&edges));
    }
}
