//! Hypergraphs and α-acyclicity.
//!
//! A conjunctive query's hypergraph has one hyperedge per atom (the atom's
//! variable set).  The paper's Definition 2.6 calls a query *acyclic* when it
//! has a tree decomposition whose bags are exactly atom variable sets; this is
//! the classic α-acyclicity of Fagin \[10\], which this module decides with the
//! GYO (Graham / Yu–Özsoyoğlu) reduction and, independently, by building a
//! join tree with a maximum-weight spanning forest and validating it.

use crate::graph::{Graph, Vertex};
use crate::treedecomp::{maximum_weight_spanning_forest, TreeDecomposition};
use std::collections::BTreeSet;
use std::fmt;

/// A hypergraph over string vertices: a list of hyperedges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hypergraph {
    edges: Vec<BTreeSet<Vertex>>,
}

impl Hypergraph {
    /// Creates a hypergraph from hyperedges (empty edges are dropped).
    pub fn new(edges: Vec<BTreeSet<Vertex>>) -> Hypergraph {
        Hypergraph {
            edges: edges.into_iter().filter(|e| !e.is_empty()).collect(),
        }
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<Vertex>] {
        &self.edges
    }

    /// All vertices.
    pub fn vertices(&self) -> BTreeSet<Vertex> {
        self.edges.iter().flatten().cloned().collect()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The Gaifman (primal) graph: vertices of the hypergraph, an edge between
    /// two vertices whenever they share a hyperedge.
    pub fn gaifman_graph(&self) -> Graph {
        let mut graph = Graph::from_cliques(self.edges.iter().cloned());
        for v in self.vertices() {
            graph.add_vertex(v);
        }
        graph
    }

    /// GYO reduction: repeatedly (a) remove vertices that occur in exactly one
    /// hyperedge, and (b) remove hyperedges contained in another hyperedge.
    /// The hypergraph is α-acyclic iff the reduction terminates with at most
    /// one (possibly empty) hyperedge.
    pub fn is_alpha_acyclic(&self) -> bool {
        let mut edges: Vec<BTreeSet<Vertex>> = self.edges.clone();
        loop {
            let mut changed = false;

            // (a) Remove isolated vertices (appearing in exactly one edge).
            let mut counts: std::collections::BTreeMap<&Vertex, usize> =
                std::collections::BTreeMap::new();
            for edge in &edges {
                for v in edge {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            let isolated: BTreeSet<Vertex> = counts
                .iter()
                .filter(|(_, &count)| count == 1)
                .map(|(v, _)| (*v).clone())
                .collect();
            if !isolated.is_empty() {
                for edge in &mut edges {
                    let before = edge.len();
                    edge.retain(|v| !isolated.contains(v));
                    if edge.len() != before {
                        changed = true;
                    }
                }
            }

            // (b) Remove edges contained in another edge (and empty edges).
            let mut kept: Vec<BTreeSet<Vertex>> = Vec::new();
            for (i, edge) in edges.iter().enumerate() {
                if edge.is_empty() {
                    changed = true;
                    continue;
                }
                let contained = edges
                    .iter()
                    .enumerate()
                    .any(|(j, other)| i != j && edge.is_subset(other) && (edge != other || j < i));
                if contained {
                    changed = true;
                } else {
                    kept.push(edge.clone());
                }
            }
            edges = kept;

            if edges.len() <= 1 {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// Builds a join tree: a tree decomposition whose bags are exactly the
    /// hyperedges.  Returns `None` when the hypergraph is not α-acyclic.
    pub fn join_tree(&self) -> Option<TreeDecomposition> {
        if self.edges.is_empty() {
            return Some(TreeDecomposition::new(Vec::new(), Vec::new()));
        }
        let td = maximum_weight_spanning_forest(self.edges.clone());
        if td.has_running_intersection() {
            Some(td)
        } else {
            None
        }
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for edge in &self.edges {
            write!(f, "{{")?;
            for (i, v) in edge.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}} ")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(items: &[&str]) -> BTreeSet<Vertex> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn path_is_acyclic() {
        let h = Hypergraph::new(vec![
            edge(&["x", "y"]),
            edge(&["y", "z"]),
            edge(&["z", "w"]),
        ]);
        assert!(h.is_alpha_acyclic());
        let jt = h.join_tree().unwrap();
        assert!(jt.is_valid_for(h.edges()));
        assert_eq!(jt.num_nodes(), 3);
    }

    #[test]
    fn triangle_of_binary_edges_is_cyclic() {
        let h = Hypergraph::new(vec![
            edge(&["x", "y"]),
            edge(&["y", "z"]),
            edge(&["z", "x"]),
        ]);
        assert!(!h.is_alpha_acyclic());
        assert!(h.join_tree().is_none());
    }

    #[test]
    fn triangle_covered_by_ternary_edge_is_acyclic() {
        // α-acyclicity is not hereditary: adding the big edge makes it acyclic.
        let h = Hypergraph::new(vec![
            edge(&["x", "y"]),
            edge(&["y", "z"]),
            edge(&["z", "x"]),
            edge(&["x", "y", "z"]),
        ]);
        assert!(h.is_alpha_acyclic());
        let jt = h.join_tree().unwrap();
        assert!(jt.is_valid_for(h.edges()));
    }

    #[test]
    fn star_and_single_edges() {
        let star = Hypergraph::new(vec![
            edge(&["c", "a"]),
            edge(&["c", "b"]),
            edge(&["c", "d"]),
        ]);
        assert!(star.is_alpha_acyclic());
        let single = Hypergraph::new(vec![edge(&["x", "y", "z"])]);
        assert!(single.is_alpha_acyclic());
        let empty = Hypergraph::new(vec![]);
        assert!(empty.is_alpha_acyclic());
        assert_eq!(empty.join_tree().unwrap().num_nodes(), 0);
    }

    #[test]
    fn disconnected_hypergraph() {
        let h = Hypergraph::new(vec![edge(&["a", "b"]), edge(&["c", "d"])]);
        assert!(h.is_alpha_acyclic());
        let jt = h.join_tree().unwrap();
        assert!(jt.edges().is_empty());
        assert!(jt.is_totally_disconnected());
    }

    #[test]
    fn cyclic_example_from_example_5_2() {
        // Q2 of Example 5.2 is acyclic: S1(U1) S2(U2) S3(U3) S4(U4),
        // R0(Y0...), R1(Y0,Y1...), R2(Y1,Y2...) form a chain plus isolated unary edges.
        let h = Hypergraph::new(vec![
            edge(&["u1"]),
            edge(&["u2"]),
            edge(&["u3"]),
            edge(&["u4"]),
            edge(&["y01", "y02", "y03"]),
            edge(&["y01", "y02", "y11", "y12", "y13"]),
            edge(&["y12", "y13", "y21", "y22", "y23"]),
        ]);
        assert!(h.is_alpha_acyclic());
        let jt = h.join_tree().unwrap();
        assert!(jt.is_valid_for(h.edges()));
    }

    #[test]
    fn gaifman_graph_is_primal_graph() {
        let h = Hypergraph::new(vec![edge(&["x", "y", "z"]), edge(&["z", "w"])]);
        let g = h.gaifman_graph();
        assert!(g.has_edge("x", "y"));
        assert!(g.has_edge("z", "w"));
        assert!(!g.has_edge("x", "w"));
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn duplicate_edges_do_not_break_acyclicity() {
        let h = Hypergraph::new(vec![
            edge(&["x", "y"]),
            edge(&["x", "y"]),
            edge(&["y", "z"]),
        ]);
        assert!(h.is_alpha_acyclic());
    }

    #[test]
    fn display() {
        let h = Hypergraph::new(vec![edge(&["a", "b"])]);
        assert_eq!(h.to_string().trim(), "{a,b}");
    }
}
