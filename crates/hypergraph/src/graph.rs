//! Undirected graphs over string-named vertices.
//!
//! The graphs handled here are Gaifman graphs of conjunctive queries: a vertex
//! per query variable and an edge between two variables whenever they co-occur
//! in an atom.  The operations the paper needs are chordality testing (via
//! maximum-cardinality search and perfect elimination orderings), maximal
//! cliques of chordal graphs, and connected components.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Vertex identifier (a variable name).
pub type Vertex = String;

/// A finite simple undirected graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: BTreeMap<Vertex, BTreeSet<Vertex>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Adds an isolated vertex (no-op if already present).
    pub fn add_vertex(&mut self, v: impl Into<Vertex>) {
        self.adjacency.entry(v.into()).or_default();
    }

    /// Adds an undirected edge, creating the endpoints if necessary.
    /// Self-loops are ignored (Gaifman graphs are simple).
    pub fn add_edge(&mut self, a: impl Into<Vertex>, b: impl Into<Vertex>) {
        let a = a.into();
        let b = b.into();
        if a == b {
            self.add_vertex(a);
            return;
        }
        self.adjacency
            .entry(a.clone())
            .or_default()
            .insert(b.clone());
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Builds a graph from a list of cliques (e.g. atom variable sets): every
    /// pair of vertices inside the same clique becomes an edge.
    pub fn from_cliques<I, S>(cliques: I) -> Graph
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = Vertex>,
    {
        let mut graph = Graph::new();
        for clique in cliques {
            let members: Vec<Vertex> = clique.into_iter().collect();
            for v in &members {
                graph.add_vertex(v.clone());
            }
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    graph.add_edge(members[i].clone(), members[j].clone());
                }
            }
        }
        graph
    }

    /// The vertices, in lexicographic order.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex> {
        self.adjacency.keys()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Neighbours of a vertex (empty if the vertex is unknown).
    pub fn neighbors(&self, v: &str) -> BTreeSet<Vertex> {
        self.adjacency.get(v).cloned().unwrap_or_default()
    }

    /// `true` iff the edge `{a, b}` exists.
    pub fn has_edge(&self, a: &str, b: &str) -> bool {
        self.adjacency.get(a).is_some_and(|n| n.contains(b))
    }

    /// `true` iff every pair of distinct vertices in `set` is adjacent.
    pub fn is_clique(&self, set: &BTreeSet<Vertex>) -> bool {
        let members: Vec<&Vertex> = set.iter().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !self.has_edge(members[i], members[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Connected components, each as a set of vertices.
    pub fn connected_components(&self) -> Vec<BTreeSet<Vertex>> {
        let mut seen: BTreeSet<&Vertex> = BTreeSet::new();
        let mut components = Vec::new();
        for start in self.adjacency.keys() {
            if seen.contains(start) {
                continue;
            }
            let mut component = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                if !seen.insert(v) {
                    continue;
                }
                component.insert(v.clone());
                for n in &self.adjacency[v] {
                    if !seen.contains(n) {
                        stack.push(n);
                    }
                }
            }
            components.push(component);
        }
        components
    }

    /// Maximum-cardinality search: returns a visit order `v_1, …, v_n` where
    /// each `v_i` maximizes the number of already-visited neighbours.  The
    /// reverse of this order is a perfect elimination ordering iff the graph
    /// is chordal.
    pub fn maximum_cardinality_search(&self) -> Vec<Vertex> {
        let mut weight: BTreeMap<&Vertex, usize> = self.adjacency.keys().map(|v| (v, 0)).collect();
        let mut visited: BTreeSet<&Vertex> = BTreeSet::new();
        let mut order = Vec::with_capacity(self.adjacency.len());
        while visited.len() < self.adjacency.len() {
            let chosen: &Vertex = weight
                .iter()
                .filter(|(v, _)| !visited.contains(*v))
                .max_by(|(v1, w1), (v2, w2)| w1.cmp(w2).then(v2.cmp(v1)))
                .map(|(v, _)| *v)
                .expect("unvisited vertex exists");
            visited.insert(chosen);
            order.push(chosen.clone());
            for n in &self.adjacency[chosen] {
                if !visited.contains(n) {
                    *weight.get_mut(n).expect("neighbor is a vertex") += 1;
                }
            }
        }
        order
    }

    /// Chordality test: the graph is chordal iff for every vertex `v` (in MCS
    /// visit order) its already-visited neighbours form a clique once the
    /// latest-visited such neighbour is removed — equivalently, the
    /// already-visited neighbourhood of `v` is contained in the closed
    /// neighbourhood of its "parent".
    pub fn is_chordal(&self) -> bool {
        let order = self.maximum_cardinality_search();
        for (i, v) in order.iter().enumerate() {
            // Neighbours of v that were visited before v, in visit order.
            let prior: Vec<&Vertex> = order[..i].iter().filter(|u| self.has_edge(v, u)).collect();
            if prior.len() <= 1 {
                continue;
            }
            let parent = *prior.last().expect("non-empty prior neighbourhood");
            for u in &prior[..prior.len() - 1] {
                if !self.has_edge(u, parent) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximal cliques of a **chordal** graph, computed from the MCS order:
    /// each vertex contributes the clique `{v} ∪ (earlier neighbours)`, and
    /// cliques contained in another are dropped.
    ///
    /// Returns `None` if the graph is not chordal.
    pub fn maximal_cliques_chordal(&self) -> Option<Vec<BTreeSet<Vertex>>> {
        if !self.is_chordal() {
            return None;
        }
        let order = self.maximum_cardinality_search();
        let mut candidates: Vec<BTreeSet<Vertex>> = Vec::new();
        for (i, v) in order.iter().enumerate() {
            let mut clique: BTreeSet<Vertex> = order[..i]
                .iter()
                .filter(|u| self.has_edge(v, u))
                .cloned()
                .collect();
            clique.insert(v.clone());
            candidates.push(clique);
        }
        let mut maximal: Vec<BTreeSet<Vertex>> = Vec::new();
        for candidate in &candidates {
            let contained = candidates
                .iter()
                .any(|other| other != candidate && candidate.is_subset(other));
            let duplicate = maximal.iter().any(|m| m == candidate);
            if !contained && !duplicate {
                maximal.push(candidate.clone());
            }
        }
        Some(maximal)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, neighbors) in &self.adjacency {
            write!(f, "{v}:")?;
            for n in neighbors {
                write!(f, " {n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<Vertex> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_edge(format!("v{i}"), format!("v{}", (i + 1) % n));
        }
        g
    }

    #[test]
    fn basic_accessors() {
        let mut g = Graph::new();
        g.add_edge("a", "b");
        g.add_edge("b", "c");
        g.add_vertex("d");
        g.add_edge("a", "a"); // ignored self loop
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge("a", "b"));
        assert!(g.has_edge("b", "a"));
        assert!(!g.has_edge("a", "c"));
        assert_eq!(g.neighbors("b"), set(&["a", "c"]));
        assert_eq!(g.neighbors("zzz"), BTreeSet::new());
    }

    #[test]
    fn from_cliques_builds_gaifman_graph() {
        let g = Graph::from_cliques(vec![set(&["x", "y", "z"]), set(&["z", "w"])]);
        assert!(g.has_edge("x", "y"));
        assert!(g.has_edge("y", "z"));
        assert!(g.has_edge("z", "w"));
        assert!(!g.has_edge("x", "w"));
        assert!(g.is_clique(&set(&["x", "y", "z"])));
        assert!(!g.is_clique(&set(&["x", "y", "w"])));
    }

    #[test]
    fn connected_components() {
        let mut g = cycle(3);
        g.add_edge("a", "b");
        g.add_vertex("solo");
        let components = g.connected_components();
        assert_eq!(components.len(), 3);
        let sizes: Vec<usize> = components.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn chordality_of_cycles() {
        // Triangles are chordal; longer cycles are not.
        assert!(cycle(3).is_chordal());
        assert!(!cycle(4).is_chordal());
        assert!(!cycle(5).is_chordal());
        assert!(!cycle(6).is_chordal());
    }

    #[test]
    fn chordality_of_trees_and_completes() {
        // Every tree is chordal.
        let mut tree = Graph::new();
        tree.add_edge("r", "a");
        tree.add_edge("r", "b");
        tree.add_edge("a", "c");
        tree.add_edge("a", "d");
        assert!(tree.is_chordal());
        // Complete graphs are chordal.
        let complete = Graph::from_cliques(vec![set(&["1", "2", "3", "4", "5"])]);
        assert!(complete.is_chordal());
        // A 4-cycle plus one chord is chordal.
        let mut squared = cycle(4);
        squared.add_edge("v0", "v2");
        assert!(squared.is_chordal());
    }

    #[test]
    fn empty_and_single_vertex_graphs_are_chordal() {
        assert!(Graph::new().is_chordal());
        let mut g = Graph::new();
        g.add_vertex("x");
        assert!(g.is_chordal());
    }

    #[test]
    fn mcs_visits_every_vertex_once() {
        let g = cycle(5);
        let order = g.maximum_cardinality_search();
        assert_eq!(order.len(), 5);
        let distinct: BTreeSet<&Vertex> = order.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn maximal_cliques_of_chordal_graphs() {
        // Path a-b-c: maximal cliques {a,b}, {b,c}.
        let mut path = Graph::new();
        path.add_edge("a", "b");
        path.add_edge("b", "c");
        let cliques = path.maximal_cliques_chordal().unwrap();
        assert_eq!(cliques.len(), 2);
        assert!(cliques.contains(&set(&["a", "b"])));
        assert!(cliques.contains(&set(&["b", "c"])));

        // Triangle with a pendant: cliques {a,b,c}, {c,d}.
        let mut g = Graph::from_cliques(vec![set(&["a", "b", "c"])]);
        g.add_edge("c", "d");
        let cliques = g.maximal_cliques_chordal().unwrap();
        assert_eq!(cliques.len(), 2);
        assert!(cliques.contains(&set(&["a", "b", "c"])));
        assert!(cliques.contains(&set(&["c", "d"])));

        // Non-chordal graphs return None.
        assert!(cycle(4).maximal_cliques_chordal().is_none());
    }

    #[test]
    fn maximal_cliques_cover_all_edges() {
        let mut g = Graph::from_cliques(vec![set(&["a", "b", "c"]), set(&["c", "d", "e"])]);
        g.add_edge("e", "f");
        let cliques = g.maximal_cliques_chordal().unwrap();
        for (a, b) in [
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("d", "e"),
            ("e", "f"),
            ("a", "c"),
            ("c", "e"),
        ] {
            assert!(
                cliques.iter().any(|c| c.contains(a) && c.contains(b)),
                "edge ({a},{b}) not covered by any clique"
            );
        }
    }

    #[test]
    fn display_renders_adjacency() {
        let mut g = Graph::new();
        g.add_edge("a", "b");
        let text = g.to_string();
        assert!(text.contains("a: b"));
    }
}
