//! Tree decompositions, junction trees and join trees.
//!
//! Definition 2.6 of the paper: a tree decomposition of a query `Q` is a
//! forest `T` together with a bag `χ(t) ⊆ vars(Q)` per node such that (a) for
//! every variable the nodes whose bags contain it form a connected subtree
//! (*running intersection*), and (b) every atom's variables are contained in
//! some bag (*coverage*).  A *junction tree* is a tree decomposition whose
//! bags are exactly the maximal cliques of the Gaifman graph; it exists iff
//! the graph is chordal.  A decomposition is *simple* when adjacent bags share
//! at most one variable, and *totally disconnected* when they share none.

use crate::graph::{Graph, Vertex};
use std::collections::BTreeSet;
use std::fmt;

/// A bag of a tree decomposition: a set of variables.
pub type Bag = BTreeSet<Vertex>;

/// A tree decomposition (in general a forest) with explicit bags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<Bag>,
    /// Undirected forest edges between bag indices.
    edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Creates a decomposition from bags and forest edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a non-existent bag, or if the edges do not
    /// form a forest (i.e. they contain a cycle).
    pub fn new(bags: Vec<Bag>, edges: Vec<(usize, usize)>) -> TreeDecomposition {
        for &(a, b) in &edges {
            assert!(
                a < bags.len() && b < bags.len(),
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edge in tree decomposition");
        }
        let td = TreeDecomposition { bags, edges };
        assert!(td.is_forest(), "tree decomposition edges contain a cycle");
        td
    }

    /// A decomposition with a single bag and no edges.
    pub fn single_bag(bag: Bag) -> TreeDecomposition {
        TreeDecomposition {
            bags: vec![bag],
            edges: Vec::new(),
        }
    }

    /// The bags.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// The forest edges (pairs of bag indices).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// The union of all bags.
    pub fn all_vertices(&self) -> BTreeSet<Vertex> {
        self.bags.iter().flatten().cloned().collect()
    }

    /// Width of the decomposition (largest bag size minus one).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    fn is_forest(&self) -> bool {
        // A graph is a forest iff every connected component has |E| = |V| - 1,
        // equivalently no DFS back edge.
        let adj = self.adjacency();
        let mut seen = vec![false; self.bags.len()];
        for start in 0..self.bags.len() {
            if seen[start] {
                continue;
            }
            let mut stack = vec![(start, usize::MAX)];
            seen[start] = true;
            let mut edges_in_component = 0usize;
            let mut nodes_in_component = 0usize;
            while let Some((node, parent)) = stack.pop() {
                nodes_in_component += 1;
                for &next in &adj[node] {
                    edges_in_component += 1;
                    if next == parent {
                        continue;
                    }
                    if seen[next] {
                        return false;
                    }
                    seen[next] = true;
                    stack.push((next, node));
                }
            }
            // Each undirected edge inside the component is counted twice.
            if edges_in_component / 2 != nodes_in_component - 1 {
                return false;
            }
        }
        true
    }

    /// Checks the running-intersection property: for every vertex, the bags
    /// containing it induce a connected subgraph of the forest.
    pub fn has_running_intersection(&self) -> bool {
        let adj = self.adjacency();
        let vertices = self.all_vertices();
        for vertex in &vertices {
            let holders: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].contains(vertex))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(node) = stack.pop() {
                for &next in &adj[node] {
                    if holder_set.contains(&next) && seen.insert(next) {
                        stack.push(next);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }

    /// Checks the coverage property with respect to a set of hyperedges (atom
    /// variable sets): every hyperedge must be contained in some bag.
    pub fn covers(&self, hyperedges: &[BTreeSet<Vertex>]) -> bool {
        hyperedges
            .iter()
            .all(|e| self.bags.iter().any(|bag| e.is_subset(bag)))
    }

    /// `true` iff this is a valid tree decomposition for the given hyperedges.
    pub fn is_valid_for(&self, hyperedges: &[BTreeSet<Vertex>]) -> bool {
        self.has_running_intersection() && self.covers(hyperedges)
    }

    /// A decomposition is *simple* when every pair of adjacent bags shares at
    /// most one vertex (Section 3.1).
    pub fn is_simple(&self) -> bool {
        self.edges
            .iter()
            .all(|&(a, b)| self.bags[a].intersection(&self.bags[b]).count() <= 1)
    }

    /// A decomposition is *totally disconnected* when adjacent bags share no
    /// vertex; equivalently (footnote 5) all its edges can be removed.
    pub fn is_totally_disconnected(&self) -> bool {
        self.edges
            .iter()
            .all(|&(a, b)| self.bags[a].intersection(&self.bags[b]).count() == 0)
    }

    /// The separator (bag intersection) of a forest edge.
    pub fn separator(&self, edge: (usize, usize)) -> BTreeSet<Vertex> {
        self.bags[edge.0]
            .intersection(&self.bags[edge.1])
            .cloned()
            .collect()
    }

    /// Roots every connected component at its smallest node index and returns
    /// the parent of each node (`None` for roots).  The paper's expression
    /// `E_T` (Eq. 7) is independent of this choice.
    pub fn rooted(&self) -> Vec<Option<usize>> {
        let adj = self.adjacency();
        let mut parent: Vec<Option<usize>> = vec![None; self.bags.len()];
        let mut seen = vec![false; self.bags.len()];
        for start in 0..self.bags.len() {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                for &next in &adj[node] {
                    if !seen[next] {
                        seen[next] = true;
                        parent[next] = Some(node);
                        stack.push(next);
                    }
                }
            }
        }
        parent
    }

    /// Returns a topological order of the rooted forest: every node appears
    /// after its parent.
    pub fn topological_order(&self) -> Vec<usize> {
        let parent = self.rooted();
        let mut order: Vec<usize> = Vec::with_capacity(self.bags.len());
        let mut placed = vec![false; self.bags.len()];
        // Repeatedly place nodes whose parent is already placed.
        while order.len() < self.bags.len() {
            let before = order.len();
            for node in 0..self.bags.len() {
                if placed[node] {
                    continue;
                }
                match parent[node] {
                    None => {
                        placed[node] = true;
                        order.push(node);
                    }
                    Some(p) if placed[p] => {
                        placed[node] = true;
                        order.push(node);
                    }
                    _ => {}
                }
            }
            assert!(order.len() > before, "rooted forest must be acyclic");
        }
        order
    }
}

impl fmt::Display for TreeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, bag) in self.bags.iter().enumerate() {
            write!(f, "bag {i}: {{")?;
            for (j, v) in bag.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, "}}")?;
        }
        for &(a, b) in &self.edges {
            writeln!(f, "edge {a} -- {b}")?;
        }
        Ok(())
    }
}

/// Builds a tree (forest) over the given bags by taking a maximum-weight
/// spanning forest of their intersection graph (weight = separator size,
/// only positive-weight edges are used).  For the maximal cliques of a chordal
/// graph, or the atom sets of an acyclic query, this yields a valid
/// decomposition by the classic junction-tree theorem.
pub fn maximum_weight_spanning_forest(bags: Vec<Bag>) -> TreeDecomposition {
    let mut candidate_edges: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..bags.len() {
        for j in (i + 1)..bags.len() {
            let weight = bags[i].intersection(&bags[j]).count();
            if weight > 0 {
                candidate_edges.push((i, j, weight));
            }
        }
    }
    candidate_edges.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));

    // Kruskal with union-find.
    let mut parent: Vec<usize> = (0..bags.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut edges = Vec::new();
    for (i, j, _) in candidate_edges {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
            edges.push((i, j));
        }
    }
    TreeDecomposition::new(bags, edges)
}

/// Computes a junction tree of the graph: bags are the maximal cliques, edges
/// a maximum-weight spanning forest of the clique graph.  Returns `None` when
/// the graph is not chordal.
pub fn junction_tree(graph: &Graph) -> Option<TreeDecomposition> {
    let cliques = graph.maximal_cliques_chordal()?;
    Some(maximum_weight_spanning_forest(cliques))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(items: &[&str]) -> Bag {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn validity_checks() {
        // Path decomposition of a 3-path query R(x,y), S(y,z).
        let td = TreeDecomposition::new(vec![bag(&["x", "y"]), bag(&["y", "z"])], vec![(0, 1)]);
        let hyperedges = vec![bag(&["x", "y"]), bag(&["y", "z"])];
        assert!(td.is_valid_for(&hyperedges));
        assert!(td.is_simple());
        assert!(!td.is_totally_disconnected());
        assert_eq!(td.width(), 1);
        assert_eq!(td.separator((0, 1)), bag(&["y"]));
    }

    #[test]
    fn running_intersection_violation_is_detected() {
        // x appears in bags 0 and 2 but not in the middle bag.
        let td = TreeDecomposition::new(
            vec![bag(&["x", "y"]), bag(&["y", "z"]), bag(&["z", "x"])],
            vec![(0, 1), (1, 2)],
        );
        assert!(!td.has_running_intersection());
    }

    #[test]
    fn coverage_violation_is_detected() {
        let td = TreeDecomposition::new(vec![bag(&["x", "y"])], vec![]);
        assert!(!td.covers(&[bag(&["x", "z"])]));
        assert!(td.covers(&[bag(&["x"]), bag(&["x", "y"])]));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_edges_panic() {
        TreeDecomposition::new(
            vec![bag(&["a"]), bag(&["b"]), bag(&["c"])],
            vec![(0, 1), (1, 2), (2, 0)],
        );
    }

    #[test]
    fn simplicity_and_total_disconnection() {
        let simple = TreeDecomposition::new(
            vec![bag(&["y1", "y3"]), bag(&["y1", "y2"]), bag(&["y2", "y4"])],
            vec![(0, 1), (1, 2)],
        );
        assert!(simple.is_simple());
        assert!(!simple.is_totally_disconnected());

        let not_simple = TreeDecomposition::new(
            vec![bag(&["a", "b", "c"]), bag(&["b", "c", "d"])],
            vec![(0, 1)],
        );
        assert!(!not_simple.is_simple());

        let disconnected = TreeDecomposition::new(vec![bag(&["a", "b"]), bag(&["c", "d"])], vec![]);
        assert!(disconnected.is_totally_disconnected());
        assert!(disconnected.is_simple());
    }

    #[test]
    fn rooting_and_topological_order() {
        let td = TreeDecomposition::new(
            vec![bag(&["a"]), bag(&["a", "b"]), bag(&["b", "c"]), bag(&["d"])],
            vec![(0, 1), (1, 2)],
        );
        let parent = td.rooted();
        assert_eq!(parent[0], None);
        assert_eq!(parent[3], None);
        assert_eq!(parent[1], Some(0));
        assert_eq!(parent[2], Some(1));
        let order = td.topological_order();
        let position: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &node) in order.iter().enumerate() {
                pos[node] = i;
            }
            pos
        };
        for (node, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(position[*p] < position[node]);
            }
        }
    }

    #[test]
    fn junction_tree_of_chordal_graph() {
        // Example 3.5's Q2 has Gaifman graph y1-y2, y1-y3, y2-y4 (a tree).
        let graph = Graph::from_cliques(vec![
            bag(&["y1", "y2"]),
            bag(&["y1", "y3"]),
            bag(&["y2", "y4"]),
        ]);
        let jt = junction_tree(&graph).unwrap();
        assert_eq!(jt.num_nodes(), 3);
        assert!(jt.is_simple());
        assert!(jt.is_valid_for(&[bag(&["y1", "y2"]), bag(&["y1", "y3"]), bag(&["y2", "y4"])]));
    }

    #[test]
    fn junction_tree_of_non_chordal_graph_is_none() {
        let mut graph = Graph::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")] {
            graph.add_edge(a, b);
        }
        assert!(junction_tree(&graph).is_none());
    }

    #[test]
    fn junction_tree_of_two_cliques() {
        // Two triangles sharing an edge: cliques {a,b,c}, {b,c,d}; separator {b,c}.
        let graph = Graph::from_cliques(vec![bag(&["a", "b", "c"]), bag(&["b", "c", "d"])]);
        let jt = junction_tree(&graph).unwrap();
        assert_eq!(jt.num_nodes(), 2);
        assert_eq!(jt.edges().len(), 1);
        assert_eq!(jt.separator(jt.edges()[0]).len(), 2);
        assert!(!jt.is_simple());
        assert!(jt.has_running_intersection());
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let graph = Graph::from_cliques(vec![bag(&["a", "b"]), bag(&["c", "d"])]);
        let jt = junction_tree(&graph).unwrap();
        assert_eq!(jt.num_nodes(), 2);
        assert!(jt.edges().is_empty());
        assert!(jt.is_totally_disconnected());
    }

    #[test]
    fn spanning_forest_respects_running_intersection_for_acyclic_atoms() {
        // Acyclic query atoms: {x,y}, {y,z}, {z,w}.
        let td = maximum_weight_spanning_forest(vec![
            bag(&["x", "y"]),
            bag(&["y", "z"]),
            bag(&["z", "w"]),
        ]);
        assert!(td.has_running_intersection());
        assert_eq!(td.edges().len(), 2);
    }

    #[test]
    fn display_lists_bags_and_edges() {
        let td = TreeDecomposition::new(vec![bag(&["x", "y"]), bag(&["y"])], vec![(0, 1)]);
        let text = td.to_string();
        assert!(text.contains("bag 0: {x,y}"));
        assert!(text.contains("edge 0 -- 1"));
    }
}
