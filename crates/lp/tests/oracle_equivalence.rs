//! The revised simplex against the retained dense oracle.
//!
//! Two independent exact solvers must agree on the *classification*
//! (optimal / infeasible / unbounded) and, when optimal, on the *objective
//! value* of every program — optimal points may legitimately differ when the
//! optimum face has dimension > 0.  The suite covers the classic cycling
//! examples (Beale, Kuhn) that defeat naive Dantzig pricing, plus
//! property-tested random sparse programs in both standard and modelled form.

use bqc_arith::{int, ratio, Rational};
use bqc_lp::oracle::solve_standard_form_dense;
use bqc_lp::{
    solve_standard_form, ConstraintOp, LpProblem, LpStatus, Sense, SimplexOutcome, VarBound,
};
use proptest::prelude::*;

/// Compares the two solvers on one standard-form program.
fn assert_agreement(a: &[Vec<Rational>], b: &[Rational], c: &[Rational]) {
    let revised = solve_standard_form(a, b, c);
    let dense = solve_standard_form_dense(a, b, c);
    match (&revised, &dense) {
        (
            SimplexOutcome::Optimal {
                objective: obj_r,
                solution: sol_r,
            },
            SimplexOutcome::Optimal {
                objective: obj_d, ..
            },
        ) => {
            assert_eq!(obj_r, obj_d, "objectives must agree exactly");
            // The revised solution must actually satisfy A x = b, x >= 0 and
            // price out to the claimed objective.
            let mut priced = Rational::zero();
            for (x, cost) in sol_r.iter().zip(c) {
                assert!(!x.is_negative(), "solution must be non-negative");
                priced += x * cost;
            }
            assert_eq!(&priced, obj_r, "objective must match the solution");
            for (row, rhs) in a.iter().zip(b) {
                let lhs: Rational = row.iter().zip(sol_r).map(|(coeff, x)| coeff * x).sum();
                assert_eq!(&lhs, rhs, "solution must satisfy every row");
            }
        }
        (SimplexOutcome::Infeasible, SimplexOutcome::Infeasible) => {}
        (SimplexOutcome::Unbounded, SimplexOutcome::Unbounded) => {}
        other => panic!("solvers disagree: {other:?}"),
    }
}

#[test]
fn beale_cycling_example() {
    // Beale (1955): cycles under Dantzig pricing without anti-cycling
    // safeguards.  Optimum -1/20.
    let a = vec![
        vec![
            ratio(1, 4),
            int(-60),
            ratio(-1, 25),
            int(9),
            int(1),
            int(0),
            int(0),
        ],
        vec![
            ratio(1, 2),
            int(-90),
            ratio(-1, 50),
            int(3),
            int(0),
            int(1),
            int(0),
        ],
        vec![int(0), int(0), int(1), int(0), int(0), int(0), int(1)],
    ];
    let b = vec![int(0), int(0), int(1)];
    let c = vec![
        ratio(-3, 4),
        int(150),
        ratio(-1, 50),
        int(6),
        int(0),
        int(0),
        int(0),
    ];
    assert_agreement(&a, &b, &c);
    match solve_standard_form(&a, &b, &c) {
        SimplexOutcome::Optimal { objective, .. } => assert_eq!(objective, ratio(-1, 20)),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn kuhn_cycling_example() {
    // Kuhn's degenerate example: both right-hand sides are zero, so every
    // pivot of the early iterations is degenerate.  In standard form with
    // slacks s1, s2:
    //   -2x1 - 9x2 +  x3 + 9x4 + s1 = 0
    //  1/3x1 +  x2 - 1/3x3 - 2x4 + s2 = 0
    //   minimize -2x1 - 3x2 + x3 + 12x4.
    let a = vec![
        vec![int(-2), int(-9), int(1), int(9), int(1), int(0)],
        vec![ratio(1, 3), int(1), ratio(-1, 3), int(-2), int(0), int(1)],
    ];
    let b = vec![int(0), int(0)];
    let c = vec![int(-2), int(-3), int(1), int(12), int(0), int(0)];
    assert_agreement(&a, &b, &c);
    // Both solvers terminate despite the total degeneracy; the program is
    // unbounded (push x2 along the recession direction).
    assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Unbounded);
}

#[test]
fn fully_degenerate_square_is_handled() {
    // All-zero rhs with redundant rows: the only feasible point is where the
    // positive combination constraints bind; objective 0.
    let a = vec![
        vec![int(1), int(-1), int(0)],
        vec![int(1), int(-1), int(0)],
        vec![int(1), int(1), int(1)],
    ];
    let b = vec![int(0), int(0), int(0)];
    let c = vec![int(1), int(2), int(3)];
    assert_agreement(&a, &b, &c);
}

/// Deterministically expands a compact integer encoding into a standard-form
/// program: `entries` supplies coefficients in `-3..=3` with zeros making the
/// matrix sparse, `rhs` in `-4..=4`, `costs` in `-3..=3`.
fn decode_program(
    rows: usize,
    cols: usize,
    entries: &[i64],
    rhs: &[i64],
    costs: &[i64],
) -> (Vec<Vec<Rational>>, Vec<Rational>, Vec<Rational>) {
    let mut a = vec![vec![Rational::zero(); cols]; rows];
    for i in 0..rows {
        for j in 0..cols {
            let raw = entries[(i * cols + j) % entries.len()];
            // Map ~60% of entries to structural zeros to mimic the cone
            // programs' sparsity.
            a[i][j] = if raw.rem_euclid(5) < 3 {
                Rational::zero()
            } else {
                int(raw.rem_euclid(7) - 3)
            };
        }
    }
    let b: Vec<Rational> = (0..rows)
        .map(|i| int(rhs[i % rhs.len()].rem_euclid(9) - 4))
        .collect();
    let c: Vec<Rational> = (0..cols)
        .map(|j| int(costs[j % costs.len()].rem_euclid(7) - 3))
        .collect();
    (a, b, c)
}

proptest! {
    #[test]
    fn random_sparse_standard_forms_agree(
        rows in 1usize..6,
        cols in 1usize..8,
        entries in proptest::collection::vec(-100i64..100, 8..48),
        rhs in proptest::collection::vec(-100i64..100, 1..8),
        costs in proptest::collection::vec(-100i64..100, 1..8),
    ) {
        let (a, b, c) = decode_program(rows, cols, &entries, &rhs, &costs);
        assert_agreement(&a, &b, &c);
    }

    #[test]
    fn random_modelled_problems_warm_start_consistently(
        n_vars in 1usize..5,
        n_cons in 1usize..5,
        entries in proptest::collection::vec(-100i64..100, 8..32),
        rhs in proptest::collection::vec(-100i64..100, 1..6),
    ) {
        // Build a modelled problem with mixed operators and bounds, solve it
        // cold, then re-solve warm from its own basis: status, objective and
        // values must be identical.
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<_> = (0..n_vars)
            .map(|i| {
                let bound = if entries[i % entries.len()].rem_euclid(4) == 0 {
                    VarBound::Free
                } else {
                    VarBound::NonNegative
                };
                lp.add_variable(format!("x{i}"), bound)
            })
            .collect();
        lp.set_objective(vars.iter().enumerate().map(|(j, &v)| {
            (v, int(entries[(j * 7 + 3) % entries.len()].rem_euclid(5) - 2))
        }).collect::<Vec<_>>());
        for i in 0..n_cons {
            let coeffs: Vec<_> = vars
                .iter()
                .enumerate()
                .filter_map(|(j, &v)| {
                    let raw = entries[(i * n_vars + j) % entries.len()];
                    if raw.rem_euclid(3) == 0 {
                        None
                    } else {
                        Some((v, int(raw.rem_euclid(7) - 3)))
                    }
                })
                .collect();
            let op = match rhs[i % rhs.len()].rem_euclid(3) {
                0 => ConstraintOp::Le,
                1 => ConstraintOp::Ge,
                _ => ConstraintOp::Eq,
            };
            lp.add_constraint(coeffs, op, int(rhs[(i * 5 + 1) % rhs.len()].rem_euclid(9) - 4));
        }
        let (cold, basis) = lp.solve_from(None);
        if cold.status == LpStatus::Optimal {
            prop_assert!(cold.objective.is_some());
        }
        if let Some(basis) = basis {
            let (warm, _) = lp.solve_from(Some(&basis));
            prop_assert_eq!(warm.status, cold.status);
            prop_assert_eq!(warm.objective, cold.objective);
            prop_assert_eq!(warm.values, cold.values);
        }
    }
}
