//! The retained dense two-phase simplex, kept as a correctness oracle.
//!
//! This is the original production solver of this crate: a dense tableau over
//! exact rationals with Bland's rule throughout.  It has been replaced on
//! every production path by the sparse revised simplex
//! ([`crate::solve_standard_form`]), but it stays in the tree as an
//! independent implementation that the property tests and the
//! `bench_lp` regression benchmarks compare against — two solvers that agree
//! on the exact objective and feasibility status of randomized programs give
//! much stronger evidence than either alone.
//!
//! Do not call [`solve_standard_form_dense`] from production code: it
//! allocates a full `(m+1) × (n+m+1)` tableau of `BigRational`s and pays
//! `O(m·n)` exact-arithmetic work per pivot.

use crate::revised::SimplexOutcome;
use bqc_arith::Rational;

/// A dense simplex tableau.  Row `m` (the last row) is the objective row; the
/// last column holds the right-hand side.
struct Tableau {
    /// `(m + 1) × (n + 1)` matrix.
    rows: Vec<Vec<Rational>>,
    /// Index of the basic variable of each of the `m` constraint rows.
    basis: Vec<usize>,
    m: usize,
    n: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> &Rational {
        &self.rows[row][self.n]
    }

    fn objective_value(&self) -> Rational {
        -self.rows[self.m][self.n].clone()
    }

    /// Performs a single pivot on `(row, col)`.
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.rows[pivot_row][pivot_col].clone();
        debug_assert!(!pivot_value.is_zero());
        let inv = pivot_value.recip();
        for value in self.rows[pivot_row].iter_mut() {
            *value = &*value * &inv;
        }
        for r in 0..=self.m {
            if r == pivot_row {
                continue;
            }
            let factor = self.rows[r][pivot_col].clone();
            if factor.is_zero() {
                continue;
            }
            for c in 0..=self.n {
                let delta = &factor * &self.rows[pivot_row][c];
                self.rows[r][c] = &self.rows[r][c] - &delta;
            }
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Runs the simplex iterations with Bland's rule until optimality or
    /// unboundedness.  `allowed_cols` restricts the entering candidates (used
    /// to keep artificial variables out of the basis during phase 2).
    fn optimize(&mut self, allowed_cols: usize) -> bool {
        loop {
            // Bland's rule: entering variable = smallest column index with a
            // negative reduced cost.
            let mut entering = None;
            for col in 0..allowed_cols {
                if self.rows[self.m][col].is_negative() {
                    entering = Some(col);
                    break;
                }
            }
            let Some(col) = entering else {
                return true; // optimal
            };

            // Ratio test; ties broken by the smallest basic-variable index.
            let mut leaving: Option<(usize, Rational)> = None;
            for row in 0..self.m {
                let coeff = &self.rows[row][col];
                if coeff.is_positive() {
                    let ratio = self.rhs(row) / coeff;
                    let better = match &leaving {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < *best_ratio
                                || (ratio == *best_ratio && self.basis[row] < self.basis[*best_row])
                        }
                    };
                    if better {
                        leaving = Some((row, ratio));
                    }
                }
            }
            match leaving {
                Some((row, _)) => self.pivot(row, col),
                None => return false, // unbounded
            }
        }
    }
}

/// Solves the standard-form program `minimize c·x subject to A x = b, x ≥ 0`
/// with the dense tableau method (test/bench oracle — see the module docs).
///
/// * `a` is a dense `m × n` coefficient matrix (each inner vector a row).
/// * `b` is the right-hand side of length `m` (any sign; rows are re-signed
///   internally).
/// * `c` is the objective vector of length `n`.
///
/// # Panics
///
/// Panics if the dimensions of `a`, `b` and `c` are inconsistent.
pub fn solve_standard_form_dense(
    a: &[Vec<Rational>],
    b: &[Rational],
    c: &[Rational],
) -> SimplexOutcome {
    let m = a.len();
    assert_eq!(b.len(), m, "rhs length must equal the number of rows");
    let n = c.len();
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "row {i} has wrong length");
    }

    // Total columns: n structural + m artificial.
    let total = n + m;
    let mut rows: Vec<Vec<Rational>> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let negate = b[i].is_negative();
        let mut row: Vec<Rational> = Vec::with_capacity(total + 1);
        for value in &a[i] {
            row.push(if negate { -value } else { value.clone() });
        }
        for j in 0..m {
            row.push(if i == j {
                Rational::one()
            } else {
                Rational::zero()
            });
        }
        row.push(if negate { -&b[i] } else { b[i].clone() });
        rows.push(row);
    }

    // Phase-1 objective: minimize the sum of artificial variables.  The
    // reduced-cost row starts as the cost vector and is then made consistent
    // with the initial (artificial) basis by subtracting each constraint row.
    let mut phase1_obj = vec![Rational::zero(); total + 1];
    for slot in &mut phase1_obj[n..total] {
        *slot = Rational::one();
    }
    for row in &rows {
        for (slot, delta) in phase1_obj.iter_mut().zip(row) {
            *slot = &*slot - delta;
        }
    }
    rows.push(phase1_obj);

    let mut tableau = Tableau {
        rows,
        basis: (n..total).collect(),
        m,
        n: total,
    };

    let phase1_bounded = tableau.optimize(total);
    debug_assert!(phase1_bounded, "phase 1 objective is bounded below by 0");
    if tableau.objective_value().is_positive() {
        return SimplexOutcome::Infeasible;
    }

    // Drive any artificial variable that is still basic (at value zero) out of
    // the basis, or drop its (redundant) row.
    let mut dropped_rows: Vec<usize> = Vec::new();
    for row in 0..m {
        if tableau.basis[row] >= n {
            let mut pivot_col = None;
            for col in 0..n {
                if !tableau.rows[row][col].is_zero() {
                    pivot_col = Some(col);
                    break;
                }
            }
            match pivot_col {
                Some(col) => tableau.pivot(row, col),
                None => dropped_rows.push(row),
            }
        }
    }

    // Phase 2: replace the objective row with the true objective, restricted
    // to the structural columns, and make it consistent with the current basis.
    let total_cols = tableau.n;
    let mut obj = vec![Rational::zero(); total_cols + 1];
    obj[..n].clone_from_slice(c);
    for row in 0..m {
        if dropped_rows.contains(&row) {
            continue;
        }
        let basic = tableau.basis[row];
        if basic < n && !obj[basic].is_zero() {
            let factor = obj[basic].clone();
            for (slot, cell) in obj.iter_mut().zip(&tableau.rows[row]) {
                let delta = &factor * cell;
                *slot = &*slot - &delta;
            }
        }
    }
    tableau.rows[m] = obj;

    // Redundant rows (with artificial basics that could not be pivoted out)
    // have all-zero structural coefficients; zero them fully so they can never
    // be selected by the ratio test for structural columns.
    for &row in &dropped_rows {
        for col in 0..n {
            debug_assert!(tableau.rows[row][col].is_zero());
        }
    }

    if !tableau.optimize(n) {
        return SimplexOutcome::Unbounded;
    }

    let mut solution = vec![Rational::zero(); n];
    for row in 0..m {
        let basic = tableau.basis[row];
        if basic < n {
            solution[basic] = tableau.rhs(row).clone();
        }
    }
    SimplexOutcome::Optimal {
        objective: tableau.objective_value(),
        solution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    fn r(v: i64) -> Rational {
        int(v)
    }

    #[test]
    fn simple_equality_program() {
        // minimize x + y  s.t.  x + y = 2, x - y = 0, x, y >= 0 -> x = y = 1.
        let a = vec![vec![r(1), r(1)], vec![r(1), r(-1)]];
        let b = vec![r(2), r(0)];
        let c = vec![r(1), r(1)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(2));
                assert_eq!(solution, vec![r(1), r(1)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        // x = 1 and x = 2 simultaneously.
        let a = vec![vec![r(1)], vec![r(1)]];
        let b = vec![r(1), r(2)];
        let c = vec![r(0)];
        assert_eq!(
            solve_standard_form_dense(&a, &b, &c),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn detects_unboundedness() {
        // minimize -x s.t. x - s = 0 (i.e. x >= 0 effectively unconstrained above).
        let a = vec![vec![r(1), r(-1)]];
        let b = vec![r(0)];
        let c = vec![r(-1), r(0)];
        assert_eq!(
            solve_standard_form_dense(&a, &b, &c),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // -x = -3  ->  x = 3.
        let a = vec![vec![r(-1)]];
        let b = vec![r(-3)];
        let c = vec![r(1)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(3));
                assert_eq!(solution, vec![r(3)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // Two identical rows x + y = 1; minimize y.
        let a = vec![vec![r(1), r(1)], vec![r(1), r(1)]];
        let b = vec![r(1), r(1)];
        let c = vec![r(0), r(1)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(0));
                assert_eq!(&solution[0] + &solution[1], r(1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fractional_optimum() {
        // minimize -x - y s.t. 2x + y + s1 = 3, x + 2y + s2 = 3 -> x = y = 1... but
        // with rational data: 2x + 3y = 5, 4x + y = 5 -> x = y = 1.
        let a = vec![vec![r(2), r(3)], vec![r(4), r(1)]];
        let b = vec![r(5), r(5)];
        let c = vec![r(-1), r(-1)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(solution, vec![r(1), r(1)]);
                assert_eq!(objective, r(-2));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // A genuinely fractional one: x + 3y = 2, 3x + y = 2 -> x = y = 1/2.
        let a = vec![vec![r(1), r(3)], vec![r(3), r(1)]];
        let b = vec![r(2), r(2)];
        let c = vec![r(1), r(0)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(solution, vec![ratio(1, 2), ratio(1, 2)]);
                assert_eq!(objective, ratio(1, 2));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's classic cycling example; Bland's rule must not cycle.
        let a = vec![
            vec![ratio(1, 4), r(-60), ratio(-1, 25), r(9), r(1), r(0), r(0)],
            vec![ratio(1, 2), r(-90), ratio(-1, 50), r(3), r(0), r(1), r(0)],
            vec![r(0), r(0), r(1), r(0), r(0), r(0), r(1)],
        ];
        let b = vec![r(0), r(0), r(1)];
        let c = vec![ratio(-3, 4), r(150), ratio(-1, 50), r(6), r(0), r(0), r(0)];
        match solve_standard_form_dense(&a, &b, &c) {
            SimplexOutcome::Optimal { objective, .. } => {
                assert_eq!(objective, ratio(-1, 20));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
