//! Incremental-row solving: append constraints to an already-solved program
//! and re-enter the simplex from the previous basis.
//!
//! This is the LP substrate of the lazy Shannon-cone separation loop in
//! `bqc-iip`: instead of materializing all `n + C(n,2)·2^{n−2}` elemental
//! inequalities of `Γ_n` up front, the prover solves over a small active row
//! set, asks a separator for violated rows, and appends them here.  The key
//! property of [`IncrementalSolver::add_constraint`] is that it **extends the
//! current optimal basis** instead of discarding it:
//!
//! * a new inequality row that the current point already satisfies enters the
//!   basis on its own slack/surplus column (primal-feasible immediately — the
//!   next solve often needs zero pivots for it);
//! * a **violated** row enters on its artificial column, carrying exactly the
//!   violation amount, and the next solve runs a *bounded* phase-1 restart
//!   that only has to clear those few artificials — not a cold crash-basis
//!   phase 1 over every row of the program.
//!
//! Appending rows never grows the structural column set, and each appended
//! inequality brings its own slack column, so the extended basis stays
//! square and nonsingular by construction.  When anything about the stored
//! basis is unusable (a prior solve ended infeasible/unbounded, or left an
//! artificial pinned on a redundant row), the solver silently falls back to
//! a cold solve — incrementality is an optimization only and never changes
//! an answer.

use crate::problem::{ConstraintOp, LpBasis, LpProblem, LpSolution, LpStatus, Sense, VarId};
use crate::revised::{solve_sparse_full, solve_sparse_resume_full, SimplexOutcome, SparseSolve};
use crate::scalar::Scalar;
use crate::sparse::SparseMatrix;
use bqc_arith::Rational;
use bqc_obs::{Budget, Exhausted, LazyCounter};
use std::collections::BTreeMap;

static ROWS_APPENDED: LazyCounter = LazyCounter::new("bqc_lp_rows_appended_total");
static RESUME_FALLBACKS: LazyCounter = LazyCounter::new("bqc_lp_resume_fallbacks_total");

/// Which column is basic for a constraint row in the stored basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BasisSlot {
    /// A structural or slack column of the standard form.
    Col(usize),
    /// The (virtual) artificial column of the given row.
    Artificial(usize),
}

/// A standard-form program that supports appending constraint rows between
/// solves, re-entering the simplex from the extended previous basis.
///
/// Created with [`LpProblem::to_incremental`]; the optimization sense,
/// variables, objective and initial constraints are taken from the problem,
/// after which the solver owns its own growing standard form.
///
/// ```
/// use bqc_arith::int;
/// use bqc_lp::{ConstraintOp, LpProblem, LpStatus, Sense, VarBound};
///
/// let mut lp = LpProblem::new(Sense::Minimize);
/// let x = lp.add_variable("x", VarBound::NonNegative);
/// lp.set_objective(vec![(x, int(1))]);
/// lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(10));
/// let mut inc = lp.to_incremental();
/// assert_eq!(inc.solve().value(x), &int(0));
/// // Appending x >= 3 re-enters from the previous basis (bounded phase 1).
/// inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Ge, 3);
/// assert_eq!(inc.solve().value(x), &int(3));
/// // Appending x <= 1 now makes the system infeasible.
/// inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Le, 1);
/// assert_eq!(inc.solve().status, LpStatus::Infeasible);
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalSolver {
    sense: Sense,
    a: SparseMatrix,
    b: Vec<Scalar>,
    c: Vec<Scalar>,
    column_of_var: Vec<(usize, Option<usize>)>,
    num_declared: usize,
    /// Basic column per row after the last solve, extended by
    /// `add_constraint`; empty when no usable basis is stored.
    basis: Vec<BasisSlot>,
    /// Primal values per standard-form column after the last solve (only
    /// meaningful while `basis` is non-empty).
    x_cols: Vec<Scalar>,
    /// Once a solve proves infeasibility, appending rows cannot restore
    /// feasibility, so later solves short-circuit.
    decided_infeasible: bool,
}

impl LpProblem {
    /// Builds an [`IncrementalSolver`] owning this problem's standard form.
    pub fn to_incremental(&self) -> IncrementalSolver {
        let sf = self.standard_form(true);
        IncrementalSolver {
            sense: self.sense(),
            a: sf.a,
            b: sf.b,
            c: sf.c,
            column_of_var: sf.column_of_var,
            num_declared: self.num_variables(),
            basis: Vec::new(),
            x_cols: Vec::new(),
            decided_infeasible: false,
        }
    }
}

impl IncrementalSolver {
    /// Number of constraint rows currently in the program.
    pub fn num_constraints(&self) -> usize {
        self.a.num_rows()
    }

    /// Number of decision variables declared by the source problem.
    pub fn num_variables(&self) -> usize {
        self.num_declared
    }

    /// Appends the constraint `Σ coeff·var op rhs` and, when a basis from a
    /// previous solve is available, extends it in place (see the module
    /// docs).  The next [`IncrementalSolver::solve`] re-enters from that
    /// extended basis.
    pub fn add_constraint(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, Scalar)>,
        op: ConstraintOp,
        rhs: Scalar,
    ) {
        // Accumulate per standard-form column (free variables scatter into
        // their (x⁺, x⁻) pair; repeated variables sum).
        let mut entries: BTreeMap<usize, Scalar> = BTreeMap::new();
        for (var, coeff) in coeffs {
            let (pos, neg) = self.column_of_var[var.0];
            let slot = entries.entry(pos).or_default();
            *slot = slot.add(&coeff);
            if let Some(neg) = neg {
                let slot = entries.entry(neg).or_default();
                *slot = slot.sub(&coeff);
            }
        }
        // Canonicalize `≤` to `≥` by negation; only `Ge` and `Eq` remain.
        let (mut entries, mut rhs, op) = match op {
            ConstraintOp::Le => (
                entries
                    .into_iter()
                    .map(|(col, v)| (col, v.neg()))
                    .collect::<Vec<_>>(),
                rhs.neg(),
                ConstraintOp::Ge,
            ),
            other => (entries.into_iter().collect(), rhs, other),
        };

        let extend_basis = !self.basis.is_empty();
        let value_at_current: Scalar = if extend_basis {
            let mut v = Scalar::ZERO;
            for (col, coeff) in &entries {
                if !self.x_cols[*col].is_zero() {
                    v = v.add_mul(coeff, &self.x_cols[*col]);
                }
            }
            v
        } else {
            Scalar::ZERO
        };

        // For an equality row the basic column must be the artificial, whose
        // coefficient is +1; orient the row so its value `rhs − v` is ≥ 0.
        if op == ConstraintOp::Eq && extend_basis && rhs.sub(&value_at_current).is_negative() {
            for (_, v) in entries.iter_mut() {
                *v = v.neg();
            }
            rhs = rhs.neg();
        }

        ROWS_APPENDED.inc();
        let row = self.a.append_row(entries);
        self.b.push(rhs.clone());
        if op == ConstraintOp::Ge {
            // Surplus column, belonging to this row only.
            let slack = self.a.push_col(vec![(row, Scalar::from_int(-1))]);
            self.c.push(Scalar::ZERO);
            if extend_basis {
                let surplus = value_at_current.sub(&rhs);
                if surplus.is_negative() {
                    // Violated: artificial basic at the violation amount.
                    self.basis.push(BasisSlot::Artificial(row));
                    self.x_cols.push(Scalar::ZERO);
                } else {
                    self.basis.push(BasisSlot::Col(slack));
                    self.x_cols.push(surplus);
                }
            }
        } else if extend_basis {
            self.basis.push(BasisSlot::Artificial(row));
        }
    }

    /// [`IncrementalSolver::add_constraint`] with small integer data.
    pub fn add_constraint_small(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, i64)>,
        op: ConstraintOp,
        rhs: i64,
    ) {
        self.add_constraint(
            coeffs
                .into_iter()
                .map(|(var, coeff)| (var, Scalar::from_int(coeff))),
            op,
            Scalar::from_int(rhs),
        );
    }

    /// Solves the current program, re-entering from the stored (extended)
    /// basis when one is available.
    pub fn solve(&mut self) -> LpSolution {
        self.solve_from(None)
    }

    /// [`IncrementalSolver::solve`] under a decision [`Budget`].  `Err`
    /// means the budget ran out mid-solve; the solver's stored basis and
    /// primal point are **left untouched** (nothing partial is absorbed), so
    /// a later solve — budgeted or not — picks up exactly where the last
    /// *completed* solve left off.
    pub fn solve_budgeted(&mut self, budget: &Budget) -> Result<LpSolution, Exhausted> {
        self.solve_from_budgeted(None, budget)
    }

    /// Solves the current program, optionally seeding the *first* solve with
    /// a basis cached from another same-shaped program (the cross-probe
    /// warm-start of [`LpProblem::solve_from`]).  The solver's own stored
    /// basis, when present, takes precedence; an unusable basis of either
    /// kind falls back to a cold solve and never affects the answer.
    pub fn solve_from(&mut self, warm: Option<&LpBasis>) -> LpSolution {
        self.solve_from_budgeted(warm, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`IncrementalSolver::solve_from`] under a decision [`Budget`]; see
    /// [`IncrementalSolver::solve_budgeted`] for the exhaustion contract.
    pub fn solve_from_budgeted(
        &mut self,
        warm: Option<&LpBasis>,
        budget: &Budget,
    ) -> Result<LpSolution, Exhausted> {
        if self.decided_infeasible {
            return Ok(self.solution_without_point(LpStatus::Infeasible));
        }
        let n = self.a.num_cols();
        let resume_cols: Option<Vec<usize>> = if !self.basis.is_empty() {
            Some(
                self.basis
                    .iter()
                    .map(|slot| match slot {
                        BasisSlot::Col(j) => *j,
                        BasisSlot::Artificial(row) => n + row,
                    })
                    .collect(),
            )
        } else {
            warm.and_then(|basis| {
                (basis.rows == self.a.num_rows() && basis.cols_total == n)
                    .then(|| basis.cols.clone())
            })
        };
        let resumed = match resume_cols {
            Some(cols) => solve_sparse_resume_full(
                &self.a, &self.b, &self.c, &cols, false, budget,
            )?
            .or_else(|| {
                RESUME_FALLBACKS.inc();
                None
            }),
            None => None,
        };
        let result = match resumed {
            Some(result) => result,
            None => self.cold_solve(budget)?,
        };
        Ok(self.absorb(result))
    }

    /// The stored optimal basis in the cacheable [`LpBasis`] form, when the
    /// last solve ended optimal on a clean (artificial-free) basis and no
    /// violated row has been appended since.
    pub fn basis(&self) -> Option<LpBasis> {
        if self.basis.is_empty() {
            return None;
        }
        let cols: Option<Vec<usize>> = self
            .basis
            .iter()
            .map(|slot| match slot {
                BasisSlot::Col(j) => Some(*j),
                BasisSlot::Artificial(_) => None,
            })
            .collect();
        cols.map(|cols| LpBasis {
            cols,
            rows: self.a.num_rows(),
            cols_total: self.a.num_cols(),
        })
    }

    /// Cold solve.  The crash-basis path requires `b ≥ 0`; rows appended
    /// after a solve are oriented for basis feasibility instead, so re-sign
    /// a copy when needed.
    fn cold_solve(&self, budget: &Budget) -> Result<SparseSolve, Exhausted> {
        if self.b.iter().all(|v| !v.is_negative()) {
            return solve_sparse_full(&self.a, &self.b, &self.c, None, false, budget);
        }
        let negate: Vec<bool> = self.b.iter().map(Scalar::is_negative).collect();
        let mut a = SparseMatrix::new(self.a.num_rows());
        for j in 0..self.a.num_cols() {
            a.push_col(self.a.col(j).iter().map(|(row, value)| {
                (
                    *row,
                    if negate[*row] {
                        value.neg()
                    } else {
                        value.clone()
                    },
                )
            }));
        }
        let b: Vec<Scalar> = self
            .b
            .iter()
            .zip(&negate)
            .map(|(v, flip)| if *flip { v.neg() } else { v.clone() })
            .collect();
        // Row re-signing changes neither the solution set nor which column
        // sets form a basis, so the outcome carries over verbatim.
        solve_sparse_full(&a, &b, &self.c, None, false, budget)
    }

    /// Stores the solver state from `result` and maps it back to the
    /// declared-variable space.
    fn absorb(&mut self, result: SparseSolve) -> LpSolution {
        match result.outcome {
            SimplexOutcome::Infeasible => {
                self.decided_infeasible = true;
                self.basis.clear();
                self.x_cols.clear();
                self.solution_without_point(LpStatus::Infeasible)
            }
            SimplexOutcome::Unbounded => {
                self.basis.clear();
                self.x_cols.clear();
                self.solution_without_point(LpStatus::Unbounded)
            }
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                match result.basis {
                    Some(cols) => {
                        self.basis = cols.into_iter().map(BasisSlot::Col).collect();
                        self.x_cols = solution
                            .iter()
                            .map(|v| Scalar::from_rational(v.clone()))
                            .collect();
                    }
                    None => {
                        // An artificial stayed pinned on a redundant row: the
                        // point is optimal but the basis is not reusable.
                        self.basis.clear();
                        self.x_cols.clear();
                    }
                }
                let mut values = Vec::with_capacity(self.num_declared);
                for (pos, neg) in &self.column_of_var {
                    let mut v = solution[*pos].clone();
                    if let Some(neg) = neg {
                        v = &v - &solution[*neg];
                    }
                    values.push(v);
                }
                let objective = match self.sense {
                    Sense::Minimize => objective,
                    Sense::Maximize => -objective,
                };
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: Some(objective),
                    values,
                    duals: None,
                }
            }
        }
    }

    fn solution_without_point(&self, status: LpStatus) -> LpSolution {
        LpSolution {
            status,
            objective: None,
            values: vec![Rational::zero(); self.num_declared],
            duals: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarBound;
    use bqc_arith::{int, ratio};

    #[test]
    fn matches_from_scratch_solves_across_row_appends() {
        // maximize 3x + 5y under a growing constraint set; after every append
        // the incremental answer must equal a cold rebuild.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(3)), (y, int(5))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(4));

        let mut inc = lp.to_incremental();
        assert_eq!(inc.solve().status, LpStatus::Unbounded);

        type Addition = (Vec<(VarId, i64)>, ConstraintOp, i64);
        let additions: Vec<Addition> = vec![
            (vec![(y, 2)], ConstraintOp::Le, 12),
            (vec![(x, 3), (y, 2)], ConstraintOp::Le, 18),
            (vec![(x, 1), (y, 1)], ConstraintOp::Ge, 5),
            (vec![(x, 1)], ConstraintOp::Eq, 2),
        ];
        for (i, (coeffs, op, rhs)) in additions.iter().enumerate() {
            inc.add_constraint_small(coeffs.clone(), *op, *rhs);
            lp.add_constraint_small(coeffs.clone(), *op, *rhs);
            let warm = inc.solve();
            let cold = lp.solve();
            assert_eq!(warm.status, cold.status, "after append {i}");
            assert_eq!(warm.objective, cold.objective, "after append {i}");
            assert_eq!(warm.values, cold.values, "after append {i}");
        }
        assert_eq!(inc.solve().objective, Some(int(36)));
    }

    #[test]
    fn violated_appends_run_bounded_phase_one() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1)), (y, int(1))]);
        let mut inc = lp.to_incremental();
        assert_eq!(inc.solve().objective, Some(int(0)));
        // The optimum (0, 0) violates each appended lower bound in turn.
        inc.add_constraint_small(vec![(x, 1), (y, 2)], ConstraintOp::Ge, 4);
        let sol = inc.solve();
        assert_eq!(sol.objective, Some(int(2)));
        inc.add_constraint_small(vec![(x, 2), (y, 1)], ConstraintOp::Ge, 4);
        let sol = inc.solve();
        assert_eq!(sol.objective, Some(ratio(8, 3)));
        assert_eq!(sol.values, vec![ratio(4, 3), ratio(4, 3)]);
    }

    #[test]
    fn infeasibility_is_sticky() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(1));
        let mut inc = lp.to_incremental();
        assert_eq!(inc.solve().status, LpStatus::Optimal);
        inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Ge, 2);
        assert_eq!(inc.solve().status, LpStatus::Infeasible);
        inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Ge, 0);
        assert_eq!(inc.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn free_variables_and_negative_rhs() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::Free);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(-5));
        let mut inc = lp.to_incremental();
        assert_eq!(inc.solve().values, vec![int(-5)]);
        // Tighten from below with a negative-rhs row (violated: -5 < -2).
        inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Ge, -2);
        assert_eq!(inc.solve().values, vec![int(-2)]);
        // And an equality append.
        inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Eq, -1);
        assert_eq!(inc.solve().values, vec![int(-1)]);
    }

    #[test]
    fn appending_before_the_first_solve_is_a_cold_build() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        let mut inc = lp.to_incremental();
        inc.add_constraint_small(vec![(x, 1)], ConstraintOp::Le, 7);
        // A negative-rhs append with no basis exercises the re-signed cold path.
        inc.add_constraint_small(vec![(x, -1)], ConstraintOp::Le, -2);
        let sol = inc.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.values, vec![int(7)]);
        assert_eq!(inc.num_constraints(), 2);
        assert_eq!(inc.num_variables(), 1);
    }

    #[test]
    fn budget_exhaustion_leaves_stored_state_reusable() {
        use bqc_obs::{BudgetResource, BudgetSpec};
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1)), (y, int(1))]);
        let mut inc = lp.to_incremental();
        assert_eq!(inc.solve().objective, Some(int(0)));
        // A violated append forces a bounded phase-1 that needs pivots.
        inc.add_constraint_small(vec![(x, 1), (y, 2)], ConstraintOp::Ge, 4);
        let spec = BudgetSpec {
            max_pivots: Some(0),
            ..BudgetSpec::UNLIMITED
        };
        let err = inc
            .solve_budgeted(&spec.start())
            .expect_err("a zero-pivot budget cannot clear the violation");
        assert_eq!(err.resource, BudgetResource::Pivots);
        // Nothing partial was absorbed: the next unbudgeted solve answers
        // exactly what a from-scratch solve would.
        let sol = inc.solve();
        assert_eq!(sol.objective, Some(int(2)));
    }

    #[test]
    fn external_warm_basis_seeds_the_first_solve() {
        let build = |rhs: i64| {
            let mut lp = LpProblem::new(Sense::Minimize);
            let x = lp.add_variable("x", VarBound::NonNegative);
            let y = lp.add_variable("y", VarBound::NonNegative);
            lp.set_objective(vec![(x, int(1)), (y, int(2))]);
            lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Ge, int(rhs));
            lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(rhs + 3));
            lp
        };
        let mut first = build(2).to_incremental();
        first.solve();
        let basis = first.basis().expect("clean optimal basis");
        let mut second = build(5).to_incremental();
        let warm = second.solve_from(Some(&basis));
        let cold = build(5).solve();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
    }
}
