//! # bqc-lp — exact linear programming over the rationals
//!
//! A self-contained **sparse revised simplex** solver working entirely in
//! exact rational arithmetic.  It exists because the decision procedures of
//! *Bag Query Containment and Information Theory* (PODS 2020) reduce query
//! containment to the validity of (max-)information inequalities over the
//! polymatroid cone `Γ_n`, which is a linear-programming feasibility question
//! that must be answered **exactly** — a floating-point solver would need an
//! arbitrary tolerance to distinguish "valid" from "invalid by an
//! exponentially small margin".
//!
//! The production solver (the `revised` module, driven through [`LpProblem`])
//! stores the constraint matrix column-major and sparse, maintains the basis
//! inverse as an eta file with periodic refactorization, prices with
//! Dantzig's rule over a rotating candidate window, and falls back to
//! Bland's anti-cycling rule after degenerate stalls, so it terminates on
//! every input.  Pivot arithmetic runs in an `i64`-pair small-rational
//! representation ([`crate::scalar`]) and promotes to arbitrary precision
//! only on overflow.  Sequences of same-shaped programs can reuse the
//! previous optimal basis through [`LpProblem::solve_from`].  The original
//! dense tableau solver is retained in [`oracle`] as an independent
//! correctness oracle for property tests and regression benchmarks.
//!
//! ## Example
//!
//! ```
//! use bqc_arith::{int, ratio};
//! use bqc_lp::{ConstraintOp, LpProblem, LpStatus, Sense, VarBound};
//!
//! // maximize x + y  subject to  x + 2y <= 4,  3x + y <= 6,  x, y >= 0
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_variable("x", VarBound::NonNegative);
//! let y = lp.add_variable("y", VarBound::NonNegative);
//! lp.set_objective(vec![(x, int(1)), (y, int(1))]);
//! lp.add_constraint(vec![(x, int(1)), (y, int(2))], ConstraintOp::Le, int(4));
//! lp.add_constraint(vec![(x, int(3)), (y, int(1))], ConstraintOp::Le, int(6));
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert_eq!(sol.objective, Some(ratio(14, 5)));
//! assert_eq!(sol[x], ratio(8, 5));
//! assert_eq!(sol[y], ratio(6, 5));
//! ```

mod incremental;
pub mod oracle;
mod problem;
mod revised;
pub mod scalar;
pub mod sparse;

pub use incremental::IncrementalSolver;
pub use problem::{
    ConstraintId, ConstraintOp, LpBasis, LpProblem, LpSolution, LpStatus, Sense, VarBound, VarId,
};
pub use revised::{solve_standard_form, SimplexOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;

    #[test]
    fn trivial_feasibility() {
        // x >= 1 and x <= 0 is infeasible.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(1));
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(0));
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }
}
