//! # bqc-lp — exact linear programming over the rationals
//!
//! A self-contained, dense, two-phase primal simplex solver working entirely in
//! exact rational arithmetic ([`bqc_arith::Rational`]).  It exists because the
//! decision procedures of *Bag Query Containment and Information Theory*
//! (PODS 2020) reduce query containment to the validity of (max-)information
//! inequalities over the polymatroid cone `Γ_n`, which is a linear-programming
//! feasibility question that must be answered **exactly** — a floating-point
//! solver would need an arbitrary tolerance to distinguish "valid" from
//! "invalid by an exponentially small margin".
//!
//! The solver uses Bland's anti-cycling rule, so it terminates on every input.
//! Problem sizes in this crate's intended use are moderate (the Shannon cone on
//! `n` variables has `2^n` columns and `n + n(n-1)2^{n-3}` elemental rows), and
//! the dense exact tableau is fast enough for the paper's constructions up to
//! `n ≈ 10` query variables.
//!
//! ## Example
//!
//! ```
//! use bqc_arith::{int, ratio};
//! use bqc_lp::{ConstraintOp, LpProblem, LpStatus, Sense, VarBound};
//!
//! // maximize x + y  subject to  x + 2y <= 4,  3x + y <= 6,  x, y >= 0
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_variable("x", VarBound::NonNegative);
//! let y = lp.add_variable("y", VarBound::NonNegative);
//! lp.set_objective(vec![(x, int(1)), (y, int(1))]);
//! lp.add_constraint(vec![(x, int(1)), (y, int(2))], ConstraintOp::Le, int(4));
//! lp.add_constraint(vec![(x, int(3)), (y, int(1))], ConstraintOp::Le, int(6));
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert_eq!(sol.objective, Some(ratio(14, 5)));
//! assert_eq!(sol[x], ratio(8, 5));
//! assert_eq!(sol[y], ratio(6, 5));
//! ```

mod problem;
mod simplex;

pub use problem::{
    ConstraintId, ConstraintOp, LpProblem, LpSolution, LpStatus, Sense, VarBound, VarId,
};
pub use simplex::{solve_standard_form, SimplexOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;

    #[test]
    fn trivial_feasibility() {
        // x >= 1 and x <= 0 is infeasible.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(1));
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(0));
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }
}
