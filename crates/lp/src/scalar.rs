//! The exactness fast path: a small-rational scalar that promotes to
//! [`Rational`] only on overflow.
//!
//! Simplex pivot arithmetic over the Shannon-cone programs is dominated by
//! coefficients that are tiny (almost all ±1 or small fractions), yet the
//! dense solver pays full `BigInt` allocation cost for every one of them.
//! [`Scalar`] keeps a value as a canonical `i64 / i64` fraction for as long as
//! it fits, computing every operation in `i128` with overflow checks, and
//! switches to the exact arbitrary-precision [`Rational`] representation the
//! moment an intermediate no longer fits.  Results are demoted back to the
//! small form whenever possible, so a temporary excursion through big
//! arithmetic does not poison subsequent operations.
//!
//! The representation invariant (checked in debug builds) is:
//!
//! * `Small(num, den)` has `den > 0` and `gcd(|num|, den) = 1`;
//! * `Big(r)` is only used for values whose canonical numerator or
//!   denominator does not fit in an `i64`.
//!
//! Together these make the representation *unique*, so derived structural
//! equality and hashing coincide with numeric equality, exactly as for
//! [`Rational`] itself.

use bqc_arith::{BigInt, Rational};
use bqc_obs::LazyCounter;
use std::cmp::Ordering;
use std::fmt;

/// Small→Big transitions: an operation on small operands whose result no
/// longer fits the `i64` pair.  Lives on the overflow path only, so the
/// all-small fast path pays nothing.
static PROMOTIONS: LazyCounter = LazyCounter::new("bqc_lp_scalar_promotions_total");
/// Big→Small transitions: an operation with a big operand whose result fits
/// the `i64` pair again (a temporary excursion that healed).
static DEMOTIONS: LazyCounter = LazyCounter::new("bqc_lp_scalar_demotions_total");

/// An exact rational scalar with an `i64`-pair fast path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// `num / den` with `den > 0`, `gcd(|num|, den) = 1`, both in `i64`.
    Small(i64, i64),
    /// Arbitrary-precision fallback; never holds an `i64`-representable value.
    Big(Rational),
}

impl Scalar {
    /// The scalar zero.
    pub const ZERO: Scalar = Scalar::Small(0, 1);
    /// The scalar one.
    pub const ONE: Scalar = Scalar::Small(1, 1);

    /// Builds a scalar from an integer.
    pub fn from_int(v: i64) -> Scalar {
        Scalar::Small(v, 1)
    }

    /// Builds a scalar from a (possibly non-canonical) `i128` fraction,
    /// reducing and demoting/promoting as needed.
    fn from_i128_frac(mut num: i128, mut den: i128) -> Scalar {
        debug_assert!(den != 0, "scalar with zero denominator");
        if den < 0 {
            // `i128::MIN` cannot be negated; route that corner case through
            // the big representation.
            if num == i128::MIN || den == i128::MIN {
                return Scalar::from_rational(Rational::new(
                    bigint_from_i128(num),
                    bigint_from_i128(den),
                ));
            }
            num = -num;
            den = -den;
        }
        if num == 0 {
            return Scalar::ZERO;
        }
        let g = gcd_i128(num.unsigned_abs(), den as u128) as i128;
        num /= g;
        den /= g;
        if let (Ok(n), Ok(d)) = (i64::try_from(num), i64::try_from(den)) {
            Scalar::Small(n, d)
        } else {
            PROMOTIONS.inc();
            Scalar::Big(Rational::new(bigint_from_i128(num), bigint_from_i128(den)))
        }
    }

    /// Rational fall-through shared by the binary operations; counts the
    /// promotion (small operands overflowed `i128`) or demotion (a big
    /// excursion whose result fits `i64` again) the transition represents.
    fn from_rational_op(r: Rational, small_inputs: bool) -> Scalar {
        let out = Scalar::from_rational(r);
        match (&out, small_inputs) {
            (Scalar::Big(_), true) => PROMOTIONS.inc(),
            (Scalar::Small(..), false) => DEMOTIONS.inc(),
            _ => {}
        }
        out
    }

    fn both_small(a: &Scalar, b: &Scalar) -> bool {
        matches!((a, b), (Scalar::Small(..), Scalar::Small(..)))
    }

    /// Converts a [`Rational`], demoting to the small form when it fits.
    pub fn from_rational(r: Rational) -> Scalar {
        match (r.numer().to_i64(), r.denom().to_i64()) {
            // `Rational` is canonical (den > 0, reduced), so the parts can be
            // reused directly.
            (Some(n), Some(d)) => Scalar::Small(n, d),
            _ => Scalar::Big(r),
        }
    }

    /// Converts to the arbitrary-precision representation.
    pub fn to_rational(&self) -> Rational {
        match self {
            Scalar::Small(n, d) => Rational::from_pair(*n, *d),
            Scalar::Big(r) => r.clone(),
        }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Scalar::Small(n, _) => *n == 0,
            Scalar::Big(r) => r.is_zero(),
        }
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match self {
            Scalar::Small(n, _) => *n > 0,
            Scalar::Big(r) => r.is_positive(),
        }
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match self {
            Scalar::Small(n, _) => *n < 0,
            Scalar::Big(r) => r.is_negative(),
        }
    }

    /// `true` iff the value is `1` or `-1` (a unit pivot candidate).
    pub fn is_unit(&self) -> bool {
        matches!(self, Scalar::Small(1, 1) | Scalar::Small(-1, 1))
    }

    /// Additive inverse.
    pub fn neg(&self) -> Scalar {
        match self {
            Scalar::Small(n, d) if *n != i64::MIN => Scalar::Small(-n, *d),
            other => Scalar::from_rational(-other.to_rational()),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Scalar {
        match self {
            Scalar::Small(n, d) => {
                assert!(*n != 0, "reciprocal of zero scalar");
                Scalar::from_i128_frac(*d as i128, *n as i128)
            }
            Scalar::Big(r) => Scalar::from_rational(r.recip()),
        }
    }

    /// Sum.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        if let (Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, rhs) {
            let num = (*an as i128)
                .checked_mul(*bd as i128)
                .and_then(|x| x.checked_add((*bn as i128) * (*ad as i128)));
            if let Some(num) = num {
                return Scalar::from_i128_frac(num, (*ad as i128) * (*bd as i128));
            }
        }
        Scalar::from_rational_op(
            self.to_rational() + rhs.to_rational(),
            Scalar::both_small(self, rhs),
        )
    }

    /// Difference.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        if let (Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, rhs) {
            let num = (*an as i128)
                .checked_mul(*bd as i128)
                .and_then(|x| x.checked_sub((*bn as i128) * (*ad as i128)));
            if let Some(num) = num {
                return Scalar::from_i128_frac(num, (*ad as i128) * (*bd as i128));
            }
        }
        Scalar::from_rational_op(
            self.to_rational() - rhs.to_rational(),
            Scalar::both_small(self, rhs),
        )
    }

    /// Product.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        if let (Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, rhs) {
            return Scalar::from_i128_frac(
                (*an as i128) * (*bn as i128),
                (*ad as i128) * (*bd as i128),
            );
        }
        Scalar::from_rational_op(self.to_rational() * rhs.to_rational(), false)
    }

    /// Quotient.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div(&self, rhs: &Scalar) -> Scalar {
        if let (Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, rhs) {
            assert!(*bn != 0, "division by zero scalar");
            return Scalar::from_i128_frac(
                (*an as i128) * (*bd as i128),
                (*ad as i128) * (*bn as i128),
            );
        }
        Scalar::from_rational_op(self.to_rational() / rhs.to_rational(), false)
    }

    /// Fused `self + a * b`, the inner-loop operation of FTRAN/BTRAN.
    pub fn add_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        if let (Scalar::Small(sn, sd), Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, a, b)
        {
            let prod_den = (*ad as i128) * (*bd as i128);
            let prod_num = (*an as i128) * (*bn as i128);
            if let (Some(lhs), Some(den)) = (
                (*sn as i128).checked_mul(prod_den),
                (*sd as i128).checked_mul(prod_den),
            ) {
                if let Some(num) = prod_num
                    .checked_mul(*sd as i128)
                    .and_then(|x| lhs.checked_add(x))
                {
                    return Scalar::from_i128_frac(num, den);
                }
            }
        }
        let small = Scalar::both_small(self, a) && matches!(b, Scalar::Small(..));
        Scalar::from_rational_op(
            self.to_rational() + a.to_rational() * b.to_rational(),
            small,
        )
    }

    /// Fused `self - a * b`, the inner-loop operation of every pivot update.
    pub fn sub_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        if let (Scalar::Small(sn, sd), Scalar::Small(an, ad), Scalar::Small(bn, bd)) = (self, a, b)
        {
            // self - a*b = (sn·(ad·bd) - (an·bn)·sd) / (sd·ad·bd).
            let prod_den = (*ad as i128) * (*bd as i128);
            let prod_num = (*an as i128) * (*bn as i128);
            if let (Some(lhs), Some(den)) = (
                (*sn as i128).checked_mul(prod_den),
                (*sd as i128).checked_mul(prod_den),
            ) {
                if let Some(num) = prod_num
                    .checked_mul(*sd as i128)
                    .and_then(|x| lhs.checked_sub(x))
                {
                    return Scalar::from_i128_frac(num, den);
                }
            }
        }
        let small = Scalar::both_small(self, a) && matches!(b, Scalar::Small(..));
        Scalar::from_rational_op(
            self.to_rational() - a.to_rational() * b.to_rational(),
            small,
        )
    }

    /// Numeric comparison (total order).
    pub fn cmp_value(&self, other: &Scalar) -> Ordering {
        match (self, other) {
            (Scalar::Small(an, ad), Scalar::Small(bn, bd)) => {
                ((*an as i128) * (*bd as i128)).cmp(&((*bn as i128) * (*ad as i128)))
            }
            _ => self.to_rational().cmp(&other.to_rational()),
        }
    }
}

impl Default for Scalar {
    fn default() -> Scalar {
        Scalar::ZERO
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Small(n, 1) => write!(f, "{n}"),
            Scalar::Small(n, d) => write!(f, "{n}/{d}"),
            Scalar::Big(r) => write!(f, "{r}"),
        }
    }
}

fn gcd_i128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn bigint_from_i128(v: i128) -> BigInt {
    // Split into 64-bit limbs; BigInt has From<i64>/From<u64> only.
    if let Ok(small) = i64::try_from(v) {
        return BigInt::from(small);
    }
    let negative = v < 0;
    let mag = v.unsigned_abs();
    let high = BigInt::from((mag >> 64) as u64);
    let low = BigInt::from(mag as u64);
    let shift = BigInt::from(2u64).pow(64);
    let result = high * shift + low;
    if negative {
        -result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::ratio;

    fn s(n: i64, d: i64) -> Scalar {
        Scalar::from_rational(Rational::from_pair(n, d))
    }

    #[test]
    fn canonical_small_form() {
        assert_eq!(s(2, 4), Scalar::Small(1, 2));
        assert_eq!(s(-2, -4), Scalar::Small(1, 2));
        assert_eq!(s(2, -4), Scalar::Small(-1, 2));
        assert_eq!(s(0, 7), Scalar::ZERO);
    }

    #[test]
    fn arithmetic_matches_rational() {
        let cases = [(1i64, 2i64), (-3, 7), (5, 1), (0, 1), (-1, 3)];
        for &(an, ad) in &cases {
            for &(bn, bd) in &cases {
                let (a, b) = (s(an, ad), s(bn, bd));
                assert_eq!(a.add(&b).to_rational(), ratio(an, ad) + ratio(bn, bd));
                assert_eq!(a.sub(&b).to_rational(), ratio(an, ad) - ratio(bn, bd));
                assert_eq!(a.mul(&b).to_rational(), ratio(an, ad) * ratio(bn, bd));
                if bn != 0 {
                    assert_eq!(a.div(&b).to_rational(), ratio(an, ad) / ratio(bn, bd));
                }
                assert_eq!(
                    a.sub_mul(&b, &s(2, 3)).to_rational(),
                    ratio(an, ad) - ratio(bn, bd) * ratio(2, 3)
                );
                assert_eq!(
                    a.add_mul(&b, &s(-2, 3)).to_rational(),
                    ratio(an, ad) + ratio(bn, bd) * ratio(-2, 3)
                );
                assert_eq!(
                    a.cmp_value(&b),
                    ratio(an, ad).cmp(&ratio(bn, bd)),
                    "cmp {an}/{ad} vs {bn}/{bd}"
                );
            }
        }
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let huge = Scalar::Small(i64::MAX, 1);
        let squared = huge.mul(&huge);
        assert!(matches!(squared, Scalar::Big(_)), "must promote");
        assert_eq!(
            squared.to_rational(),
            Rational::from(BigInt::from(i64::MAX)) * Rational::from(BigInt::from(i64::MAX))
        );
        // Dividing back demotes to the small representation.
        let back = squared.div(&huge);
        assert_eq!(back, huge);
        assert!(matches!(back, Scalar::Small(..)));
        // i64::MIN negation corner case.
        let min = Scalar::Small(i64::MIN, 1);
        assert_eq!(min.neg().to_rational(), -Rational::from(i64::MIN));
        assert_eq!(min.recip().mul(&min), Scalar::ONE);
    }

    #[test]
    fn predicates() {
        assert!(Scalar::ZERO.is_zero());
        assert!(!Scalar::ZERO.is_positive());
        assert!(s(1, 2).is_positive());
        assert!(s(-1, 2).is_negative());
        assert!(Scalar::ONE.is_unit());
        assert!(s(-1, 1).is_unit());
        assert!(!s(1, 2).is_unit());
    }

    #[test]
    fn display_matches_rational() {
        assert_eq!(s(-7, 3).to_string(), "-7/3");
        assert_eq!(Scalar::from_int(4).to_string(), "4");
    }
}
