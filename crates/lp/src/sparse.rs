//! Column-major sparse storage for standard-form constraint matrices.
//!
//! The elemental-inequality matrix of the Shannon cone `Γ_n` is more than 95%
//! structural zeros (every row touches at most four of the `2^n − 1` entropy
//! variables), so the revised simplex stores `A` as a vector of sparse
//! columns: each column is a row-sorted list of `(row, value)` pairs.  Columns
//! are exactly what the revised method consumes — pricing takes a sparse dot
//! product of a column with the dual vector, and the FTRAN of an entering
//! column starts from its sparse form.

use crate::scalar::Scalar;

/// An `m × n` sparse matrix stored by columns.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: Vec<Vec<(usize, Scalar)>>,
}

impl SparseMatrix {
    /// Creates an empty matrix with `rows` rows and no columns.
    pub fn new(rows: usize) -> SparseMatrix {
        SparseMatrix {
            rows,
            cols: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Total number of stored (nonzero) entries.
    pub fn num_nonzeros(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Appends a column given as `(row, value)` pairs and returns its index.
    ///
    /// Zero values are dropped, duplicate rows are summed, and the stored
    /// column is sorted by row.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn push_col(&mut self, entries: impl IntoIterator<Item = (usize, Scalar)>) -> usize {
        let mut col: Vec<(usize, Scalar)> = Vec::new();
        for (row, value) in entries {
            assert!(row < self.rows, "row {row} out of range");
            col.push((row, value));
        }
        col.sort_by_key(|(row, _)| *row);
        col.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = earlier.1.add(&later.1);
                true
            } else {
                false
            }
        });
        col.retain(|(_, value)| !value.is_zero());
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// The sparse entries of column `j`, sorted by row.
    pub fn col(&self, j: usize) -> &[(usize, Scalar)] {
        &self.cols[j]
    }

    /// Appends a new row given as `(column, value)` pairs and returns its
    /// index.  This is the growth direction of the lazy-separation LP: each
    /// violated elemental inequality becomes one appended row.  Existing
    /// columns stay row-sorted because the new row index is larger than every
    /// stored one.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range or repeats within `entries`
    /// (callers accumulate duplicate coefficients before appending).
    pub fn append_row(&mut self, entries: impl IntoIterator<Item = (usize, Scalar)>) -> usize {
        let row = self.rows;
        self.rows += 1;
        for (col, value) in entries {
            assert!(col < self.cols.len(), "column {col} out of range");
            if value.is_zero() {
                continue;
            }
            let column = &mut self.cols[col];
            assert!(
                column.last().is_none_or(|(r, _)| *r < row),
                "column {col} repeated in appended row"
            );
            column.push((row, value));
        }
        row
    }

    /// Scatters column `j` into the dense workspace `out` (length `rows`),
    /// which must be all-zero on entry.
    pub fn scatter_col(&self, j: usize, out: &mut [Scalar]) {
        for (row, value) in &self.cols[j] {
            out[*row] = value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: i64) -> Scalar {
        Scalar::from_int(v)
    }

    #[test]
    fn columns_are_normalized() {
        let mut a = SparseMatrix::new(4);
        let j = a.push_col(vec![(2, s(1)), (0, s(3)), (2, s(-1)), (1, s(0))]);
        assert_eq!(j, 0);
        // Row 2 cancels, row 1 was zero: only row 0 remains.
        assert_eq!(a.col(0), &[(0, s(3))]);
        assert_eq!(a.num_nonzeros(), 1);
        assert_eq!(a.num_cols(), 1);
        assert_eq!(a.num_rows(), 4);
    }

    #[test]
    fn scatter_roundtrips() {
        let mut a = SparseMatrix::new(3);
        a.push_col(vec![(0, s(5)), (2, s(-2))]);
        let mut dense = vec![Scalar::ZERO; 3];
        a.scatter_col(0, &mut dense);
        assert_eq!(dense, vec![s(5), Scalar::ZERO, s(-2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rows_panic() {
        let mut a = SparseMatrix::new(2);
        a.push_col(vec![(2, s(1))]);
    }

    #[test]
    fn appended_rows_extend_existing_columns() {
        let mut a = SparseMatrix::new(1);
        a.push_col(vec![(0, s(1))]);
        a.push_col(vec![]);
        let row = a.append_row(vec![(0, s(2)), (1, s(-1)), (0, s(0))]);
        assert_eq!(row, 1);
        assert_eq!(a.num_rows(), 2);
        assert_eq!(a.col(0), &[(0, s(1)), (1, s(2))]);
        assert_eq!(a.col(1), &[(1, s(-1))]);
        assert_eq!(a.num_nonzeros(), 3);
    }
}
