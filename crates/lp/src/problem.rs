//! A small modelling layer on top of the standard-form simplex solver.
//!
//! [`LpProblem`] lets callers state problems with named variables, free or
//! non-negative bounds, `≤` / `≥` / `=` constraints and either optimization
//! sense.  Internally the problem is rewritten into standard form (free
//! variables split into differences of non-negatives, inequality rows given
//! slack/surplus columns) and handed to [`crate::solve_standard_form`].

use crate::simplex::{solve_standard_form, SimplexOutcome};
use bqc_arith::Rational;
use std::fmt;
use std::ops::Index;

/// Identifier of a decision variable in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Identifier of a constraint in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub usize);

/// Optimization sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Domain of a decision variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarBound {
    /// `x ≥ 0`.
    NonNegative,
    /// Unrestricted in sign.
    Free,
}

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Solver status for an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

#[derive(Clone, Debug)]
struct Constraint {
    coeffs: Vec<(VarId, Rational)>,
    op: ConstraintOp,
    rhs: Rational,
}

#[derive(Clone, Debug)]
struct Variable {
    name: String,
    bound: VarBound,
}

/// A linear program with named variables.
///
/// See the crate-level documentation for a worked example.
#[derive(Clone, Debug)]
pub struct LpProblem {
    sense: Sense,
    variables: Vec<Variable>,
    objective: Vec<(VarId, Rational)>,
    constraints: Vec<Constraint>,
}

/// The result of [`LpProblem::solve`].
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Solver status.
    pub status: LpStatus,
    /// Optimal objective value in the problem's own sense, if `status` is
    /// [`LpStatus::Optimal`].
    pub objective: Option<Rational>,
    /// One value per declared variable (all zero unless `status` is optimal).
    pub values: Vec<Rational>,
}

impl Index<VarId> for LpSolution {
    type Output = Rational;
    fn index(&self, id: VarId) -> &Rational {
        &self.values[id.0]
    }
}

impl LpSolution {
    /// Returns the value assigned to `var` (zero when not optimal).
    pub fn value(&self, var: VarId) -> &Rational {
        &self.values[var.0]
    }

    /// Returns `true` iff the problem was solved to optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

impl LpProblem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> LpProblem {
        LpProblem {
            sense,
            variables: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declares a new decision variable and returns its identifier.
    pub fn add_variable(&mut self, name: impl Into<String>, bound: VarBound) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            bound,
        });
        id
    }

    /// Number of declared variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn variable_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Sets the objective as a sparse list of `(variable, coefficient)` pairs.
    pub fn set_objective(&mut self, coeffs: impl IntoIterator<Item = (VarId, Rational)>) {
        self.objective = coeffs.into_iter().collect();
    }

    /// Adds a linear constraint `Σ coeff·var  op  rhs`.
    pub fn add_constraint(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, Rational)>,
        op: ConstraintOp,
        rhs: Rational,
    ) -> ConstraintId {
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().collect(),
            op,
            rhs,
        });
        id
    }

    /// Solves the problem with the exact two-phase simplex method.
    pub fn solve(&self) -> LpSolution {
        // Column layout of the standard form:
        //   for each variable: one column if NonNegative, two (x⁺, x⁻) if Free;
        //   then one slack/surplus column per inequality constraint.
        let mut column_of_var: Vec<(usize, Option<usize>)> =
            Vec::with_capacity(self.variables.len());
        let mut next_col = 0usize;
        for var in &self.variables {
            match var.bound {
                VarBound::NonNegative => {
                    column_of_var.push((next_col, None));
                    next_col += 1;
                }
                VarBound::Free => {
                    column_of_var.push((next_col, Some(next_col + 1)));
                    next_col += 2;
                }
            }
        }
        let num_slacks = self
            .constraints
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        let n = next_col + num_slacks;
        let m = self.constraints.len();

        let mut a = vec![vec![Rational::zero(); n]; m];
        let mut b = vec![Rational::zero(); m];
        let mut slack_col = next_col;
        for (i, constraint) in self.constraints.iter().enumerate() {
            for (var, coeff) in &constraint.coeffs {
                let (pos, neg) = column_of_var[var.0];
                a[i][pos] = &a[i][pos] + coeff;
                if let Some(neg) = neg {
                    a[i][neg] = &a[i][neg] - coeff;
                }
            }
            match constraint.op {
                ConstraintOp::Le => {
                    a[i][slack_col] = Rational::one();
                    slack_col += 1;
                }
                ConstraintOp::Ge => {
                    a[i][slack_col] = -Rational::one();
                    slack_col += 1;
                }
                ConstraintOp::Eq => {}
            }
            b[i] = constraint.rhs.clone();
        }

        let mut c = vec![Rational::zero(); n];
        for (var, coeff) in &self.objective {
            let signed = match self.sense {
                Sense::Minimize => coeff.clone(),
                Sense::Maximize => -coeff,
            };
            let (pos, neg) = column_of_var[var.0];
            c[pos] = &c[pos] + &signed;
            if let Some(neg) = neg {
                c[neg] = &c[neg] - &signed;
            }
        }

        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Infeasible => LpSolution {
                status: LpStatus::Infeasible,
                objective: None,
                values: vec![Rational::zero(); self.variables.len()],
            },
            SimplexOutcome::Unbounded => LpSolution {
                status: LpStatus::Unbounded,
                objective: None,
                values: vec![Rational::zero(); self.variables.len()],
            },
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                let mut values = Vec::with_capacity(self.variables.len());
                for (pos, neg) in &column_of_var {
                    let mut v = solution[*pos].clone();
                    if let Some(neg) = neg {
                        v = &v - &solution[*neg];
                    }
                    values.push(v);
                }
                let objective = match self.sense {
                    Sense::Minimize => objective,
                    Sense::Maximize => -objective,
                };
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: Some(objective),
                    values,
                }
            }
        }
    }

    /// Convenience: checks whether the constraint system admits any solution
    /// (ignores the objective).
    pub fn is_feasible(&self) -> bool {
        let mut clone = self.clone();
        clone.objective.clear();
        clone.solve().status == LpStatus::Optimal
    }
}

impl fmt::Display for LpProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        write!(f, "{sense} ")?;
        if self.objective.is_empty() {
            write!(f, "0")?;
        }
        for (i, (var, coeff)) in self.objective.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}*{}", coeff, self.variables[var.0].name)?;
        }
        writeln!(f)?;
        for constraint in &self.constraints {
            write!(f, "  s.t. ")?;
            for (i, (var, coeff)) in constraint.coeffs.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{}*{}", coeff, self.variables[var.0].name)?;
            }
            let op = match constraint.op {
                ConstraintOp::Le => "<=",
                ConstraintOp::Ge => ">=",
                ConstraintOp::Eq => "=",
            };
            writeln!(f, " {} {}", op, constraint.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    #[test]
    fn maximization_with_slacks() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(3)), (y, int(5))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(4));
        lp.add_constraint(vec![(y, int(2))], ConstraintOp::Le, int(12));
        lp.add_constraint(vec![(x, int(3)), (y, int(2))], ConstraintOp::Le, int(18));
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Some(int(36)));
        assert_eq!(sol[x], int(2));
        assert_eq!(sol[y], int(6));
    }

    #[test]
    fn free_variables() {
        // minimize |style| program: minimize x subject to x >= -5 with x free -> x = -5.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::Free);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(-5));
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol[x], int(-5));
        assert_eq!(sol.objective, Some(int(-5)));
    }

    #[test]
    fn unbounded_maximization() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(3));
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_constraints_and_fractions() {
        // minimize 2x + 3y s.t. x + y = 1, x - y = 1/3 -> x = 2/3, y = 1/3.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(2)), (y, int(3))]);
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(1));
        lp.add_constraint(
            vec![(x, int(1)), (y, int(-1))],
            ConstraintOp::Eq,
            ratio(1, 3),
        );
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol[x], ratio(2, 3));
        assert_eq!(sol[y], ratio(1, 3));
        assert_eq!(sol.objective, Some(ratio(7, 3)));
    }

    #[test]
    fn feasibility_helper() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(2));
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(5));
        assert!(lp.is_feasible());
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn repeated_variable_coefficients_accumulate() {
        // x + x <= 4 behaves as 2x <= 4.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1)), (x, int(1))], ConstraintOp::Le, int(4));
        let sol = lp.solve();
        assert_eq!(sol[x], int(2));
    }

    #[test]
    fn display_renders_model() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(1));
        let text = lp.to_string();
        assert!(text.contains("minimize 1*x"));
        assert!(text.contains(">= 1"));
    }

    #[test]
    fn infeasible_equalities_with_free_vars() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::Free);
        let y = lp.add_variable("y", VarBound::Free);
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(1));
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(2));
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }
}
