//! A small modelling layer on top of the standard-form simplex solver.
//!
//! [`LpProblem`] lets callers state problems with named variables, free or
//! non-negative bounds, `≤` / `≥` / `=` constraints and either optimization
//! sense.  Internally the problem is rewritten into a **sparse column-major**
//! standard form (free variables split into differences of non-negatives,
//! inequality rows given slack/surplus columns, rows re-signed so the
//! right-hand side is non-negative) and handed to the revised simplex
//! (the `revised` module).
//!
//! Callers that solve sequences of same-shaped programs can carry the
//! optimal basis from one solve to the next with [`LpProblem::solve_from`].

use crate::revised::{solve_sparse_full, SimplexOutcome};
use crate::scalar::Scalar;
use crate::sparse::SparseMatrix;
use bqc_arith::Rational;
use bqc_obs::{Budget, Exhausted};
use std::borrow::Cow;
use std::fmt;
use std::ops::Index;

/// Identifier of a decision variable in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Identifier of a constraint in an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub usize);

/// Optimization sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Domain of a decision variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarBound {
    /// `x ≥ 0`.
    NonNegative,
    /// Unrestricted in sign.
    Free,
}

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Solver status for an [`LpProblem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

// Coefficients are stored in the solver's small-rational `Scalar` form:
// Shannon-cone rows are all ±1 entries, and keeping them as `Rational` made
// every standard-form build clone two heap limb vectors per nonzero.
#[derive(Clone, Debug)]
struct Constraint {
    coeffs: Vec<(VarId, Scalar)>,
    op: ConstraintOp,
    rhs: Scalar,
}

// `name` is lazy: anonymous variables (the 2^n − 1 Shannon-cone columns)
// never pay a `format!` unless a name is actually requested.
#[derive(Clone, Debug)]
struct Variable {
    name: Option<String>,
    bound: VarBound,
}

/// A linear program with named variables.
///
/// See the crate-level documentation for a worked example.
#[derive(Clone, Debug)]
pub struct LpProblem {
    sense: Sense,
    variables: Vec<Variable>,
    objective: Vec<(VarId, Rational)>,
    constraints: Vec<Constraint>,
}

/// The result of [`LpProblem::solve`].
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Solver status.
    pub status: LpStatus,
    /// Optimal objective value in the problem's own sense, if `status` is
    /// [`LpStatus::Optimal`].
    pub objective: Option<Rational>,
    /// One value per declared variable (all zero unless `status` is optimal).
    pub values: Vec<Rational>,
    /// One dual multiplier per declared constraint, in the problem's own
    /// row orientation and sense.  Populated only by
    /// [`LpProblem::solve_with_duals`] (dual extraction costs one BTRAN per
    /// solve, which pure feasibility probes should not pay); `None` from
    /// every other entry point.
    pub duals: Option<Vec<Rational>>,
}

impl Index<VarId> for LpSolution {
    type Output = Rational;
    fn index(&self, id: VarId) -> &Rational {
        &self.values[id.0]
    }
}

impl LpSolution {
    /// Returns the value assigned to `var` (zero when not optimal).
    pub fn value(&self, var: VarId) -> &Rational {
        &self.values[var.0]
    }

    /// Returns `true` iff the problem was solved to optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

impl LpProblem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> LpProblem {
        LpProblem {
            sense,
            variables: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declares a new decision variable and returns its identifier.
    pub fn add_variable(&mut self, name: impl Into<String>, bound: VarBound) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: Some(name.into()),
            bound,
        });
        id
    }

    /// Declares a new **anonymous** decision variable.
    ///
    /// No name string is allocated; [`LpProblem::variable_name`] synthesizes
    /// `x{id}` on demand.  The Shannon-cone programs of `bqc-iip` declare
    /// `2^n − 1` columns per probe, so label laziness is measurable there.
    pub fn add_variable_anonymous(&mut self, bound: VarBound) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable { name: None, bound });
        id
    }

    /// Number of declared variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (synthesized as `x{id}` for anonymous variables).
    pub fn variable_name(&self, var: VarId) -> Cow<'_, str> {
        match &self.variables[var.0].name {
            Some(name) => Cow::Borrowed(name.as_str()),
            None => Cow::Owned(format!("x{}", var.0)),
        }
    }

    /// Sets the objective as a sparse list of `(variable, coefficient)` pairs.
    pub fn set_objective(&mut self, coeffs: impl IntoIterator<Item = (VarId, Rational)>) {
        self.objective = coeffs.into_iter().collect();
    }

    /// Adds a linear constraint `Σ coeff·var  op  rhs`.
    pub fn add_constraint(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, Rational)>,
        op: ConstraintOp,
        rhs: Rational,
    ) -> ConstraintId {
        self.add_constraint_scaled(
            coeffs
                .into_iter()
                .map(|(var, coeff)| (var, Scalar::from_rational(coeff))),
            op,
            Scalar::from_rational(rhs),
        )
    }

    /// Adds a linear constraint with small integer coefficients without any
    /// `Rational` round-trip — elemental Shannon rows are all ±1 entries.
    pub fn add_constraint_small(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, i64)>,
        op: ConstraintOp,
        rhs: i64,
    ) -> ConstraintId {
        self.add_constraint_scaled(
            coeffs
                .into_iter()
                .map(|(var, coeff)| (var, Scalar::from_int(coeff))),
            op,
            Scalar::from_int(rhs),
        )
    }

    /// Adds a linear constraint already in the solver's [`Scalar`] form.
    pub fn add_constraint_scaled(
        &mut self,
        coeffs: impl IntoIterator<Item = (VarId, Scalar)>,
        op: ConstraintOp,
        rhs: Scalar,
    ) -> ConstraintId {
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().collect(),
            op,
            rhs,
        });
        id
    }

    /// Builds the sparse column-major standard form.  `with_objective = false`
    /// leaves the cost vector at zero (for pure feasibility probes).
    pub(crate) fn standard_form(&self, with_objective: bool) -> StandardForm {
        // Column layout of the standard form:
        //   for each variable: one column if NonNegative, two (x⁺, x⁻) if Free;
        //   then one slack/surplus column per inequality constraint.
        let mut column_of_var: Vec<(usize, Option<usize>)> =
            Vec::with_capacity(self.variables.len());
        let mut next_col = 0usize;
        for var in &self.variables {
            match var.bound {
                VarBound::NonNegative => {
                    column_of_var.push((next_col, None));
                    next_col += 1;
                }
                VarBound::Free => {
                    column_of_var.push((next_col, Some(next_col + 1)));
                    next_col += 2;
                }
            }
        }
        let num_slacks = self
            .constraints
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        let n = next_col + num_slacks;
        let m = self.constraints.len();

        // Rows with a negative right-hand side are re-signed here, so the
        // solver always sees `b ≥ 0`.
        let negate: Vec<bool> = self
            .constraints
            .iter()
            .map(|c| c.rhs.is_negative())
            .collect();
        let mut entries: Vec<Vec<(usize, Scalar)>> = vec![Vec::new(); n];
        let mut slack_col = next_col;
        for (i, constraint) in self.constraints.iter().enumerate() {
            for (var, coeff) in &constraint.coeffs {
                let signed = if negate[i] {
                    coeff.neg()
                } else {
                    coeff.clone()
                };
                let (pos, neg) = column_of_var[var.0];
                entries[pos].push((i, signed.clone()));
                if let Some(neg) = neg {
                    entries[neg].push((i, signed.neg()));
                }
            }
            let slack_sign = match constraint.op {
                ConstraintOp::Le => Some(1i64),
                ConstraintOp::Ge => Some(-1i64),
                ConstraintOp::Eq => None,
            };
            if let Some(sign) = slack_sign {
                let sign = if negate[i] { -sign } else { sign };
                entries[slack_col].push((i, Scalar::from_int(sign)));
                slack_col += 1;
            }
        }
        let mut a = SparseMatrix::new(m);
        for col in entries {
            a.push_col(col);
        }
        let b: Vec<Scalar> = self
            .constraints
            .iter()
            .zip(&negate)
            .map(|(constraint, flip)| {
                if *flip {
                    constraint.rhs.neg()
                } else {
                    constraint.rhs.clone()
                }
            })
            .collect();

        let mut c = vec![Scalar::ZERO; n];
        if with_objective {
            for (var, coeff) in &self.objective {
                let signed = Scalar::from_rational(match self.sense {
                    Sense::Minimize => coeff.clone(),
                    Sense::Maximize => -coeff,
                });
                let (pos, neg) = column_of_var[var.0];
                c[pos] = c[pos].add(&signed);
                if let Some(neg) = neg {
                    c[neg] = c[neg].sub(&signed);
                }
            }
        }
        StandardForm {
            a,
            b,
            c,
            column_of_var,
            negate,
        }
    }

    /// Solves the problem with the exact sparse revised simplex method.
    pub fn solve(&self) -> LpSolution {
        self.solve_from(None).0
    }

    /// Solves the problem, optionally **warm-starting** from the basis of a
    /// previous solve, and returns the optimal basis for reuse.
    ///
    /// The returned [`LpBasis`] (present when the solve ended
    /// [`LpStatus::Optimal`] on a clean basis) can be fed back into
    /// `solve_from` on the *next* problem.  Warm starting is an optimization
    /// only and never affects the answer: a basis whose shape does not match
    /// this problem, or that is singular or infeasible for it, is silently
    /// ignored and the solve falls back to a cold start.  It pays off
    /// precisely when consecutive problems share their standard-form layout
    /// and most of their constraints — e.g. the repeated Shannon-cone probes
    /// of `bqc-iip`, where only the handful of disjunct rows change between
    /// solves.
    pub fn solve_from(&self, warm: Option<&LpBasis>) -> (LpSolution, Option<LpBasis>) {
        self.solve_from_full(warm, false)
    }

    /// Solves the problem and additionally extracts the optimal **dual
    /// multipliers** into [`LpSolution::duals`] (one BTRAN over the final
    /// basis inverse — skipped by the plain [`LpProblem::solve`], which most
    /// feasibility-probing callers are better served by).
    pub fn solve_with_duals(&self) -> LpSolution {
        self.solve_from_full(None, true).0
    }

    /// [`LpProblem::solve_from`] under a decision [`Budget`]: each simplex
    /// pivot charges the budget, and an exhausted budget aborts the solve
    /// with `Err` before any result is produced — a budget-aborted solve
    /// never returns a partial solution or basis.
    pub fn solve_from_budgeted(
        &self,
        warm: Option<&LpBasis>,
        budget: &Budget,
    ) -> Result<(LpSolution, Option<LpBasis>), Exhausted> {
        self.solve_from_budgeted_full(warm, false, budget)
    }

    fn solve_from_full(
        &self,
        warm: Option<&LpBasis>,
        want_duals: bool,
    ) -> (LpSolution, Option<LpBasis>) {
        self.solve_from_budgeted_full(warm, want_duals, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    fn solve_from_budgeted_full(
        &self,
        warm: Option<&LpBasis>,
        want_duals: bool,
        budget: &Budget,
    ) -> Result<(LpSolution, Option<LpBasis>), Exhausted> {
        let sf = self.standard_form(true);
        let m = sf.a.num_rows();
        let n = sf.a.num_cols();
        let warm_cols = warm.and_then(|basis| {
            (basis.rows == m && basis.cols_total == n).then_some(basis.cols.as_slice())
        });
        let result = solve_sparse_full(&sf.a, &sf.b, &sf.c, warm_cols, want_duals, budget)?;
        let basis = result.basis.map(|cols| LpBasis {
            cols,
            rows: m,
            cols_total: n,
        });
        let solution = match result.outcome {
            SimplexOutcome::Infeasible => LpSolution {
                status: LpStatus::Infeasible,
                objective: None,
                values: vec![Rational::zero(); self.variables.len()],
                duals: None,
            },
            SimplexOutcome::Unbounded => LpSolution {
                status: LpStatus::Unbounded,
                objective: None,
                values: vec![Rational::zero(); self.variables.len()],
                duals: None,
            },
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                let mut values = Vec::with_capacity(self.variables.len());
                for (pos, neg) in &sf.column_of_var {
                    let mut v = solution[*pos].clone();
                    if let Some(neg) = neg {
                        v = &v - &solution[*neg];
                    }
                    values.push(v);
                }
                let objective = match self.sense {
                    Sense::Minimize => objective,
                    Sense::Maximize => -objective,
                };
                // Map the standard-form duals back to the declared rows:
                // re-signed rows flip their multiplier, and a maximization
                // (solved as minimize -c) flips every multiplier.
                let duals = result.duals.map(|ys| {
                    ys.into_iter()
                        .zip(&sf.negate)
                        .map(|(y, flip)| {
                            let y = if *flip { -y } else { y };
                            match self.sense {
                                Sense::Minimize => y,
                                Sense::Maximize => -y,
                            }
                        })
                        .collect()
                });
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: Some(objective),
                    values,
                    duals,
                }
            }
        };
        Ok((solution, basis))
    }

    /// Convenience: checks whether the constraint system admits any solution
    /// (ignores the objective).
    ///
    /// This builds the standard form with a zero cost vector directly — it
    /// does **not** clone the problem, so probing feasibility of a large
    /// Shannon-cone program costs exactly one phase-1 solve.
    pub fn is_feasible(&self) -> bool {
        self.is_feasible_budgeted(&Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`LpProblem::is_feasible`] under a decision [`Budget`]; `Err` means
    /// the budget ran out before feasibility was decided.
    pub fn is_feasible_budgeted(&self, budget: &Budget) -> Result<bool, Exhausted> {
        let sf = self.standard_form(false);
        Ok(matches!(
            solve_sparse_full(&sf.a, &sf.b, &sf.c, None, false, budget)?.outcome,
            SimplexOutcome::Optimal { .. }
        ))
    }
}

/// The sparse standard form of an [`LpProblem`].
pub(crate) struct StandardForm {
    pub(crate) a: SparseMatrix,
    pub(crate) b: Vec<Scalar>,
    pub(crate) c: Vec<Scalar>,
    pub(crate) column_of_var: Vec<(usize, Option<usize>)>,
    /// Which declared rows were re-signed to make the standard-form rhs
    /// non-negative (their duals flip sign on the way back out).
    pub(crate) negate: Vec<bool>,
}

/// An opaque optimal basis returned by [`LpProblem::solve_from`], usable to
/// warm-start a later solve of a problem with the same standard-form shape.
///
/// The basis records which standard-form column is basic in each constraint
/// row, plus the `(rows, columns)` fingerprint of the program it came from;
/// `solve_from` ignores a basis whose fingerprint does not match the problem
/// being solved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpBasis {
    pub(crate) cols: Vec<usize>,
    pub(crate) rows: usize,
    pub(crate) cols_total: usize,
}

impl LpBasis {
    /// Number of constraint rows of the program this basis came from.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of standard-form columns of the program this basis came from.
    pub fn num_cols(&self) -> usize {
        self.cols_total
    }
}

impl fmt::Display for LpProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        write!(f, "{sense} ")?;
        if self.objective.is_empty() {
            write!(f, "0")?;
        }
        for (i, (var, coeff)) in self.objective.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}*{}", coeff, self.variable_name(*var))?;
        }
        writeln!(f)?;
        for constraint in &self.constraints {
            write!(f, "  s.t. ")?;
            for (i, (var, coeff)) in constraint.coeffs.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{}*{}", coeff, self.variable_name(*var))?;
            }
            let op = match constraint.op {
                ConstraintOp::Le => "<=",
                ConstraintOp::Ge => ">=",
                ConstraintOp::Eq => "=",
            };
            writeln!(f, " {} {}", op, constraint.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    #[test]
    fn maximization_with_slacks() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(3)), (y, int(5))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(4));
        lp.add_constraint(vec![(y, int(2))], ConstraintOp::Le, int(12));
        lp.add_constraint(vec![(x, int(3)), (y, int(2))], ConstraintOp::Le, int(18));
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Some(int(36)));
        assert_eq!(sol[x], int(2));
        assert_eq!(sol[y], int(6));
    }

    #[test]
    fn free_variables() {
        // minimize |style| program: minimize x subject to x >= -5 with x free -> x = -5.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::Free);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(-5));
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol[x], int(-5));
        assert_eq!(sol.objective, Some(int(-5)));
    }

    #[test]
    fn unbounded_maximization() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(3));
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_constraints_and_fractions() {
        // minimize 2x + 3y s.t. x + y = 1, x - y = 1/3 -> x = 2/3, y = 1/3.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(2)), (y, int(3))]);
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(1));
        lp.add_constraint(
            vec![(x, int(1)), (y, int(-1))],
            ConstraintOp::Eq,
            ratio(1, 3),
        );
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol[x], ratio(2, 3));
        assert_eq!(sol[y], ratio(1, 3));
        assert_eq!(sol.objective, Some(ratio(7, 3)));
    }

    #[test]
    fn feasibility_helper() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(2));
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(5));
        assert!(lp.is_feasible());
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn repeated_variable_coefficients_accumulate() {
        // x + x <= 4 behaves as 2x <= 4.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1)), (x, int(1))], ConstraintOp::Le, int(4));
        let sol = lp.solve();
        assert_eq!(sol[x], int(2));
    }

    #[test]
    fn display_renders_model() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(1))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(1));
        let text = lp.to_string();
        assert!(text.contains("minimize 1*x"));
        assert!(text.contains(">= 1"));
    }

    #[test]
    fn solve_from_reuses_the_previous_basis() {
        // Two problems with the same shape but different data.
        let build = |rhs: i64| {
            let mut lp = LpProblem::new(Sense::Minimize);
            let x = lp.add_variable("x", VarBound::NonNegative);
            let y = lp.add_variable("y", VarBound::NonNegative);
            lp.set_objective(vec![(x, int(1)), (y, int(2))]);
            lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Ge, int(rhs));
            lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(rhs + 3));
            lp
        };
        let (first, basis) = build(2).solve_from(None);
        assert_eq!(first.status, LpStatus::Optimal);
        let basis = basis.expect("optimal solve yields a basis");
        assert_eq!(basis.num_rows(), 2);
        let (warm, _) = build(5).solve_from(Some(&basis));
        let (cold, _) = build(5).solve_from(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn solve_from_ignores_mismatched_bases() {
        let mut small = LpProblem::new(Sense::Minimize);
        let x = small.add_variable("x", VarBound::NonNegative);
        small.set_objective(vec![(x, int(1))]);
        small.add_constraint(vec![(x, int(1))], ConstraintOp::Ge, int(1));
        let (_, basis) = small.solve_from(None);
        let basis = basis.expect("optimal basis");

        let mut other = LpProblem::new(Sense::Maximize);
        let a = other.add_variable("a", VarBound::NonNegative);
        let b = other.add_variable("b", VarBound::NonNegative);
        other.set_objective(vec![(a, int(3)), (b, int(5))]);
        other.add_constraint(vec![(a, int(1))], ConstraintOp::Le, int(4));
        other.add_constraint(vec![(b, int(2))], ConstraintOp::Le, int(12));
        other.add_constraint(vec![(a, int(3)), (b, int(2))], ConstraintOp::Le, int(18));
        let (sol, _) = other.solve_from(Some(&basis));
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Some(int(36)));
    }

    #[test]
    fn budget_exhaustion_aborts_without_an_answer() {
        use bqc_obs::{BudgetResource, BudgetSpec};
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x", VarBound::NonNegative);
        let y = lp.add_variable("y", VarBound::NonNegative);
        lp.set_objective(vec![(x, int(3)), (y, int(5))]);
        lp.add_constraint(vec![(x, int(1))], ConstraintOp::Le, int(4));
        lp.add_constraint(vec![(y, int(2))], ConstraintOp::Le, int(12));
        lp.add_constraint(vec![(x, int(3)), (y, int(2))], ConstraintOp::Le, int(18));
        let spec = BudgetSpec {
            max_pivots: Some(1),
            ..BudgetSpec::UNLIMITED
        };
        let err = lp
            .solve_from_budgeted(None, &spec.start())
            .expect_err("one pivot cannot finish this program");
        assert_eq!(err.resource, BudgetResource::Pivots);
        // The same program still solves fine without a budget, and under a
        // generous one the answer is identical.
        let unbudgeted = lp.solve();
        assert_eq!(unbudgeted.objective, Some(int(36)));
        let generous = BudgetSpec {
            max_pivots: Some(1_000_000),
            ..BudgetSpec::UNLIMITED
        };
        let (budgeted, _) = lp
            .solve_from_budgeted(None, &generous.start())
            .expect("generous budget suffices");
        assert_eq!(budgeted.objective, unbudgeted.objective);
        assert_eq!(budgeted.values, unbudgeted.values);
    }

    #[test]
    fn infeasible_equalities_with_free_vars() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x", VarBound::Free);
        let y = lp.add_variable("y", VarBound::Free);
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(1));
        lp.add_constraint(vec![(x, int(1)), (y, int(1))], ConstraintOp::Eq, int(2));
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }
}
