//! Sparse revised simplex with a product-form basis inverse.
//!
//! This is the production solver behind [`crate::LpProblem`].  Compared with
//! the dense tableau retained in [`crate::oracle`], it
//!
//! * stores `A` column-major and sparse ([`crate::sparse::SparseMatrix`]) —
//!   the Shannon-cone elemental matrix is >95% structural zeros;
//! * represents the basis inverse as an **eta file** (product form): each
//!   pivot appends one sparse Gauss–Jordan eta vector, and the file is
//!   periodically collapsed by refactorizing (re-inverting) the current basis
//!   from scratch;
//! * prices with **Dantzig's rule over a rotating candidate window** (partial
//!   pricing) and falls back to **Bland's rule** after a run of degenerate
//!   pivots, which restores the termination guarantee without paying Bland's
//!   slow convergence on every iteration;
//! * performs all arithmetic in [`crate::scalar::Scalar`], the `i128`
//!   small-rational representation that promotes to `BigRational` only on
//!   overflow — pivots on ±1 entries (the overwhelming majority here) never
//!   allocate;
//! * accepts a **warm-start basis**: a caller that solves a sequence of
//!   same-shaped programs can seed each solve with the previous optimal
//!   basis and skip phase 1 entirely whenever that basis is still feasible.
//!
//! Phase 1 uses a **crash basis**: every row that owns a singleton column
//! with a feasible ratio (in particular every slack/surplus row with zero
//! right-hand side, i.e. almost every elemental-inequality row) starts basic
//! on that column, and only the remaining rows get artificial variables.  On
//! the cone programs this leaves a handful of artificials instead of one per
//! row.

use crate::scalar::Scalar;
use crate::sparse::SparseMatrix;
use bqc_arith::Rational;
use bqc_obs::{Budget, Exhausted, LazyCounter, LazyHistogram};

static PIVOTS: LazyCounter = LazyCounter::new("bqc_lp_pivots_total");
static DEGENERATE_PIVOTS: LazyCounter = LazyCounter::new("bqc_lp_degenerate_pivots_total");
static REINVERSIONS: LazyCounter = LazyCounter::new("bqc_lp_reinversions_total");
static BLAND_FALLBACKS: LazyCounter = LazyCounter::new("bqc_lp_bland_fallbacks_total");
static SOLVES: LazyCounter = LazyCounter::new("bqc_lp_solves_total");
static RESUME_SOLVES: LazyCounter = LazyCounter::new("bqc_lp_resume_solves_total");
static WARM_START_HITS: LazyCounter = LazyCounter::new("bqc_lp_warm_start_hits_total");
static WARM_START_REJECTS: LazyCounter = LazyCounter::new("bqc_lp_warm_start_rejects_total");
static PIVOTS_PER_SOLVE: LazyHistogram = LazyHistogram::new("bqc_lp_pivots_per_solve");
static BUDGET_EXHAUSTED: LazyCounter = LazyCounter::new("bqc_lp_budget_exhausted_total");

/// Result of running the simplex method on a standard-form program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexOutcome {
    /// An optimal basic feasible solution was found.
    Optimal {
        /// Optimal objective value `c·x`.
        objective: Rational,
        /// Values of the standard-form variables (length = number of columns).
        solution: Vec<Rational>,
    },
    /// The constraint system `A x = b, x ≥ 0` has no solution.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

/// Outcome of [`solve_sparse`], carrying the final basis for warm-start reuse
/// and the optimal dual vector.
#[derive(Clone, Debug)]
pub(crate) struct SparseSolve {
    /// The classification and optimal point, as for the dense solver.
    pub outcome: SimplexOutcome,
    /// The optimal basis (one structural/slack column per row), when the
    /// solve ended `Optimal` with no artificial column left basic.
    pub basis: Option<Vec<usize>>,
    /// The optimal dual vector `y = c_B B⁻¹` (one multiplier per row), when
    /// the solve ended `Optimal`.  By strong duality `y·b` equals the
    /// optimal objective, and every column prices out non-negative; callers
    /// use this for Farkas-style certificate extraction.
    pub duals: Option<Vec<Rational>>,
}

/// Number of eta vectors accumulated before the basis is refactorized.
const REFACTOR_EVERY: usize = 64;

/// Consecutive degenerate pivots tolerated before switching to Bland's rule.
fn stall_limit(m: usize) -> usize {
    2 * m + 16
}

/// One Gauss–Jordan elementary matrix: identity except column `p`.
struct Eta {
    p: usize,
    /// Sparse column `p` of the matrix, **including** the diagonal entry
    /// `(p, 1/alpha_p)`.
    col: Vec<(usize, Scalar)>,
}

impl Eta {
    /// Builds the eta that maps the (dense) column `alpha` to `e_p`.
    fn from_pivot(alpha: &[Scalar], p: usize) -> Eta {
        let inv = alpha[p].recip();
        let mut col = Vec::with_capacity(8);
        for (i, value) in alpha.iter().enumerate() {
            if i == p {
                col.push((i, inv.clone()));
            } else if !value.is_zero() {
                col.push((i, value.mul(&inv).neg()));
            }
        }
        Eta { p, col }
    }
}

/// Applies the eta file left-to-right: computes `B⁻¹ v` in place.
fn ftran(etas: &[Eta], v: &mut [Scalar]) {
    for eta in etas {
        let vp = std::mem::take(&mut v[eta.p]);
        if vp.is_zero() {
            continue;
        }
        for (i, t) in &eta.col {
            v[*i] = v[*i].add_mul(t, &vp);
        }
    }
}

/// Applies the eta file right-to-left to a row vector: computes `u B⁻¹` in
/// place.
fn btran(etas: &[Eta], u: &mut [Scalar]) {
    for eta in etas.iter().rev() {
        let mut acc = Scalar::ZERO;
        for (i, t) in &eta.col {
            if !u[*i].is_zero() {
                acc = acc.add_mul(&u[*i], t);
            }
        }
        u[eta.p] = acc;
    }
}

/// Which objective the iteration loop is optimizing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Minimize the sum of artificial variables.
    One,
    /// Minimize the true cost vector.
    Two,
}

struct Solver<'a> {
    a: &'a SparseMatrix,
    b: &'a [Scalar],
    c: &'a [Scalar],
    m: usize,
    /// Structural + slack columns; `n..n + m` are virtual artificial columns.
    n: usize,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Basic variable values, indexed by row.
    x: Vec<Scalar>,
    etas: Vec<Eta>,
    /// Rotating start of the partial-pricing window.
    pricing_start: usize,
    /// Consecutive degenerate pivots; triggers the Bland fallback.
    stalls: usize,
    bland: bool,
    /// Pivots executed by this solve, observed into the per-solve histogram.
    pivots: u64,
    /// The decision's resource budget, charged one pivot at a time.  The
    /// unlimited budget makes every charge a single pointer test, so the
    /// unbudgeted hot path is unchanged.
    budget: &'a Budget,
}

impl<'a> Solver<'a> {
    /// Scatters column `j` (real or virtual artificial) into `out`, which
    /// must be all-zero.
    fn scatter(&self, j: usize, out: &mut [Scalar]) {
        if j < self.n {
            self.a.scatter_col(j, out);
        } else {
            out[j - self.n] = Scalar::ONE;
        }
    }

    /// Sparse entry count of column `j`.
    fn col_len(&self, j: usize) -> usize {
        if j < self.n {
            self.a.col(j).len()
        } else {
            1
        }
    }

    /// Re-inverts the basis `cols` from scratch, producing a fresh eta file
    /// and the pivot row assigned to each basis slot.  Returns `None` when
    /// the columns are linearly dependent (possible for caller-supplied
    /// warm-start bases, never for a basis reached by pivoting).
    fn reinvert(&self, cols: &[usize]) -> Option<(Vec<Eta>, Vec<usize>)> {
        let m = self.m;
        debug_assert_eq!(cols.len(), m);
        // Process sparsest columns first: their etas stay small and unit
        // pivots are found early.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&slot| self.col_len(cols[slot]));

        let mut etas: Vec<Eta> = Vec::with_capacity(m);
        let mut pivoted = vec![false; m];
        let mut row_of_slot = vec![usize::MAX; m];
        let mut work = vec![Scalar::ZERO; m];
        for &slot in &order {
            self.scatter(cols[slot], &mut work);
            ftran(&etas, &mut work);
            // Prefer a unit pivot (no fraction growth), then any nonzero.
            let mut pivot = None;
            for (i, value) in work.iter().enumerate() {
                if pivoted[i] || value.is_zero() {
                    continue;
                }
                if value.is_unit() {
                    pivot = Some(i);
                    break;
                }
                if pivot.is_none() {
                    pivot = Some(i);
                }
            }
            let Some(p) = pivot else {
                return None; // singular
            };
            etas.push(Eta::from_pivot(&work, p));
            pivoted[p] = true;
            row_of_slot[slot] = p;
            work.iter_mut().for_each(|v| *v = Scalar::ZERO);
        }
        Some((etas, row_of_slot))
    }

    /// Replaces the eta file by a fresh factorization of the current basis
    /// and recomputes the basic values from `b`.
    fn refactorize(&mut self) {
        REINVERSIONS.inc();
        bqc_obs::instant("reinversion");
        let cols = self.basis.clone();
        let (etas, row_of_slot) = self
            .reinvert(&cols)
            .expect("a reached basis is nonsingular");
        self.etas = etas;
        for (slot, &row) in row_of_slot.iter().enumerate() {
            self.basis[row] = cols[slot];
        }
        self.recompute_x();
    }

    /// Sets `x = B⁻¹ b`.
    fn recompute_x(&mut self) {
        let mut v = self.b.to_vec();
        ftran(&self.etas, &mut v);
        self.x = v;
    }

    /// Cost of column `j` under `phase`.
    fn cost(&self, phase: Phase, j: usize) -> Scalar {
        match phase {
            Phase::One => {
                if j >= self.n {
                    Scalar::ONE
                } else {
                    Scalar::ZERO
                }
            }
            // Artificial columns still basic in phase 2 sit at value zero on
            // redundant rows; their cost contribution is zero.
            Phase::Two => {
                if j >= self.n {
                    Scalar::ZERO
                } else {
                    self.c[j].clone()
                }
            }
        }
    }

    /// The dual vector `y = c_B B⁻¹` for `phase`.  Returns `None` when
    /// `c_B = 0` (then every reduced cost is just `c_j`).
    fn duals(&self, phase: Phase) -> Option<Vec<Scalar>> {
        let mut u: Vec<Scalar> = (0..self.m)
            .map(|i| self.cost(phase, self.basis[i]))
            .collect();
        if u.iter().all(Scalar::is_zero) {
            return None;
        }
        btran(&self.etas, &mut u);
        Some(u)
    }

    /// Reduced cost of nonbasic column `j`.
    fn reduced_cost(&self, phase: Phase, y: Option<&[Scalar]>, j: usize) -> Scalar {
        let mut d = self.cost(phase, j);
        if let Some(y) = y {
            for (i, value) in self.a.col(j) {
                if !y[*i].is_zero() {
                    d = d.sub_mul(&y[*i], value);
                }
            }
        }
        d
    }

    /// Picks the entering column, or `None` at optimality.
    ///
    /// In Bland mode this is the smallest-index column with a negative
    /// reduced cost.  Otherwise a rotating window of candidates is scanned
    /// and the most negative reduced cost in the first non-empty window wins
    /// (Dantzig with partial pricing); the scan keeps sliding until the whole
    /// column range has been covered, so optimality claims are exact.
    fn price(&mut self, phase: Phase, y: Option<&[Scalar]>) -> Option<usize> {
        let n = self.n;
        if n == 0 {
            return None;
        }
        if self.bland {
            return (0..n)
                .find(|&j| !self.in_basis[j] && self.reduced_cost(phase, y, j).is_negative());
        }
        let window = (n / 8).clamp(32, 256);
        let mut scanned = 0;
        let mut cursor = self.pricing_start % n;
        while scanned < n {
            let mut best: Option<(usize, Scalar)> = None;
            let mut in_window = 0;
            while in_window < window && scanned < n {
                let j = cursor;
                cursor = (cursor + 1) % n;
                scanned += 1;
                in_window += 1;
                if self.in_basis[j] {
                    continue;
                }
                let d = self.reduced_cost(phase, y, j);
                if d.is_negative() {
                    let better = match &best {
                        None => true,
                        Some((_, bd)) => d.cmp_value(bd) == std::cmp::Ordering::Less,
                    };
                    if better {
                        best = Some((j, d));
                    }
                }
            }
            if let Some((j, _)) = best {
                self.pricing_start = cursor;
                return Some(j);
            }
        }
        None
    }

    /// The ratio test: picks the leaving row for entering column `alpha`.
    ///
    /// Ties are always broken by the smallest basic-variable index, which is
    /// exactly Bland's leaving rule, so the Bland fallback only has to change
    /// the entering rule.  In phase 2, any row still basic on an artificial
    /// variable blocks at ratio zero whenever `alpha` touches it (either
    /// sign): the artificial sits at value zero and must never move off it.
    fn leaving_row(&self, phase: Phase, alpha: &[Scalar]) -> Option<usize> {
        let mut best: Option<(usize, Scalar)> = None;
        for (i, coeff) in alpha.iter().enumerate() {
            if coeff.is_zero() {
                continue;
            }
            let artificial_block = phase == Phase::Two && self.basis[i] >= self.n;
            if !artificial_block && !coeff.is_positive() {
                continue;
            }
            let ratio = if artificial_block {
                debug_assert!(self.x[i].is_zero());
                Scalar::ZERO
            } else {
                self.x[i].div(coeff)
            };
            let better = match &best {
                None => true,
                Some((row, best_ratio)) => match ratio.cmp_value(best_ratio) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => self.basis[i] < self.basis[*row],
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((i, ratio));
            }
        }
        best.map(|(row, _)| row)
    }

    /// Executes the pivot `(p, q)` with FTRANed entering column `alpha`.
    ///
    /// Charges the decision budget first: an exhausted budget aborts the
    /// solve *before* the basis mutates, so the pivot cap is strict.
    fn pivot(&mut self, p: usize, q: usize, alpha: &[Scalar]) -> Result<(), Exhausted> {
        if let Err(e) = self.budget.charge_pivots(1) {
            BUDGET_EXHAUSTED.inc();
            return Err(e);
        }
        self.pivots += 1;
        PIVOTS.inc();
        bqc_obs::instant("pivot");
        let t = self.x[p].div(&alpha[p]);
        if t.is_zero() {
            DEGENERATE_PIVOTS.inc();
            self.stalls += 1;
            if !self.bland && self.stalls > stall_limit(self.m) {
                self.bland = true;
                BLAND_FALLBACKS.inc();
                bqc_obs::instant("bland-fallback");
            }
        } else {
            self.stalls = 0;
            self.bland = false;
            for (i, coeff) in alpha.iter().enumerate() {
                if i != p && !coeff.is_zero() {
                    self.x[i] = self.x[i].sub_mul(coeff, &t);
                }
            }
        }
        self.x[p] = t;
        self.in_basis[self.basis[p]] = false;
        self.in_basis[q] = true;
        self.basis[p] = q;
        self.etas.push(Eta::from_pivot(alpha, p));
        if self.etas.len() >= REFACTOR_EVERY {
            self.refactorize();
        }
        Ok(())
    }

    /// Runs simplex iterations for `phase` until optimality or unboundedness.
    /// Returns `Ok(false)` on unboundedness (impossible in phase 1) and
    /// `Err` when the decision budget runs out mid-solve.
    fn optimize(&mut self, phase: Phase) -> Result<bool, Exhausted> {
        let mut work = vec![Scalar::ZERO; self.m];
        loop {
            let y = self.duals(phase);
            let Some(q) = self.price(phase, y.as_deref()) else {
                return Ok(true);
            };
            work.iter_mut().for_each(|v| *v = Scalar::ZERO);
            self.scatter(q, &mut work);
            ftran(&self.etas, &mut work);
            let Some(p) = self.leaving_row(phase, &work) else {
                debug_assert!(phase == Phase::Two, "phase 1 is bounded below by 0");
                return Ok(false);
            };
            self.pivot(p, q, &work)?;
        }
    }

    /// Sum of the artificial basic values (the phase-1 objective).
    fn infeasibility(&self) -> Scalar {
        let mut total = Scalar::ZERO;
        for i in 0..self.m {
            if self.basis[i] >= self.n {
                total = total.add(&self.x[i]);
            }
        }
        total
    }

    /// After phase 1 ends at objective zero, pivots every artificial that is
    /// still basic (at value zero) out of the basis wherever some structural
    /// column can replace it; rows whose entire structural part is zero are
    /// redundant and keep their artificial harmlessly pinned at zero.
    ///
    /// The scan repeats until a full pass makes no pivot: a pivot can trigger
    /// a refactorization, which re-permutes basis rows and may move a not-yet
    /// -processed artificial to a row the pass already visited.  Each pivot
    /// removes one artificial for good (they are never priced back in), so
    /// the outer loop terminates after at most `m + 1` passes.
    fn drive_out_artificials(&mut self) -> Result<(), Exhausted> {
        let mut work = vec![Scalar::ZERO; self.m];
        loop {
            let mut pivoted = false;
            for p in 0..self.m {
                if self.basis[p] < self.n {
                    continue;
                }
                // Row p of B⁻¹A: r = e_p B⁻¹, then r · a_j per column.
                let mut r = vec![Scalar::ZERO; self.m];
                r[p] = Scalar::ONE;
                btran(&self.etas, &mut r);
                let entering = (0..self.n).find(|&j| {
                    if self.in_basis[j] {
                        return false;
                    }
                    let mut dot = Scalar::ZERO;
                    for (i, value) in self.a.col(j) {
                        if !r[*i].is_zero() {
                            dot = dot.add_mul(&r[*i], value);
                        }
                    }
                    !dot.is_zero()
                });
                let Some(q) = entering else {
                    continue;
                };
                pivoted = true;
                work.iter_mut().for_each(|v| *v = Scalar::ZERO);
                self.scatter(q, &mut work);
                ftran(&self.etas, &mut work);
                debug_assert!(!work[p].is_zero());
                self.pivot(p, q, &work)?;
            }
            if !pivoted {
                break;
            }
        }
        Ok(())
    }

    /// Extracts the optimal outcome after a phase-2 optimum.  Dual
    /// extraction (one BTRAN over the eta file plus a `Rational` conversion
    /// per row) is skipped unless asked for — most callers are feasibility
    /// probes that never look at multipliers.
    fn extract(&self, want_duals: bool) -> SparseSolve {
        PIVOTS_PER_SOLVE.observe(self.pivots);
        let mut solution = vec![Rational::zero(); self.n];
        let mut objective = Rational::zero();
        let mut clean = true;
        for i in 0..self.m {
            let j = self.basis[i];
            if j < self.n {
                objective += self.c[j].mul(&self.x[i]).to_rational();
                solution[j] = self.x[i].to_rational();
            } else {
                debug_assert!(self.x[i].is_zero());
                clean = false;
            }
        }
        let duals = want_duals.then(|| {
            self.duals(Phase::Two)
                .unwrap_or_else(|| vec![Scalar::ZERO; self.m])
                .into_iter()
                .map(|y| y.to_rational())
                .collect()
        });
        SparseSolve {
            outcome: SimplexOutcome::Optimal {
                objective,
                solution,
            },
            basis: clean.then(|| self.basis.clone()),
            duals,
        }
    }
}

/// Re-enters the simplex from a caller-supplied starting basis, for the
/// incremental-row workflow of [`crate::IncrementalSolver`].
///
/// Unlike [`solve_sparse`]'s warm start, the basis may contain **artificial
/// columns**: index `n + i` stands for the artificial variable of row `i`
/// (the unit column `e_i`).  The caller arranges — by orienting each freshly
/// appended row so its basic slack or artificial takes a non-negative value —
/// that the basis is primal-feasible; the solve then runs a **bounded
/// phase-1 restart** (minimize the artificial sum, starting from this basis,
/// which only has to clear the handful of artificials on the new rows)
/// instead of a cold crash-basis phase 1 over every row.  `b` may contain
/// negative entries here: no crash basis is built, so the `b ≥ 0`
/// normalization of the cold path is not needed.
///
/// Returns `Ok(None)` when the basis is unusable (wrong length, repeated or
/// out-of-range columns, singular, or primal-infeasible after
/// factorization); the caller falls back to a cold solve.
///
/// `Err` means the decision `budget` ran out mid-solve; the partial basis is
/// discarded (never returned), so a budget-aborted solve can't poison a
/// warm-start cache with a half-optimized basis.
pub(crate) fn solve_sparse_resume_full(
    a: &SparseMatrix,
    b: &[Scalar],
    c: &[Scalar],
    basis: &[usize],
    want_duals: bool,
    budget: &Budget,
) -> Result<Option<SparseSolve>, Exhausted> {
    let m = a.num_rows();
    let n = a.num_cols();
    assert_eq!(b.len(), m, "rhs length must equal the number of rows");
    assert_eq!(c.len(), n, "cost length must equal the number of columns");

    RESUME_SOLVES.inc();
    SOLVES.inc();
    let _solve_span = bqc_obs::span("lp-solve");

    if basis.len() != m || basis.iter().any(|&j| j >= n + m) {
        return Ok(None);
    }
    let mut seen = vec![false; n + m];
    if !basis
        .iter()
        .all(|&j| !std::mem::replace(&mut seen[j], true))
    {
        return Ok(None);
    }

    let mut solver = Solver {
        a,
        b,
        c,
        m,
        n,
        basis: vec![0; m],
        in_basis: vec![false; n + m],
        x: Vec::new(),
        etas: Vec::new(),
        pricing_start: 0,
        stalls: 0,
        bland: false,
        pivots: 0,
        budget,
    };
    let Some((etas, row_of_slot)) = solver.reinvert(basis) else {
        return Ok(None);
    };
    solver.etas = etas;
    for (slot, &row) in row_of_slot.iter().enumerate() {
        solver.basis[row] = basis[slot];
    }
    solver.recompute_x();
    if solver.x.iter().any(Scalar::is_negative) {
        return Ok(None);
    }
    for &j in basis {
        solver.in_basis[j] = true;
    }

    // Bounded phase 1: only the artificials still carrying a positive value
    // (the violated appended rows) have to be driven to zero.
    if !solver.infeasibility().is_zero() {
        let bounded = solver.optimize(Phase::One)?;
        debug_assert!(bounded, "phase 1 objective is bounded below by 0");
        if solver.infeasibility().is_positive() {
            PIVOTS_PER_SOLVE.observe(solver.pivots);
            return Ok(Some(SparseSolve {
                outcome: SimplexOutcome::Infeasible,
                basis: None,
                duals: None,
            }));
        }
        solver.stalls = 0;
        solver.bland = false;
    }
    solver.drive_out_artificials()?;

    if !solver.optimize(Phase::Two)? {
        PIVOTS_PER_SOLVE.observe(solver.pivots);
        return Ok(Some(SparseSolve {
            outcome: SimplexOutcome::Unbounded,
            basis: None,
            duals: None,
        }));
    }
    Ok(Some(solver.extract(want_duals)))
}

/// Solves `minimize c·x  s.t.  A x = b, x ≥ 0` with `A` sparse and `b ≥ 0`.
///
/// `warm` optionally supplies a starting basis (one column per row, all
/// structural); an unusable basis — wrong length, repeated or out-of-range
/// columns, singular, or infeasible for this `b` — silently falls back to
/// the crash cold start, so warm starting never affects correctness.
pub(crate) fn solve_sparse(
    a: &SparseMatrix,
    b: &[Scalar],
    c: &[Scalar],
    warm: Option<&[usize]>,
) -> SparseSolve {
    solve_sparse_full(a, b, c, warm, false, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`solve_sparse`] with optional dual extraction and a decision budget.
/// `Err` means the budget ran out mid-solve; no partial result escapes.
pub(crate) fn solve_sparse_full(
    a: &SparseMatrix,
    b: &[Scalar],
    c: &[Scalar],
    warm: Option<&[usize]>,
    want_duals: bool,
    budget: &Budget,
) -> Result<SparseSolve, Exhausted> {
    let m = a.num_rows();
    let n = a.num_cols();
    assert_eq!(b.len(), m, "rhs length must equal the number of rows");
    assert_eq!(c.len(), n, "cost length must equal the number of columns");
    debug_assert!(b.iter().all(|v| !v.is_negative()), "rhs must be re-signed");

    SOLVES.inc();
    let _solve_span = bqc_obs::span("lp-solve");

    let mut solver = Solver {
        a,
        b,
        c,
        m,
        n,
        basis: Vec::new(),
        in_basis: vec![false; n + m],
        x: Vec::new(),
        etas: Vec::new(),
        pricing_start: 0,
        stalls: 0,
        bland: false,
        pivots: 0,
        budget,
    };

    // Warm start: adopt the supplied basis if it factorizes and is feasible.
    let mut started = false;
    if let Some(cols) = warm {
        if cols.len() == m && cols.iter().all(|&j| j < n) && {
            let mut seen = vec![false; n];
            cols.iter().all(|&j| !std::mem::replace(&mut seen[j], true))
        } {
            if let Some((etas, row_of_slot)) = solver.reinvert(cols) {
                solver.etas = etas;
                solver.basis = vec![0; m];
                for (slot, &row) in row_of_slot.iter().enumerate() {
                    solver.basis[row] = cols[slot];
                }
                solver.recompute_x();
                if solver.x.iter().all(|v| !v.is_negative()) {
                    for &j in cols {
                        solver.in_basis[j] = true;
                    }
                    started = true;
                } else {
                    solver.etas.clear();
                }
            }
        }
    }

    if started {
        WARM_START_HITS.inc();
    } else if warm.is_some() {
        WARM_START_REJECTS.inc();
    }

    if !started {
        // Crash basis: rows take a singleton column when its ratio is
        // feasible (slack/surplus rows with zero rhs in particular), and an
        // artificial otherwise.
        let mut basis: Vec<usize> = (0..m).map(|i| n + i).collect();
        let mut x: Vec<Scalar> = b.to_vec();
        let mut taken = vec![false; m];
        for j in 0..n {
            if let [(i, value)] = a.col(j) {
                if !taken[*i] && (b[*i].is_zero() || value.is_positive()) {
                    taken[*i] = true;
                    basis[*i] = j;
                    x[*i] = b[*i].div(value);
                }
            }
        }
        solver.basis = basis;
        solver.x = x;
        for &j in &solver.basis {
            solver.in_basis[j] = true;
        }
        // The crash columns are singletons, so the basis is diagonal; its
        // inverse still needs etas for the non-unit entries.
        if solver.basis.iter().any(|&j| j < n) {
            let cols = solver.basis.clone();
            let (etas, row_of_slot) = solver
                .reinvert(&cols)
                .expect("a diagonal basis of nonzero singletons is nonsingular");
            solver.etas = etas;
            for (slot, &row) in row_of_slot.iter().enumerate() {
                solver.basis[row] = cols[slot];
            }
        }

        // Phase 1, skipped when the crash start is already feasible.
        if !solver.infeasibility().is_zero() {
            let bounded = solver.optimize(Phase::One)?;
            debug_assert!(bounded, "phase 1 objective is bounded below by 0");
            if solver.infeasibility().is_positive() {
                PIVOTS_PER_SOLVE.observe(solver.pivots);
                return Ok(SparseSolve {
                    outcome: SimplexOutcome::Infeasible,
                    basis: None,
                    duals: None,
                });
            }
        }
        solver.drive_out_artificials()?;
        solver.stalls = 0;
        solver.bland = false;
    }

    if !solver.optimize(Phase::Two)? {
        PIVOTS_PER_SOLVE.observe(solver.pivots);
        return Ok(SparseSolve {
            outcome: SimplexOutcome::Unbounded,
            basis: None,
            duals: None,
        });
    }
    Ok(solver.extract(want_duals))
}

/// Solves the standard-form program `minimize c·x subject to A x = b, x ≥ 0`.
///
/// * `a` is a dense `m × n` coefficient matrix (each inner vector a row).
/// * `b` is the right-hand side of length `m` (any sign; rows are re-signed
///   internally).
/// * `c` is the objective vector of length `n`.
///
/// This converts the input to sparse column-major form and runs the revised
/// simplex; it exists for API compatibility and for callers whose data is
/// genuinely dense.  [`crate::LpProblem`] builds the sparse form directly.
///
/// # Panics
///
/// Panics if the dimensions of `a`, `b` and `c` are inconsistent.
pub fn solve_standard_form(a: &[Vec<Rational>], b: &[Rational], c: &[Rational]) -> SimplexOutcome {
    let m = a.len();
    assert_eq!(b.len(), m, "rhs length must equal the number of rows");
    let n = c.len();
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "row {i} has wrong length");
    }
    let negate: Vec<bool> = b.iter().map(Rational::is_negative).collect();
    let mut sparse = SparseMatrix::new(m);
    for j in 0..n {
        sparse.push_col(a.iter().enumerate().filter_map(|(i, row)| {
            if row[j].is_zero() {
                None
            } else {
                let v = if negate[i] { -&row[j] } else { row[j].clone() };
                Some((i, Scalar::from_rational(v)))
            }
        }));
    }
    let b: Vec<Scalar> = b
        .iter()
        .zip(&negate)
        .map(|(v, flip)| Scalar::from_rational(if *flip { -v } else { v.clone() }))
        .collect();
    let c: Vec<Scalar> = c.iter().map(|v| Scalar::from_rational(v.clone())).collect();
    solve_sparse(&sparse, &b, &c, None).outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::{int, ratio};

    fn r(v: i64) -> Rational {
        int(v)
    }

    #[test]
    fn simple_equality_program() {
        // minimize x + y  s.t.  x + y = 2, x - y = 0, x, y >= 0 -> x = y = 1.
        let a = vec![vec![r(1), r(1)], vec![r(1), r(-1)]];
        let b = vec![r(2), r(0)];
        let c = vec![r(1), r(1)];
        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(2));
                assert_eq!(solution, vec![r(1), r(1)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        let a = vec![vec![r(1)], vec![r(1)]];
        let b = vec![r(1), r(2)];
        let c = vec![r(0)];
        assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let a = vec![vec![r(1), r(-1)]];
        let b = vec![r(0)];
        let c = vec![r(-1), r(0)];
        assert_eq!(solve_standard_form(&a, &b, &c), SimplexOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        let a = vec![vec![r(-1)]];
        let b = vec![r(-3)];
        let c = vec![r(1)];
        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(3));
                assert_eq!(solution, vec![r(3)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        let a = vec![vec![r(1), r(1)], vec![r(1), r(1)]];
        let b = vec![r(1), r(1)];
        let c = vec![r(0), r(1)];
        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, r(0));
                assert_eq!(&solution[0] + &solution[1], r(1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fractional_optimum() {
        let a = vec![vec![r(1), r(3)], vec![r(3), r(1)]];
        let b = vec![r(2), r(2)];
        let c = vec![r(1), r(0)];
        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(solution, vec![ratio(1, 2), ratio(1, 2)]);
                assert_eq!(objective, ratio(1, 2));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn beales_cycling_example_terminates() {
        let a = vec![
            vec![ratio(1, 4), r(-60), ratio(-1, 25), r(9), r(1), r(0), r(0)],
            vec![ratio(1, 2), r(-90), ratio(-1, 50), r(3), r(0), r(1), r(0)],
            vec![r(0), r(0), r(1), r(0), r(0), r(0), r(1)],
        ];
        let b = vec![r(0), r(0), r(1)];
        let c = vec![ratio(-3, 4), r(150), ratio(-1, 50), r(6), r(0), r(0), r(0)];
        match solve_standard_form(&a, &b, &c) {
            SimplexOutcome::Optimal { objective, .. } => {
                assert_eq!(objective, ratio(-1, 20));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn warm_start_reuses_a_feasible_basis() {
        // x + y = 2, x - y = 0 with objective x: optimal basis {x, y}.
        let mut a = SparseMatrix::new(2);
        let s = Scalar::from_int;
        a.push_col(vec![(0, s(1)), (1, s(1))]);
        a.push_col(vec![(0, s(1)), (1, s(-1))]);
        let b = vec![s(2), s(0)];
        let c = vec![s(1), Scalar::ZERO];
        let cold = solve_sparse(&a, &b, &c, None);
        let basis = cold.basis.expect("clean optimal basis");
        // Re-solve with a perturbed rhs from the old basis: feasible, so the
        // warm path must produce the same optimum as a cold solve.
        let b2 = vec![s(4), s(2)];
        let warm = solve_sparse(&a, &b2, &c, Some(&basis));
        let coldagain = solve_sparse(&a, &b2, &c, None);
        assert_eq!(warm.outcome, coldagain.outcome);
        match warm.outcome {
            SimplexOutcome::Optimal { solution, .. } => {
                assert_eq!(solution, vec![r(3), r(1)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // Garbage warm bases are ignored, not trusted.
        let garbage = vec![0usize, 0];
        let ignored = solve_sparse(&a, &b2, &c, Some(&garbage));
        assert_eq!(ignored.outcome, coldagain.outcome);
    }
}
