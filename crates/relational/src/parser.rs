//! A small textual syntax for conjunctive queries and database instances.
//!
//! Queries use the familiar Datalog-ish notation
//!
//! ```text
//! Q(x, z) :- R(x, y), S(y, z).
//! ```
//!
//! with an empty head (`Q() :- …`) for Boolean queries.  Database instances
//! are lists of ground facts, one per statement:
//!
//! ```text
//! R(1, 2). R(2, 3). S(a, b).
//! ```
//!
//! Integer constants become [`Value::Int`]; everything else becomes
//! [`Value::Text`].

use crate::query::{Atom, ConjunctiveQuery, QueryError};
use crate::structure::Structure;
use crate::value::Value;
use std::fmt;

/// Errors produced by the parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character at the given byte offset.
    UnexpectedChar {
        /// Byte offset of the offending character.
        position: usize,
        /// The character that was found.
        found: char,
    },
    /// The input ended while more tokens were expected.
    UnexpectedEnd,
    /// Expected a specific token.
    Expected {
        /// Byte offset where the token was expected.
        position: usize,
        /// Human-readable description of the expected token.
        expected: &'static str,
    },
    /// The parsed query was structurally invalid.
    InvalidQuery(QueryError),
}

impl ParseError {
    /// Byte offset into the parsed text where the error occurred, when the
    /// error is anchored to a position ([`ParseError::UnexpectedChar`] and
    /// [`ParseError::Expected`]; end-of-input and structural query errors
    /// carry none).
    pub fn position(&self) -> Option<usize> {
        match self {
            ParseError::UnexpectedChar { position, .. } => Some(*position),
            ParseError::Expected { position, .. } => Some(*position),
            ParseError::UnexpectedEnd | ParseError::InvalidQuery(_) => None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::Expected { position, expected } => {
                write!(f, "expected {expected} at byte {position}")
            }
            ParseError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> ParseError {
        ParseError::InvalidQuery(e)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(i64),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Period,
}

struct Lexer<'a> {
    input: &'a str,
    position: usize,
    tokens: Vec<(usize, Token)>,
}

impl<'a> Lexer<'a> {
    fn tokenize(input: &'a str) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut lexer = Lexer {
            input,
            position: 0,
            tokens: Vec::new(),
        };
        lexer.run()?;
        Ok(lexer.tokens)
    }

    fn run(&mut self) -> Result<(), ParseError> {
        let bytes = self.input.as_bytes();
        while self.position < bytes.len() {
            let start = self.position;
            let c = self.input[self.position..]
                .chars()
                .next()
                .expect("in range");
            match c {
                c if c.is_whitespace() => self.position += c.len_utf8(),
                '%' | '#' => {
                    // Comment until end of line.
                    while self.position < bytes.len() && bytes[self.position] != b'\n' {
                        self.position += 1;
                    }
                }
                '(' => {
                    self.tokens.push((start, Token::LParen));
                    self.position += 1;
                }
                ')' => {
                    self.tokens.push((start, Token::RParen));
                    self.position += 1;
                }
                ',' => {
                    self.tokens.push((start, Token::Comma));
                    self.position += 1;
                }
                '.' => {
                    self.tokens.push((start, Token::Period));
                    self.position += 1;
                }
                ':' => {
                    if self.input[self.position..].starts_with(":-") {
                        self.tokens.push((start, Token::Turnstile));
                        self.position += 2;
                    } else {
                        return Err(ParseError::UnexpectedChar {
                            position: start,
                            found: ':',
                        });
                    }
                }
                '-' => {
                    // Negative integer literal.
                    self.position += 1;
                    let number = self.lex_number(start, true)?;
                    self.tokens.push((start, number));
                }
                c if c.is_ascii_digit() => {
                    let number = self.lex_number(start, false)?;
                    self.tokens.push((start, number));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut end = self.position;
                    for ch in self.input[self.position..].chars() {
                        if ch.is_alphanumeric() || ch == '_' || ch == '\'' {
                            end += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let ident = self.input[self.position..end].to_string();
                    self.position = end;
                    self.tokens.push((start, Token::Ident(ident)));
                }
                other => {
                    return Err(ParseError::UnexpectedChar {
                        position: start,
                        found: other,
                    })
                }
            }
        }
        Ok(())
    }

    fn lex_number(&mut self, start: usize, negative: bool) -> Result<Token, ParseError> {
        let digits_start = self.position;
        let bytes = self.input.as_bytes();
        while self.position < bytes.len() && bytes[self.position].is_ascii_digit() {
            self.position += 1;
        }
        if self.position == digits_start {
            return Err(ParseError::Expected {
                position: start,
                expected: "digit",
            });
        }
        let magnitude: i64 = self.input[digits_start..self.position]
            .parse()
            .map_err(|_| ParseError::Expected {
                position: start,
                expected: "integer that fits i64",
            })?;
        Ok(Token::Number(if negative { -magnitude } else { magnitude }))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|(_, t)| t)
    }

    fn next(&mut self) -> Result<(usize, Token), ParseError> {
        let item = self
            .tokens
            .get(self.index)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd)?;
        self.index += 1;
        Ok(item)
    }

    fn expect(&mut self, expected: &Token, label: &'static str) -> Result<(), ParseError> {
        let (position, token) = self.next()?;
        if &token == expected {
            Ok(())
        } else {
            Err(ParseError::Expected {
                position,
                expected: label,
            })
        }
    }

    fn ident(&mut self, label: &'static str) -> Result<String, ParseError> {
        let (position, token) = self.next()?;
        match token {
            Token::Ident(s) => Ok(s),
            _ => Err(ParseError::Expected {
                position,
                expected: label,
            }),
        }
    }

    fn done(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn parse_atom_args(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Token::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.next()?;
            return Ok(args);
        }
        loop {
            args.push(self.ident("variable name")?);
            match self.next()? {
                (_, Token::Comma) => continue,
                (_, Token::RParen) => break,
                (position, _) => {
                    return Err(ParseError::Expected {
                        position,
                        expected: "',' or ')'",
                    })
                }
            }
        }
        Ok(args)
    }
}

/// Parses a conjunctive query, e.g. `Q(x,z) :- R(x,y), S(y,z).`
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    let mut parser = Parser { tokens, index: 0 };
    let name = parser.ident("query name")?;
    let head = parser.parse_atom_args()?;
    parser.expect(&Token::Turnstile, "':-'")?;
    let mut atoms = Vec::new();
    loop {
        let relation = parser.ident("relation name")?;
        let args = parser.parse_atom_args()?;
        atoms.push(Atom::new(relation, args));
        match parser.peek() {
            Some(Token::Comma) => {
                parser.next()?;
            }
            Some(Token::Period) => {
                parser.next()?;
                break;
            }
            None => break,
            Some(_) => {
                let (position, _) = parser.next()?;
                return Err(ParseError::Expected {
                    position,
                    expected: "',' or '.'",
                });
            }
        }
    }
    if !parser.done() {
        let (position, _) = parser.next()?;
        return Err(ParseError::Expected {
            position,
            expected: "end of input",
        });
    }
    Ok(ConjunctiveQuery::new(name, head, atoms)?)
}

/// Parses a database instance given as a list of ground facts,
/// e.g. `R(1,2). R(2,3). S(a,b).`
pub fn parse_structure(input: &str) -> Result<Structure, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    let mut parser = Parser { tokens, index: 0 };
    let mut structure = Structure::empty();
    while !parser.done() {
        let relation = parser.ident("relation name")?;
        parser.expect(&Token::LParen, "'('")?;
        let mut tuple = Vec::new();
        if parser.peek() != Some(&Token::RParen) {
            loop {
                let (position, token) = parser.next()?;
                let value = match token {
                    Token::Number(n) => Value::Int(n),
                    Token::Ident(s) => Value::Text(s),
                    _ => {
                        return Err(ParseError::Expected {
                            position,
                            expected: "constant",
                        })
                    }
                };
                tuple.push(value);
                match parser.next()? {
                    (_, Token::Comma) => continue,
                    (_, Token::RParen) => break,
                    (position, _) => {
                        return Err(ParseError::Expected {
                            position,
                            expected: "',' or ')'",
                        })
                    }
                }
            }
        } else {
            parser.next()?;
        }
        structure.add_fact(&relation, tuple);
        if parser.peek() == Some(&Token::Period) {
            parser.next()?;
        }
    }
    Ok(structure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::count_homomorphisms;

    #[test]
    fn parse_simple_query() {
        let q = parse_query("Q(x, z) :- R(x, y), S(y, z).").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head(), &["x", "z"]);
        assert_eq!(q.atoms().len(), 2);
        assert_eq!(q.vars(), &["x", "z", "y"]);
    }

    #[test]
    fn parse_boolean_query_and_primes() {
        let q = parse_query("Q1() :- A(x1, x2), B(x1', x2')").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.num_vars(), 4);
        assert!(q.vars().contains(&"x1'".to_string()));
    }

    #[test]
    fn parse_with_comments_and_whitespace() {
        let q =
            parse_query("Q() :- % the triangle\n  R(x, y),\n  R(y, z), # wraps around\n  R(z, x).")
                .unwrap();
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            parse_query("Q(x)"),
            Err(ParseError::UnexpectedEnd)
        ));
        assert!(matches!(
            parse_query("Q(x) : R(x)"),
            Err(ParseError::UnexpectedChar { .. })
        ));
        assert!(matches!(
            parse_query("Q(z) :- R(x, y)."),
            Err(ParseError::InvalidQuery(QueryError::HeadVariableNotInBody(
                _
            )))
        ));
        assert!(matches!(
            parse_query("Q(x) :- R(x) S(x)"),
            Err(ParseError::Expected { .. })
        ));
    }

    #[test]
    fn parse_structure_facts() {
        let s = parse_structure("R(1, 2). R(2, 3). S(a, b). T().").unwrap();
        assert_eq!(s.num_facts("R"), 2);
        assert_eq!(s.num_facts("S"), 1);
        assert_eq!(s.num_facts("T"), 1);
        assert!(s.contains_fact("S", &vec![Value::text("a"), Value::text("b")]));
        assert!(s.contains_fact("R", &vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn parse_negative_integers() {
        let s = parse_structure("R(-1, 2).").unwrap();
        assert!(s.contains_fact("R", &vec![Value::int(-1), Value::int(2)]));
    }

    #[test]
    fn parsed_query_evaluates() {
        let q = parse_query("Q() :- R(x, y), R(y, z)").unwrap();
        let s = parse_structure("R(1,2). R(2,3). R(3,1).").unwrap();
        assert_eq!(count_homomorphisms(&q, &s), 3);
    }

    // ---- error paths: malformed atoms ------------------------------------

    #[test]
    fn atom_missing_closing_paren() {
        assert_eq!(parse_query("Q(x) :- R(x"), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse_structure("R(1"), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse_structure("R(1, 2"), Err(ParseError::UnexpectedEnd));
    }

    #[test]
    fn atom_missing_argument_list() {
        assert_eq!(parse_query("Q(x) :- R"), Err(ParseError::UnexpectedEnd));
        assert_eq!(
            parse_query("Q(x) :- R x"),
            Err(ParseError::Expected {
                position: 10,
                expected: "'('",
            })
        );
    }

    #[test]
    fn atom_with_dangling_or_leading_comma() {
        assert_eq!(
            parse_query("Q(x) :- R(x,)"),
            Err(ParseError::Expected {
                position: 12,
                expected: "variable name",
            })
        );
        assert_eq!(
            parse_query("Q(x) :- R(,x)"),
            Err(ParseError::Expected {
                position: 10,
                expected: "variable name",
            })
        );
    }

    #[test]
    fn atom_arguments_without_separator() {
        assert_eq!(
            parse_query("Q(x) :- R(x y)"),
            Err(ParseError::Expected {
                position: 12,
                expected: "',' or ')'",
            })
        );
        assert_eq!(
            parse_structure("R(1 2)"),
            Err(ParseError::Expected {
                position: 4,
                expected: "',' or ')'",
            })
        );
    }

    #[test]
    fn structure_rejects_non_constant_arguments() {
        assert_eq!(
            parse_structure("R((1))"),
            Err(ParseError::Expected {
                position: 2,
                expected: "constant",
            })
        );
        assert_eq!(
            parse_structure("R(-)"),
            Err(ParseError::Expected {
                position: 2,
                expected: "digit",
            })
        );
        assert_eq!(
            parse_structure("R(99999999999999999999)"),
            Err(ParseError::Expected {
                position: 2,
                expected: "integer that fits i64",
            })
        );
    }

    #[test]
    fn garbage_characters_are_located() {
        assert_eq!(
            parse_query("Q(x) ? R(x)"),
            Err(ParseError::UnexpectedChar {
                position: 5,
                found: '?',
            })
        );
        assert_eq!(
            parse_structure("R(1). @"),
            Err(ParseError::UnexpectedChar {
                position: 6,
                found: '@',
            })
        );
    }

    #[test]
    fn trailing_tokens_after_query_are_rejected() {
        assert_eq!(
            parse_query("Q(x) :- R(x). extra"),
            Err(ParseError::Expected {
                position: 14,
                expected: "end of input",
            })
        );
        assert_eq!(
            parse_query("Q(x) :- R(x) S(x)"),
            Err(ParseError::Expected {
                position: 13,
                expected: "',' or '.'",
            })
        );
    }

    // ---- error paths: unbound head variables -----------------------------

    #[test]
    fn unbound_head_variable_is_named() {
        assert_eq!(
            parse_query("Q(x, y) :- R(x, x)"),
            Err(ParseError::InvalidQuery(QueryError::HeadVariableNotInBody(
                "y".to_string()
            )))
        );
        // All head variables are checked, not just the first atom's.
        assert!(parse_query("Q(a, b, c) :- R(a, b), S(b, a)").is_err());
        assert!(parse_query("Q(x') :- R(x)").is_err());
    }

    #[test]
    fn inconsistent_arity_reports_both_uses() {
        assert_eq!(
            parse_query("Q() :- R(x), R(x, y)"),
            Err(ParseError::InvalidQuery(QueryError::InconsistentArity {
                relation: "R".to_string(),
                first: 1,
                second: 2,
            }))
        );
    }

    // ---- error paths: empty bodies ---------------------------------------

    #[test]
    fn empty_and_truncated_bodies() {
        assert_eq!(parse_query(""), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse_query("Q()"), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse_query("Q() :-"), Err(ParseError::UnexpectedEnd));
        assert_eq!(
            parse_query("Q() :- ."),
            Err(ParseError::Expected {
                position: 7,
                expected: "relation name",
            })
        );
    }

    #[test]
    fn empty_body_query_error_surfaces_through_from() {
        let direct = ConjunctiveQuery::new("Q".to_string(), vec![], vec![]);
        assert_eq!(direct.unwrap_err(), QueryError::EmptyBody);
        assert_eq!(
            ParseError::from(QueryError::EmptyBody),
            ParseError::InvalidQuery(QueryError::EmptyBody)
        );
    }

    #[test]
    fn parse_errors_display_positions() {
        let err = parse_query("Q(x) ? R(x)").unwrap_err();
        assert_eq!(err.to_string(), "unexpected character '?' at byte 5");
        let err = parse_query("Q(x)").unwrap_err();
        assert_eq!(err.to_string(), "unexpected end of input");
        let err = parse_query("Q(x) :- R(x,)").unwrap_err();
        assert_eq!(err.to_string(), "expected variable name at byte 12");
        let err = parse_query("Q(z) :- R(x)").unwrap_err();
        assert!(err.to_string().starts_with("invalid query:"), "{err}");
    }
}
