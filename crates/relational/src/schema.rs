//! Relational vocabularies (schemas).
//!
//! A vocabulary `R = (R_1, …, R_m)` is a list of relation symbols, each with an
//! associated arity (Section 2.1 of the paper).  Queries and structures over
//! the same vocabulary can be compared; arity mismatches are reported as
//! errors at construction time rather than at evaluation time.

use std::collections::BTreeMap;
use std::fmt;

/// A relation symbol together with its arity.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationSymbol {
    /// The symbol's name (e.g. `"R"`).
    pub name: String,
    /// Number of attribute positions.
    pub arity: usize,
}

impl RelationSymbol {
    /// Creates a relation symbol.
    pub fn new(name: impl Into<String>, arity: usize) -> RelationSymbol {
        RelationSymbol {
            name: name.into(),
            arity,
        }
    }
}

impl fmt::Display for RelationSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A relational vocabulary: a finite set of relation symbols with arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Vocabulary {
    symbols: BTreeMap<String, usize>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Creates a vocabulary from `(name, arity)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same name is declared twice with different arities.
    pub fn from_symbols<I, S>(symbols: I) -> Vocabulary
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut voc = Vocabulary::new();
        for (name, arity) in symbols {
            voc.declare(name, arity);
        }
        voc
    }

    /// Declares a relation symbol (idempotent if the arity matches).
    ///
    /// # Panics
    ///
    /// Panics if the symbol was already declared with a different arity.
    pub fn declare(&mut self, name: impl Into<String>, arity: usize) -> RelationSymbol {
        let name = name.into();
        match self.symbols.get(&name) {
            Some(&existing) => assert_eq!(
                existing, arity,
                "relation symbol {name} redeclared with arity {arity} (was {existing})"
            ),
            None => {
                self.symbols.insert(name.clone(), arity);
            }
        }
        RelationSymbol { name, arity }
    }

    /// Returns the arity of a symbol if it is declared.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).copied()
    }

    /// Returns `true` if the symbol is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    /// Number of declared symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if no symbols are declared.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the declared symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = RelationSymbol> + '_ {
        self.symbols.iter().map(|(name, &arity)| RelationSymbol {
            name: name.clone(),
            arity,
        })
    }

    /// Merges another vocabulary into this one.
    ///
    /// # Panics
    ///
    /// Panics on arity conflicts.
    pub fn merge(&mut self, other: &Vocabulary) {
        for symbol in other.symbols() {
            self.declare(symbol.name, symbol.arity);
        }
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, symbol) in self.symbols().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{symbol}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut voc = Vocabulary::new();
        voc.declare("R", 2);
        voc.declare("S", 3);
        assert_eq!(voc.arity_of("R"), Some(2));
        assert_eq!(voc.arity_of("S"), Some(3));
        assert_eq!(voc.arity_of("T"), None);
        assert!(voc.contains("R"));
        assert!(!voc.contains("T"));
        assert_eq!(voc.len(), 2);
        assert!(!voc.is_empty());
    }

    #[test]
    fn redeclare_same_arity_is_ok() {
        let mut voc = Vocabulary::new();
        voc.declare("R", 2);
        voc.declare("R", 2);
        assert_eq!(voc.len(), 1);
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn redeclare_different_arity_panics() {
        let mut voc = Vocabulary::new();
        voc.declare("R", 2);
        voc.declare("R", 3);
    }

    #[test]
    fn from_symbols_and_merge() {
        let a = Vocabulary::from_symbols([("R", 2), ("S", 1)]);
        let b = Vocabulary::from_symbols([("T", 4), ("R", 2)]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.arity_of("T"), Some(4));
    }

    #[test]
    fn display() {
        let voc = Vocabulary::from_symbols([("R", 2), ("S", 1)]);
        assert_eq!(voc.to_string(), "{R/2, S/1}");
        assert_eq!(RelationSymbol::new("R", 2).to_string(), "R/2");
    }
}
