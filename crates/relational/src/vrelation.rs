//! V-relations: relations whose columns are named by query variables.
//!
//! Section 3.1 of the paper works with relations `P ⊆ D^V` over the variable
//! set `V = vars(Q1)`.  Such a relation induces a database instance
//! `Π_{Q1}(P)` (Eq. 4) by projecting `P` onto the atoms of `Q1`, and serves as
//! a *witness* for non-containment when `|P| > |hom(Q2, Π_{Q1}(P))|`
//! (Fact 3.2).  Theorem 3.4 shows that witnesses can be taken of two special
//! shapes — *product* relations and *normal* relations (Definition 3.3) — and
//! this module provides constructors for both, plus the domain product of
//! Definition B.1 and the total-uniformity test of Definition 4.5.

use crate::query::{ConjunctiveQuery, Var};
use crate::structure::Structure;
use crate::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite relation with named columns (`P ⊆ D^V`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VRelation {
    columns: Vec<Var>,
    rows: BTreeSet<Tuple>,
}

impl VRelation {
    /// Creates an empty relation with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if a column name is repeated.
    pub fn new(columns: Vec<Var>) -> VRelation {
        let distinct: BTreeSet<&Var> = columns.iter().collect();
        assert_eq!(
            distinct.len(),
            columns.len(),
            "duplicate column names in VRelation"
        );
        VRelation {
            columns,
            rows: BTreeSet::new(),
        }
    }

    /// Creates a relation from rows.
    ///
    /// # Panics
    ///
    /// Panics if a row's length does not match the number of columns.
    pub fn from_rows(columns: Vec<Var>, rows: impl IntoIterator<Item = Tuple>) -> VRelation {
        let mut rel = VRelation::new(columns);
        for row in rows {
            rel.insert(row);
        }
        rel
    }

    /// Column names, in order.
    pub fn columns(&self) -> &[Var] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Inserts a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length does not match the number of columns.
    pub fn insert(&mut self, row: Tuple) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.insert(row);
    }

    /// Index of a column by name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// Returns the value of `column` in `row`.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn value(&self, row: &Tuple, column: &str) -> Value {
        row[self.column_index(column).expect("unknown column")].clone()
    }

    /// Standard projection `Π_X(P)` onto a list of existing columns
    /// (duplicates removed, set semantics).
    pub fn project(&self, columns: &[Var]) -> VRelation {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.column_index(c)
                    .unwrap_or_else(|| panic!("unknown column {c}"))
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| indices.iter().map(|&i| row[i].clone()).collect::<Tuple>());
        VRelation::from_rows(columns.to_vec(), rows)
    }

    /// Generalized projection `Π_φ(P)` for a function `φ : Y → V` given as a
    /// list of `(output column, source column)` pairs (Section 3.1).  Output
    /// columns may repeat source columns; e.g. with `φ = [(y1,x1),(y2,x1)]`,
    /// each row `(a, …)` produces `(a, a)`.
    pub fn generalized_project(&self, phi: &[(Var, Var)]) -> VRelation {
        let indices: Vec<usize> = phi
            .iter()
            .map(|(_, src)| {
                self.column_index(src)
                    .unwrap_or_else(|| panic!("unknown column {src}"))
            })
            .collect();
        let out_columns: Vec<Var> = phi.iter().map(|(out, _)| out.clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| indices.iter().map(|&i| row[i].clone()).collect::<Tuple>());
        VRelation::from_rows(out_columns, rows)
    }

    /// The database instance `Π_{Q}(P)` induced by projecting this relation
    /// onto every atom of `query` (Eq. 4): for each atom `A` with relation
    /// name `R`, every row of `P` contributes the tuple `(f(x_1),…,f(x_a))`
    /// where `x_i` are the (possibly repeated) variables of `A`.
    ///
    /// # Panics
    ///
    /// Panics if an atom of `query` uses a variable that is not a column.
    pub fn induced_database(&self, query: &ConjunctiveQuery) -> Structure {
        let mut db = Structure::new(query.vocabulary());
        for atom in query.atoms() {
            let indices: Vec<usize> = atom
                .args
                .iter()
                .map(|v| {
                    self.column_index(v)
                        .unwrap_or_else(|| panic!("query variable {v} is not a column"))
                })
                .collect();
            for row in &self.rows {
                let tuple: Tuple = indices.iter().map(|&i| row[i].clone()).collect();
                db.add_fact(&atom.relation, tuple);
            }
        }
        db
    }

    /// Builds a product relation `P = Π_x S_x` (Definition 3.3): one unary
    /// domain per column, all combinations.
    pub fn product(factors: &[(Var, Vec<Value>)]) -> VRelation {
        let columns: Vec<Var> = factors.iter().map(|(c, _)| c.clone()).collect();
        let mut rel = VRelation::new(columns);
        let mut stack: Vec<Tuple> = vec![Vec::new()];
        for (_, values) in factors {
            let mut next = Vec::with_capacity(stack.len() * values.len());
            for prefix in &stack {
                for value in values {
                    let mut row = prefix.clone();
                    row.push(value.clone());
                    next.push(row);
                }
            }
            stack = next;
        }
        for row in stack {
            if row.len() == rel.columns.len() {
                rel.rows.insert(row);
            }
        }
        rel
    }

    /// Builds a normal relation (Definition 3.3): given a product relation `P`
    /// over columns `V` and a map `ψ : W → 2^V` (each output column is a set
    /// of product columns), the result has one row `ψ·f` per row `f ∈ P`,
    /// where the value of output column `w` is the tuple of `f`-values of
    /// `ψ(w)` (a single bare value when `|ψ(w)| = 1`, and a fresh constant
    /// when `ψ(w) = ∅`).
    pub fn normal_relation(product: &VRelation, psi: &[(Var, BTreeSet<Var>)]) -> VRelation {
        let out_columns: Vec<Var> = psi.iter().map(|(w, _)| w.clone()).collect();
        let mut rel = VRelation::new(out_columns);
        for row in product.rows() {
            let mut out_row: Tuple = Vec::with_capacity(psi.len());
            for (_, sources) in psi {
                let components: Vec<Value> =
                    sources.iter().map(|s| product.value(row, s)).collect();
                let value = match components.len() {
                    0 => Value::text("*"),
                    1 => components.into_iter().next().expect("one component"),
                    _ => Value::tuple(components),
                };
                out_row.push(value);
            }
            rel.insert(out_row);
        }
        rel
    }

    /// The step relation `P_W` of Section 3.2, generalized to `m ≥ 2` tuples:
    /// columns in `w` hold the constant `1` in every row, the remaining
    /// columns all hold the row index `j ∈ {1, …, m}`.  Its entropy is
    /// `log2(m) · h_W`, the scaled step function at `W`.
    pub fn step_relation(columns: &[Var], w: &BTreeSet<Var>, m: u64) -> VRelation {
        assert!(m >= 1, "step relation needs at least one tuple");
        let mut rel = VRelation::new(columns.to_vec());
        for j in 1..=m {
            let row: Tuple = columns
                .iter()
                .map(|c| {
                    if w.contains(c) {
                        Value::int(1)
                    } else {
                        Value::int(j as i64)
                    }
                })
                .collect();
            rel.insert(row);
        }
        rel
    }

    /// Domain product `P ⊗ Q` (Definition B.1): both relations must have the
    /// same columns; each pair of rows is combined position-wise into pairs.
    ///
    /// # Panics
    ///
    /// Panics if the column lists differ.
    pub fn domain_product(&self, other: &VRelation) -> VRelation {
        assert_eq!(
            self.columns, other.columns,
            "domain product requires identical columns"
        );
        let mut rel = VRelation::new(self.columns.clone());
        for f in self.rows() {
            for g in other.rows() {
                let row: Tuple = f
                    .iter()
                    .zip(g.iter())
                    .map(|(a, b)| Value::pair(a.clone(), b.clone()))
                    .collect();
                rel.insert(row);
            }
        }
        rel
    }

    /// Checks total uniformity (Definition 4.5): the uniform distribution on
    /// the rows has uniform marginals on *every* subset of columns, i.e. for
    /// every subset `X` all values of `Π_X` have the same number of pre-images.
    ///
    /// The check is exponential in the number of columns; the relations it is
    /// applied to in this crate have at most a dozen columns.
    pub fn is_totally_uniform(&self) -> bool {
        if self.rows.is_empty() {
            return true;
        }
        let k = self.columns.len();
        for mask in 1u64..(1u64 << k) {
            let indices: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
            let mut counts: BTreeMap<Tuple, usize> = BTreeMap::new();
            for row in &self.rows {
                let key: Tuple = indices.iter().map(|&i| row[i].clone()).collect();
                *counts.entry(key).or_insert(0) += 1;
            }
            let mut values = counts.values();
            let first = *values.next().expect("non-empty relation has counts");
            if values.any(|&c| c != first) {
                return false;
            }
        }
        true
    }

    /// The degree `deg_P(Y | X)` of Lemma 4.6 for a totally uniform relation:
    /// `|Π_{XY}(P)| / |Π_X(P)|`.  Computed directly from projections, so it is
    /// meaningful for any relation, but only matches the paper's definition
    /// when the relation is totally uniform.
    pub fn degree(&self, y: &[Var], x: &[Var]) -> f64 {
        let mut xy: Vec<Var> = x.to_vec();
        for v in y {
            if !xy.contains(v) {
                xy.push(v.clone());
            }
        }
        let xy_count = if xy.is_empty() {
            1
        } else {
            self.project(&xy).len()
        };
        let x_count = if x.is_empty() {
            1
        } else {
            self.project(x).len()
        };
        xy_count as f64 / x_count as f64
    }
}

impl fmt::Display for VRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "({})", self.columns.join(","))?;
        for row in &self.rows {
            write!(f, "  ")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Atom;

    fn cols(names: &[&str]) -> Vec<Var> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn basic_construction_and_projection() {
        let mut rel = VRelation::new(cols(&["x", "y"]));
        rel.insert(vec![Value::int(1), Value::int(2)]);
        rel.insert(vec![Value::int(1), Value::int(3)]);
        rel.insert(vec![Value::int(1), Value::int(2)]); // duplicate
        assert_eq!(rel.len(), 2);
        let px = rel.project(&cols(&["x"]));
        assert_eq!(px.len(), 1);
        let pyx = rel.project(&cols(&["y", "x"]));
        assert_eq!(pyx.columns(), &["y", "x"]);
        assert_eq!(pyx.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        VRelation::new(cols(&["x", "x"]));
    }

    #[test]
    fn generalized_projection_repeats_columns() {
        // Example from Section 3.1: Q1 = R(x,x,y), P = {(a,b)} gives R^D = {(a,a,b)}.
        let rel = VRelation::from_rows(
            cols(&["x", "y"]),
            vec![vec![Value::text("a"), Value::text("b")]],
        );
        let projected = rel.generalized_project(&[
            ("p1".to_string(), "x".to_string()),
            ("p2".to_string(), "x".to_string()),
            ("p3".to_string(), "y".to_string()),
        ]);
        assert_eq!(projected.len(), 1);
        assert_eq!(
            projected.rows().next().unwrap(),
            &vec![Value::text("a"), Value::text("a"), Value::text("b")]
        );
    }

    #[test]
    fn induced_database_follows_eq4() {
        // Q1 = R(x,x,y): P = {(a,b)} induces R^D = {(a,a,b)}.
        let q = ConjunctiveQuery::boolean("Q1", vec![Atom::new("R", ["x", "x", "y"])]).unwrap();
        let rel = VRelation::from_rows(
            cols(&["x", "y"]),
            vec![vec![Value::text("a"), Value::text("b")]],
        );
        let db = rel.induced_database(&q);
        assert!(db.contains_fact(
            "R",
            &vec![Value::text("a"), Value::text("a"), Value::text("b")]
        ));
        assert_eq!(db.num_facts("R"), 1);
    }

    #[test]
    fn product_relation() {
        let rel = VRelation::product(&[
            ("x".to_string(), vec![Value::int(1), Value::int(2)]),
            (
                "y".to_string(),
                vec![Value::int(1), Value::int(2), Value::int(3)],
            ),
        ]);
        assert_eq!(rel.len(), 6);
        assert!(rel.is_totally_uniform());
    }

    #[test]
    fn normal_relation_example_3_5() {
        // P = {(u,u,v,v) | u,v in [n]} over columns x1,x2,x1',x2' from Example 3.5.
        let product = VRelation::product(&[
            ("u".to_string(), (1..=3).map(Value::int).collect()),
            ("v".to_string(), (1..=3).map(Value::int).collect()),
        ]);
        let psi: Vec<(Var, BTreeSet<Var>)> = vec![
            ("x1".to_string(), ["u".to_string()].into_iter().collect()),
            ("x2".to_string(), ["u".to_string()].into_iter().collect()),
            ("x1p".to_string(), ["v".to_string()].into_iter().collect()),
            ("x2p".to_string(), ["v".to_string()].into_iter().collect()),
        ];
        let normal = VRelation::normal_relation(&product, &psi);
        assert_eq!(normal.len(), 9);
        assert!(normal.is_totally_uniform());
        // Columns x1 and x2 are equal in every row.
        for row in normal.rows() {
            assert_eq!(row[0], row[1]);
            assert_eq!(row[2], row[3]);
        }
    }

    #[test]
    fn normal_relation_with_concatenated_column() {
        // The four-attribute example from Definition 3.3: {(uv, u, v, v)}.
        let product = VRelation::product(&[
            ("u".to_string(), (1..=2).map(Value::int).collect()),
            ("v".to_string(), (1..=2).map(Value::int).collect()),
        ]);
        let psi: Vec<(Var, BTreeSet<Var>)> = vec![
            (
                "a".to_string(),
                ["u".to_string(), "v".to_string()].into_iter().collect(),
            ),
            ("b".to_string(), ["u".to_string()].into_iter().collect()),
            ("c".to_string(), ["v".to_string()].into_iter().collect()),
            ("d".to_string(), ["v".to_string()].into_iter().collect()),
        ];
        let normal = VRelation::normal_relation(&product, &psi);
        assert_eq!(normal.len(), 4);
        // The first column is a key.
        assert_eq!(normal.project(&cols(&["a"])).len(), 4);
        // The last two columns are equal.
        for row in normal.rows() {
            assert_eq!(row[2], row[3]);
        }
        assert!(normal.is_totally_uniform());
    }

    #[test]
    fn step_relation_shape() {
        let w: BTreeSet<Var> = ["y".to_string()].into_iter().collect();
        let rel = VRelation::step_relation(&cols(&["x", "y", "z"]), &w, 4);
        assert_eq!(rel.len(), 4);
        for row in rel.rows() {
            assert_eq!(row[1], Value::int(1)); // column y is constant
            assert_eq!(row[0], row[2]); // x and z always agree
        }
        assert!(rel.is_totally_uniform());
        assert_eq!(rel.project(&cols(&["x"])).len(), 4);
        assert_eq!(rel.project(&cols(&["y"])).len(), 1);
    }

    #[test]
    fn domain_product_multiplies_sizes() {
        let w1: BTreeSet<Var> = ["x".to_string()].into_iter().collect();
        let w2: BTreeSet<Var> = ["y".to_string()].into_iter().collect();
        let p1 = VRelation::step_relation(&cols(&["x", "y"]), &w1, 2);
        let p2 = VRelation::step_relation(&cols(&["x", "y"]), &w2, 3);
        let product = p1.domain_product(&p2);
        assert_eq!(product.len(), 6);
        assert!(product.is_totally_uniform());
        // Projection sizes multiply too: p1 varies y over 2 values (x is the
        // constant column), p2 varies x over 3 values.
        assert_eq!(product.project(&cols(&["y"])).len(), 2);
        assert_eq!(product.project(&cols(&["x"])).len(), 3);
    }

    #[test]
    fn total_uniformity_detects_skew() {
        let rel = VRelation::from_rows(
            cols(&["x", "y"]),
            vec![
                vec![Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(2), Value::int(1)],
            ],
        );
        assert!(!rel.is_totally_uniform());
        let parity = VRelation::from_rows(
            cols(&["x", "y", "z"]),
            (0..2i64)
                .flat_map(|a| {
                    (0..2i64).map(move |b| vec![Value::int(a), Value::int(b), Value::int(a ^ b)])
                })
                .collect::<Vec<_>>(),
        );
        assert!(parity.is_totally_uniform());
    }

    #[test]
    fn degrees() {
        let w: BTreeSet<Var> = BTreeSet::new();
        let rel = VRelation::step_relation(&cols(&["x", "y"]), &w, 4);
        // deg(y | x) = |Pi_xy| / |Pi_x| = 4/4 = 1.
        assert_eq!(rel.degree(&cols(&["y"]), &cols(&["x"])), 1.0);
        // deg(y | {}) = 4.
        assert_eq!(rel.degree(&cols(&["y"]), &[]), 4.0);
    }

    #[test]
    fn empty_relation_is_totally_uniform() {
        let rel = VRelation::new(cols(&["x"]));
        assert!(rel.is_totally_uniform());
        assert!(rel.is_empty());
    }
}
