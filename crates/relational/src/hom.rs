//! Homomorphism enumeration and counting.
//!
//! The central quantity of the paper is `|hom(Q, D)|`, the number of
//! homomorphisms from a conjunctive query (or a structure) to a database
//! instance: the bag-set answer of a Boolean conjunctive query is exactly this
//! count, and containment `Q1 ⊑ Q2` means `|hom(Q1, D)| ≤ |hom(Q2, D)|` for
//! every `D` (Section 2.2).
//!
//! The solver is a backtracking search with per-variable candidate sets
//! (the intersection, over all atoms containing the variable, of the values
//! occurring at the variable's positions) and eager checking of every atom as
//! soon as its last variable is bound.  This is exact and fast enough for the
//! instance sizes produced by the paper's constructions; an asymptotically
//! better junction-tree counting algorithm for acyclic queries lives in
//! `bqc-core::yannakakis` and is benchmarked against this one.

use crate::query::{Atom, ConjunctiveQuery, Var};
use crate::structure::Structure;
use crate::value::{Tuple, Value};
use bqc_obs::{Budget, Exhausted};
use std::collections::{BTreeMap, BTreeSet};

/// An assignment of query variables to domain values.
pub type Assignment = BTreeMap<Var, Value>;

/// Enumerates all homomorphisms from `query` to `data`.
pub fn enumerate_homomorphisms(query: &ConjunctiveQuery, data: &Structure) -> Vec<Assignment> {
    enumerate_homomorphisms_budgeted(query, data, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`enumerate_homomorphisms`] under a cooperative work budget: the search
/// charges one hom-step per candidate value tried and aborts with
/// `Err(Exhausted)` when the budget runs out.  An aborted enumeration
/// certifies nothing — in particular it must not be confused with an empty
/// (completed) one.
pub fn enumerate_homomorphisms_budgeted(
    query: &ConjunctiveQuery,
    data: &Structure,
    budget: &Budget,
) -> Result<Vec<Assignment>, Exhausted> {
    let mut result = Vec::new();
    for_each_homomorphism_budgeted(query, data, budget, |assignment| {
        result.push(assignment.clone())
    })?;
    Ok(result)
}

/// Counts the homomorphisms from `query` to `data`.
pub fn count_homomorphisms(query: &ConjunctiveQuery, data: &Structure) -> u128 {
    count_homomorphisms_budgeted(query, data, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`count_homomorphisms`] under a cooperative work budget; see
/// [`enumerate_homomorphisms_budgeted`] for the abort semantics.
pub fn count_homomorphisms_budgeted(
    query: &ConjunctiveQuery,
    data: &Structure,
    budget: &Budget,
) -> Result<u128, Exhausted> {
    let mut count: u128 = 0;
    for_each_homomorphism_budgeted(query, data, budget, |_| count += 1)?;
    Ok(count)
}

/// Evaluates a (possibly non-Boolean) query under bag-set semantics: the
/// result maps each head tuple `d` to `|Q(D)[d]|`, the number of
/// homomorphisms agreeing with `d` on the head variables (the SQL
/// `COUNT(*) … GROUP BY head`).  Head tuples with count zero are absent.
pub fn bag_set_answer(query: &ConjunctiveQuery, data: &Structure) -> BTreeMap<Tuple, u128> {
    let mut result: BTreeMap<Tuple, u128> = BTreeMap::new();
    for_each_homomorphism(query, data, |assignment| {
        let key: Tuple = query.head().iter().map(|v| assignment[v].clone()).collect();
        *result.entry(key).or_insert(0) += 1;
    });
    result
}

/// Invokes `callback` once per homomorphism from `query` to `data`.
pub fn for_each_homomorphism<F: FnMut(&Assignment)>(
    query: &ConjunctiveQuery,
    data: &Structure,
    callback: F,
) {
    for_each_homomorphism_budgeted(query, data, &Budget::unlimited(), callback)
        .expect("unlimited budget cannot exhaust")
}

/// [`for_each_homomorphism`] under a cooperative work budget: one hom-step
/// is charged per candidate value the backtracking search tries (i.e. per
/// search-tree node), so the abort latency is bounded by a single atom
/// check.  With an unlimited budget the charge is one pointer test per node.
pub fn for_each_homomorphism_budgeted<F: FnMut(&Assignment)>(
    query: &ConjunctiveQuery,
    data: &Structure,
    budget: &Budget,
    mut callback: F,
) -> Result<(), Exhausted> {
    let search = match SearchPlan::build(query, data) {
        Some(search) => search,
        None => return Ok(()), // some variable has no candidate value
    };
    let mut assignment = Assignment::new();
    search.run(0, &mut assignment, budget, &mut callback)
}

struct SearchPlan<'a> {
    /// Variables in the order they are assigned.
    order: Vec<Var>,
    /// Candidate values for each variable (same order as `order`).
    candidates: Vec<Vec<Value>>,
    /// For each position `i` in the order, the atoms whose variables are all
    /// assigned once `order[i]` is bound (checked eagerly at that point).
    checks: Vec<Vec<&'a Atom>>,
    /// For each position `i`, the atoms mentioning `order[i]` that are not yet
    /// fully assigned at `i` (filtered with a partial-consistency check).
    partial_checks: Vec<Vec<&'a Atom>>,
    data: &'a Structure,
}

impl<'a> SearchPlan<'a> {
    fn build(query: &'a ConjunctiveQuery, data: &'a Structure) -> Option<SearchPlan<'a>> {
        // Candidate sets: intersection over atoms/positions mentioning the variable.
        let mut candidates: BTreeMap<&Var, BTreeSet<Value>> = BTreeMap::new();
        for atom in query.atoms() {
            for (pos, var) in atom.args.iter().enumerate() {
                let values: BTreeSet<Value> =
                    data.facts(&atom.relation).map(|t| t[pos].clone()).collect();
                match candidates.get_mut(var) {
                    Some(existing) => {
                        existing.retain(|v| values.contains(v));
                    }
                    None => {
                        candidates.insert(var, values);
                    }
                }
            }
        }
        for var in query.vars() {
            if candidates.get(var).is_none_or(|c| c.is_empty()) {
                return None;
            }
        }

        // Assignment order: greedily pick the variable with the smallest
        // candidate set among those connected to already-ordered variables
        // (falling back to the globally smallest when none is connected).
        let edges = query.gaifman_edges();
        let mut neighbors: BTreeMap<&Var, BTreeSet<&Var>> = BTreeMap::new();
        for (a, b) in &edges {
            let (a_ref, b_ref) = (
                query
                    .vars()
                    .iter()
                    .find(|v| *v == a)
                    .expect("edge var in query"),
                query
                    .vars()
                    .iter()
                    .find(|v| *v == b)
                    .expect("edge var in query"),
            );
            neighbors.entry(a_ref).or_default().insert(b_ref);
            neighbors.entry(b_ref).or_default().insert(a_ref);
        }
        let mut remaining: BTreeSet<&Var> = query.vars().iter().collect();
        let mut order: Vec<Var> = Vec::with_capacity(remaining.len());
        let mut ordered_set: BTreeSet<&Var> = BTreeSet::new();
        while !remaining.is_empty() {
            let connected: Vec<&&Var> = remaining
                .iter()
                .filter(|v| {
                    neighbors
                        .get(**v)
                        .is_some_and(|ns| ns.iter().any(|n| ordered_set.contains(n)))
                })
                .collect();
            let pool: Vec<&Var> = if connected.is_empty() {
                remaining.iter().copied().collect()
            } else {
                connected.into_iter().copied().collect()
            };
            let chosen: &Var = pool
                .into_iter()
                .min_by_key(|v| candidates[*v].len())
                .expect("pool is non-empty");
            order.push(chosen.clone());
            ordered_set.insert(chosen);
            remaining.remove(chosen);
        }

        // Atom checks: an atom is fully checked at the first position where all
        // of its variables are assigned, and *partially* checked (does some
        // tuple agree with the assigned positions?) every time one of its
        // variables is assigned earlier.  The partial check is what keeps
        // wide-arity atoms (such as the ones produced by the Section 5
        // reduction) from exploding the search.
        let position_of: BTreeMap<&Var, usize> =
            order.iter().enumerate().map(|(i, v)| (v, i)).collect();
        let mut checks: Vec<Vec<&Atom>> = vec![Vec::new(); order.len()];
        let mut partial_checks: Vec<Vec<&Atom>> = vec![Vec::new(); order.len()];
        for atom in query.atoms() {
            let positions: Vec<usize> = atom
                .var_set()
                .iter()
                .map(|v| *position_of.get(v).expect("atom var is ordered"))
                .collect();
            let last = *positions
                .iter()
                .max()
                .expect("atom has at least one variable");
            checks[last].push(atom);
            for &p in &positions {
                if p != last {
                    partial_checks[p].push(atom);
                }
            }
        }

        let candidate_lists: Vec<Vec<Value>> = order
            .iter()
            .map(|v| candidates[v].iter().cloned().collect())
            .collect();
        Some(SearchPlan {
            order,
            candidates: candidate_lists,
            checks,
            partial_checks,
            data,
        })
    }

    fn run<F: FnMut(&Assignment)>(
        &self,
        depth: usize,
        assignment: &mut Assignment,
        budget: &Budget,
        callback: &mut F,
    ) -> Result<(), Exhausted> {
        if depth == self.order.len() {
            callback(assignment);
            return Ok(());
        }
        let var = &self.order[depth];
        for value in &self.candidates[depth] {
            budget.charge_hom_steps(1)?;
            assignment.insert(var.clone(), value.clone());
            if self.checks[depth]
                .iter()
                .all(|atom| self.atom_satisfied(atom, assignment))
                && self.partial_checks[depth]
                    .iter()
                    .all(|atom| self.atom_partially_satisfiable(atom, assignment))
            {
                self.run(depth + 1, assignment, budget, callback)?;
            }
        }
        assignment.remove(var);
        Ok(())
    }

    fn atom_satisfied(&self, atom: &Atom, assignment: &Assignment) -> bool {
        let tuple: Tuple = atom.args.iter().map(|v| assignment[v].clone()).collect();
        self.data.contains_fact(&atom.relation, &tuple)
    }

    /// `true` iff some tuple of the atom's relation agrees with the currently
    /// assigned positions (a semi-join style consistency filter).
    fn atom_partially_satisfiable(&self, atom: &Atom, assignment: &Assignment) -> bool {
        self.data.facts(&atom.relation).any(|tuple| {
            atom.args
                .iter()
                .zip(tuple.iter())
                .all(|(var, value)| assignment.get(var).is_none_or(|assigned| assigned == value))
        })
    }
}

/// Converts a structure into an isomorphic Boolean conjunctive query: each
/// domain value becomes a variable and each tuple becomes an atom
/// (Section 2.2: "DOM and BagCQC are essentially the same problem").
///
/// Returns the query together with the list of domain values that occur in no
/// tuple (isolated values), which the query cannot represent.
pub fn structure_to_query(
    structure: &Structure,
    name: &str,
) -> (Option<ConjunctiveQuery>, Vec<Value>) {
    let mut var_of: BTreeMap<Value, Var> = BTreeMap::new();
    let mut next = 0usize;
    let mut atoms = Vec::new();
    for symbol in structure.vocabulary().symbols() {
        for tuple in structure.facts(&symbol.name) {
            let args: Vec<Var> = tuple
                .iter()
                .map(|value| {
                    var_of
                        .entry(value.clone())
                        .or_insert_with(|| {
                            let v = format!("v{next}");
                            next += 1;
                            v
                        })
                        .clone()
                })
                .collect();
            atoms.push(Atom::new(symbol.name.clone(), args));
        }
    }
    let isolated: Vec<Value> = structure
        .active_domain()
        .into_iter()
        .filter(|v| !var_of.contains_key(v))
        .collect();
    let query = if atoms.is_empty() {
        None
    } else {
        Some(ConjunctiveQuery::boolean(name, atoms).expect("structure yields a valid query"))
    };
    (query, isolated)
}

/// Counts homomorphisms between structures: functions `f : dom(B) → dom(A)`
/// with `f(R^B) ⊆ R^A` for every relation symbol.
pub fn count_structure_homomorphisms(from: &Structure, to: &Structure) -> u128 {
    let (query, isolated) = structure_to_query(from, "hom_src");
    let base = match query {
        Some(query) => count_homomorphisms(&query, to),
        None => 1,
    };
    let domain_size = to.active_domain().len() as u128;
    let mut total = base;
    for _ in 0..isolated.len() {
        total *= domain_size;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Atom;

    fn path_query() -> ConjunctiveQuery {
        // Q() :- R(x,y), R(y,z)
        ConjunctiveQuery::boolean(
            "P",
            vec![Atom::new("R", ["x", "y"]), Atom::new("R", ["y", "z"])],
        )
        .unwrap()
    }

    fn cycle_structure(n: i64) -> Structure {
        let mut s = Structure::empty();
        for i in 0..n {
            s.add_fact("R", vec![Value::int(i), Value::int((i + 1) % n)]);
        }
        s
    }

    #[test]
    fn count_paths_in_cycle() {
        // In a directed n-cycle every vertex starts exactly one path of length 2.
        let q = path_query();
        for n in 2..6 {
            assert_eq!(count_homomorphisms(&q, &cycle_structure(n)), n as u128);
        }
    }

    #[test]
    fn count_paths_in_complete_graph() {
        // In the complete directed graph with self loops on n vertices there are
        // n^3 homomorphic images of the 2-path.
        let q = path_query();
        let mut s = Structure::empty();
        let n = 4i64;
        for a in 0..n {
            for b in 0..n {
                s.add_fact("R", vec![Value::int(a), Value::int(b)]);
            }
        }
        assert_eq!(count_homomorphisms(&q, &s), (n * n * n) as u128);
    }

    #[test]
    fn enumerate_matches_count() {
        let q = path_query();
        let s = cycle_structure(5);
        let homs = enumerate_homomorphisms(&q, &s);
        assert_eq!(homs.len() as u128, count_homomorphisms(&q, &s));
        for h in &homs {
            assert_eq!(h.len(), 3);
            // verify both atoms
            assert!(s.contains_fact("R", &vec![h["x"].clone(), h["y"].clone()]));
            assert!(s.contains_fact("R", &vec![h["y"].clone(), h["z"].clone()]));
        }
    }

    #[test]
    fn budgeted_search_aborts_without_an_answer() {
        use bqc_obs::{BudgetResource, BudgetSpec};
        let q = path_query();
        let s = cycle_structure(5);
        // One hom-step cannot finish the search over a 5-cycle.
        let tight = BudgetSpec {
            max_hom_steps: Some(1),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        let err = count_homomorphisms_budgeted(&q, &s, &tight).unwrap_err();
        assert_eq!(err.resource, BudgetResource::HomSteps);
        // A generous budget reproduces the unbudgeted result exactly.
        let generous = BudgetSpec {
            max_hom_steps: Some(1 << 20),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        assert_eq!(
            count_homomorphisms_budgeted(&q, &s, &generous).unwrap(),
            count_homomorphisms(&q, &s)
        );
        assert!(generous.hom_steps_spent() > 0);
    }

    #[test]
    fn repeated_variables_in_atoms() {
        // Q() :- R(x,x) counts self-loops.
        let q = ConjunctiveQuery::boolean("L", vec![Atom::new("R", ["x", "x"])]).unwrap();
        let mut s = cycle_structure(4);
        assert_eq!(count_homomorphisms(&q, &s), 0);
        s.add_fact("R", vec![Value::int(7), Value::int(7)]);
        assert_eq!(count_homomorphisms(&q, &s), 1);
    }

    #[test]
    fn empty_relation_means_no_homomorphisms() {
        let q =
            ConjunctiveQuery::boolean("Q", vec![Atom::new("R", ["x", "y"]), Atom::new("S", ["y"])])
                .unwrap();
        let s = cycle_structure(3);
        assert_eq!(count_homomorphisms(&q, &s), 0);
        assert!(enumerate_homomorphisms(&q, &s).is_empty());
    }

    #[test]
    fn bag_set_answer_group_by() {
        // Q(x) :- R(x,y): out-degree of every vertex.
        let q = ConjunctiveQuery::new("Q", vec!["x".to_string()], vec![Atom::new("R", ["x", "y"])])
            .unwrap();
        let mut s = cycle_structure(3);
        s.add_fact("R", vec![Value::int(0), Value::int(2)]);
        let answer = bag_set_answer(&q, &s);
        assert_eq!(answer[&vec![Value::int(0)]], 2);
        assert_eq!(answer[&vec![Value::int(1)]], 1);
        assert_eq!(answer[&vec![Value::int(2)]], 1);
    }

    #[test]
    fn triangle_vs_path_counts() {
        // Vee's example (Example 4.3): for every D, #triangles <= #2-out-stars.
        let triangle = ConjunctiveQuery::boolean(
            "T",
            vec![
                Atom::new("R", ["x1", "x2"]),
                Atom::new("R", ["x2", "x3"]),
                Atom::new("R", ["x3", "x1"]),
            ],
        )
        .unwrap();
        let star = ConjunctiveQuery::boolean(
            "S",
            vec![Atom::new("R", ["y1", "y2"]), Atom::new("R", ["y1", "y3"])],
        )
        .unwrap();
        for n in 2..6 {
            let s = cycle_structure(n);
            assert!(count_homomorphisms(&triangle, &s) <= count_homomorphisms(&star, &s));
        }
        let mut dense = Structure::empty();
        for a in 0..3i64 {
            for b in 0..3i64 {
                if a != b {
                    dense.add_fact("R", vec![Value::int(a), Value::int(b)]);
                }
            }
        }
        assert!(count_homomorphisms(&triangle, &dense) <= count_homomorphisms(&star, &dense));
    }

    #[test]
    fn structure_homomorphisms() {
        // Counting graph homomorphisms from an edge to a graph = #edges (as a structure hom).
        let mut edge = Structure::empty();
        edge.add_fact("R", vec![Value::text("a"), Value::text("b")]);
        let target = cycle_structure(5);
        assert_eq!(count_structure_homomorphisms(&edge, &target), 5);
        // Isolated domain values multiply by |dom|.
        let mut edge_iso = edge.clone();
        edge_iso.add_domain_value(Value::text("lonely"));
        assert_eq!(count_structure_homomorphisms(&edge_iso, &target), 25);
    }

    #[test]
    fn structure_to_query_roundtrip() {
        let s = cycle_structure(3);
        let (query, isolated) = structure_to_query(&s, "C3");
        let query = query.unwrap();
        assert!(isolated.is_empty());
        assert_eq!(query.atoms().len(), 3);
        assert_eq!(query.num_vars(), 3);
        // hom(C3, C3) as query-to-structure = 3 (rotations).
        assert_eq!(count_homomorphisms(&query, &s), 3);
    }

    #[test]
    fn disjoint_copies_square_the_count() {
        let q = path_query();
        let s = cycle_structure(4);
        let single = count_homomorphisms(&q, &s);
        let doubled_query = q.power(2);
        assert_eq!(count_homomorphisms(&doubled_query, &s), single * single);
    }
}
