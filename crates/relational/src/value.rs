//! Domain values for relational structures.
//!
//! The constructions in the paper require three kinds of values beyond plain
//! constants:
//!
//! * **tagged values** `("X", c)` — the annotation used in the proof of
//!   Theorem 4.4, where every constant is paired with the name of the query
//!   variable it came from so that the "erasing" homomorphism `e : D → Q1`
//!   exists;
//! * **pairs** — the domain product `P1 ⊗ P2` of Definition B.1 pairs up values
//!   position-wise, producing values in `D1 × D2`;
//! * **concatenations** — normal relations (Definition 3.3) contain values such
//!   as `uv` (the concatenation of `u` and `v`), which we model as tuples of
//!   values.
//!
//! [`Value`] is a small tree-shaped datatype closed under these operations with
//! total ordering, hashing and a readable display form.

use std::fmt;

/// A single value in the domain of a relational structure.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A symbolic (string) constant.
    Text(String),
    /// A value annotated with a tag, e.g. the variable name it is derived from.
    Tagged(String, Box<Value>),
    /// A pair of values, used by domain products.
    Pair(Box<Value>, Box<Value>),
    /// A tuple of values, used to represent concatenated attributes of normal
    /// relations (e.g. the value `uv` of Definition 3.3).
    Tuple(Vec<Value>),
}

impl Value {
    /// Convenience constructor for an integer value.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Convenience constructor for a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Annotates this value with a tag (cf. the proof of Theorem 4.4).
    pub fn tagged(tag: impl Into<String>, inner: Value) -> Value {
        Value::Tagged(tag.into(), Box::new(inner))
    }

    /// Pairs two values (domain product, Definition B.1).
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Builds a tuple value from components.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(items.into_iter().collect())
    }

    /// Returns the tag if this is a tagged value.
    pub fn tag(&self) -> Option<&str> {
        match self {
            Value::Tagged(tag, _) => Some(tag),
            _ => None,
        }
    }

    /// Returns the integer if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}

impl From<(Value, Value)> for Value {
    fn from((a, b): (Value, Value)) -> Value {
        Value::pair(a, b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Tagged(tag, inner) => write!(f, "{tag}:{inner}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::Tuple(items) => {
                write!(f, "<")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// A tuple of domain values (one row of a relation).
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::text("a").as_int(), None);
        assert_eq!(Value::tagged("X", Value::int(1)).tag(), Some("X"));
        assert_eq!(Value::int(1).tag(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::text("a").to_string(), "a");
        assert_eq!(Value::tagged("X", Value::int(1)).to_string(), "X:1");
        assert_eq!(
            Value::pair(Value::int(1), Value::int(2)).to_string(),
            "(1,2)"
        );
        assert_eq!(
            Value::tuple([Value::int(1), Value::text("u")]).to_string(),
            "<1,u>"
        );
    }

    #[test]
    fn values_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(Value::int(1));
        set.insert(Value::int(1));
        set.insert(Value::pair(Value::int(1), Value::int(2)));
        assert_eq!(set.len(), 2);
        assert!(Value::Int(1) < Value::Int(2));
    }

    #[test]
    fn conversions() {
        let v: Value = 5i64.into();
        assert_eq!(v, Value::Int(5));
        let v: Value = "abc".into();
        assert_eq!(v, Value::Text("abc".into()));
        let v: Value = (Value::int(1), Value::int(2)).into();
        assert_eq!(v, Value::pair(Value::int(1), Value::int(2)));
    }
}
