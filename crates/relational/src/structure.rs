//! Relational structures (database instances).
//!
//! A structure `A = (A, R_1^A, …, R_m^A)` consists of a domain and one
//! relation per symbol of the vocabulary (Section 2.1).  The domain tracked
//! here is the *active* domain (values occurring in some tuple) plus any
//! explicitly added isolated values; the paper's constructions only ever need
//! the active domain.

use crate::schema::Vocabulary;
use crate::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite relational structure over a [`Vocabulary`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Structure {
    vocabulary: Vocabulary,
    relations: BTreeMap<String, BTreeSet<Tuple>>,
    extra_domain: BTreeSet<Value>,
}

impl Structure {
    /// Creates an empty structure over the given vocabulary.
    pub fn new(vocabulary: Vocabulary) -> Structure {
        let relations = vocabulary
            .symbols()
            .map(|s| (s.name, BTreeSet::new()))
            .collect();
        Structure {
            vocabulary,
            relations,
            extra_domain: BTreeSet::new(),
        }
    }

    /// Creates an empty structure with an empty vocabulary; symbols are
    /// declared implicitly by [`Structure::add_fact`].
    pub fn empty() -> Structure {
        Structure::default()
    }

    /// The structure's vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Adds a tuple to relation `name`, declaring the symbol if necessary.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length contradicts the declared arity.
    pub fn add_fact(&mut self, name: &str, tuple: Tuple) {
        match self.vocabulary.arity_of(name) {
            Some(arity) => assert_eq!(
                arity,
                tuple.len(),
                "tuple {tuple:?} has wrong arity for {name}/{arity}"
            ),
            None => {
                self.vocabulary.declare(name, tuple.len());
            }
        }
        self.relations
            .entry(name.to_string())
            .or_default()
            .insert(tuple);
    }

    /// Adds an isolated value to the domain.
    pub fn add_domain_value(&mut self, value: Value) {
        self.extra_domain.insert(value);
    }

    /// The tuples of relation `name` (empty if the symbol has no tuples).
    pub fn facts(&self, name: &str) -> impl Iterator<Item = &Tuple> {
        self.relations.get(name).into_iter().flatten()
    }

    /// Number of tuples in relation `name`.
    pub fn num_facts(&self, name: &str) -> usize {
        self.relations.get(name).map_or(0, |r| r.len())
    }

    /// Total number of tuples across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// `true` iff the given tuple is in relation `name`.
    pub fn contains_fact(&self, name: &str, tuple: &Tuple) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(tuple))
    }

    /// The active domain: every value occurring in some tuple, plus explicitly
    /// added isolated values.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut domain = self.extra_domain.clone();
        for tuples in self.relations.values() {
            for tuple in tuples {
                for value in tuple {
                    domain.insert(value.clone());
                }
            }
        }
        domain
    }

    /// Names of relations that have at least one tuple.
    pub fn non_empty_relations(&self) -> impl Iterator<Item = &str> {
        self.relations
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(n, _)| n.as_str())
    }

    /// Checks whether `map` (a function on domain values) is a homomorphism
    /// from `self` to `other`: for every relation `R` and tuple `t ∈ R^self`,
    /// the image tuple belongs to `R^other`.  Values not present in `map` make
    /// the check fail.
    pub fn is_homomorphism(&self, other: &Structure, map: &BTreeMap<Value, Value>) -> bool {
        for (name, tuples) in &self.relations {
            for tuple in tuples {
                let image: Option<Tuple> = tuple.iter().map(|v| map.get(v).cloned()).collect();
                match image {
                    Some(image) if other.contains_fact(name, &image) => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// The disjoint union of `n` copies of this structure (`n · A` in
    /// Section 2.1): each copy's values are tagged with the copy index, so the
    /// copies share no domain values.  `hom(n·A, D) = hom(A, D)^n`.
    pub fn disjoint_copies(&self, n: usize) -> Structure {
        assert!(n >= 1, "disjoint_copies requires n >= 1");
        let mut result = Structure::new(self.vocabulary.clone());
        for copy in 1..=n {
            let tag = format!("c{copy}");
            for value in &self.extra_domain {
                result.add_domain_value(Value::tagged(tag.clone(), value.clone()));
            }
            for (name, tuples) in &self.relations {
                for tuple in tuples {
                    let tagged: Tuple = tuple
                        .iter()
                        .map(|v| Value::tagged(tag.clone(), v.clone()))
                        .collect();
                    result.add_fact(name, tagged);
                }
            }
        }
        result
    }

    /// Restricts the structure to the relation symbols in `names`.
    pub fn restrict_to(&self, names: &BTreeSet<String>) -> Structure {
        let mut result = Structure::empty();
        for (name, tuples) in &self.relations {
            if names.contains(name) {
                for tuple in tuples {
                    result.add_fact(name, tuple.clone());
                }
            }
        }
        result
    }

    /// An isomorphic copy whose domain values are the integers
    /// `0, …, |adom|−1` (in the order of the active domain).  Renaming the
    /// domain injectively preserves every homomorphism count, so this is the
    /// canonical way to print a structure — e.g. a witness database whose
    /// values are tags or pairs — in the re-parseable ground-fact syntax.
    pub fn with_integer_domain(&self) -> Structure {
        let renaming: BTreeMap<Value, Value> = self
            .active_domain()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, Value::int(i as i64)))
            .collect();
        let mut result = Structure::new(self.vocabulary.clone());
        for value in &self.extra_domain {
            result.add_domain_value(renaming[value].clone());
        }
        for (name, tuples) in &self.relations {
            for tuple in tuples {
                let renamed: Tuple = tuple.iter().map(|v| renaming[v].clone()).collect();
                result.add_fact(name, renamed);
            }
        }
        result
    }

    /// Merges all facts of `other` into this structure.
    pub fn merge(&mut self, other: &Structure) {
        for (name, tuples) in &other.relations {
            for tuple in tuples {
                self.add_fact(name, tuple.clone());
            }
        }
        for value in &other.extra_domain {
            self.add_domain_value(value.clone());
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, tuples) in &self.relations {
            for tuple in tuples {
                write!(f, "{name}(")?;
                for (i, value) in tuple.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{value}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_structure() -> Structure {
        let mut s = Structure::empty();
        s.add_fact("R", vec![Value::int(1), Value::int(2)]);
        s.add_fact("R", vec![Value::int(2), Value::int(3)]);
        s
    }

    #[test]
    fn facts_and_domain() {
        let s = edge_structure();
        assert_eq!(s.num_facts("R"), 2);
        assert_eq!(s.num_facts("S"), 0);
        assert_eq!(s.total_facts(), 2);
        assert_eq!(s.active_domain().len(), 3);
        assert!(s.contains_fact("R", &vec![Value::int(1), Value::int(2)]));
        assert!(!s.contains_fact("R", &vec![Value::int(3), Value::int(1)]));
        assert_eq!(s.vocabulary().arity_of("R"), Some(2));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn arity_mismatch_panics() {
        let mut s = edge_structure();
        s.add_fact("R", vec![Value::int(1)]);
    }

    #[test]
    fn isolated_domain_values() {
        let mut s = edge_structure();
        s.add_domain_value(Value::int(99));
        assert_eq!(s.active_domain().len(), 4);
    }

    #[test]
    fn homomorphism_check() {
        let s = edge_structure();
        // Map everything to a self-loop structure.
        let mut loop_structure = Structure::empty();
        loop_structure.add_fact("R", vec![Value::int(0), Value::int(0)]);
        let map: BTreeMap<Value, Value> = [1, 2, 3]
            .iter()
            .map(|&v| (Value::int(v), Value::int(0)))
            .collect();
        assert!(s.is_homomorphism(&loop_structure, &map));
        // The reverse direction is not a homomorphism under the identity.
        let id: BTreeMap<Value, Value> = [(Value::int(0), Value::int(0))].into_iter().collect();
        assert!(!loop_structure.is_homomorphism(&s, &id));
    }

    #[test]
    fn disjoint_copies_multiply_facts() {
        let s = edge_structure();
        let tripled = s.disjoint_copies(3);
        assert_eq!(tripled.num_facts("R"), 6);
        assert_eq!(tripled.active_domain().len(), 9);
    }

    #[test]
    fn restrict_and_merge() {
        let mut s = edge_structure();
        s.add_fact("S", vec![Value::int(1)]);
        let only_r = s.restrict_to(&["R".to_string()].into_iter().collect());
        assert_eq!(only_r.num_facts("R"), 2);
        assert_eq!(only_r.num_facts("S"), 0);
        let mut merged = only_r.clone();
        merged.merge(&s);
        assert_eq!(merged.num_facts("S"), 1);
    }

    #[test]
    fn integer_domain_is_isomorphic() {
        let mut s = Structure::empty();
        s.add_fact(
            "R",
            vec![
                Value::tagged("c1", Value::int(7)),
                Value::tagged("c2", Value::int(7)),
            ],
        );
        s.add_fact(
            "R",
            vec![Value::text("a"), Value::tagged("c1", Value::int(7))],
        );
        s.add_domain_value(Value::text("iso"));
        let renamed = s.with_integer_domain();
        assert_eq!(renamed.num_facts("R"), 2);
        assert_eq!(renamed.active_domain().len(), s.active_domain().len());
        assert!(renamed.active_domain().iter().all(|v| v.as_int().is_some()));
    }

    #[test]
    fn display_lists_facts() {
        let s = edge_structure();
        let text = s.to_string();
        assert!(text.contains("R(1,2)."));
        assert!(text.contains("R(2,3)."));
    }
}
