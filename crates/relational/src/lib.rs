#![warn(missing_docs)]

//! # bqc-relational — relational substrate
//!
//! Conjunctive queries, relational structures (database instances),
//! homomorphism counting, bag-set semantics, V-relations and the witness
//! machinery used throughout the reproduction of *Bag Query Containment and
//! Information Theory* (PODS 2020).
//!
//! The paper studies the containment problem `Q1 ⊑ Q2` under **bag-set
//! semantics**: for every database `D` and every head tuple `d`, the number of
//! homomorphisms of `Q1` agreeing with `d` must not exceed that of `Q2`.  This
//! crate provides all the raw material for that problem:
//!
//! * [`ConjunctiveQuery`] / [`Atom`] — queries with repeated variables and
//!   arbitrary arities, the Boolean reduction of Lemma A.1, canonical
//!   structures, powers (`n·Q`) and Gaifman graphs;
//! * [`Structure`] — database instances over a [`Vocabulary`], disjoint copies
//!   and structure homomorphisms (the DOM problem of Section 2.1);
//! * [`hom`] — homomorphism enumeration / counting and bag-set evaluation;
//! * [`VRelation`] — relations over a query's variable set, the induced
//!   database `Π_{Q1}(P)` of Eq. (4), product / normal / step relations
//!   (Definition 3.3), domain products (Definition B.1) and total uniformity
//!   (Definition 4.5);
//! * [`parser`] — a small Datalog-ish text format for queries and instances.
//!
//! ## Quick example
//!
//! ```
//! use bqc_relational::parser::{parse_query, parse_structure};
//! use bqc_relational::hom::count_homomorphisms;
//!
//! let triangle = parse_query("Q() :- R(x,y), R(y,z), R(z,x)").unwrap();
//! let two_star = parse_query("Q() :- R(u,v), R(u,w)").unwrap();
//! let db = parse_structure("R(1,2). R(2,3). R(3,1).").unwrap();
//! assert_eq!(count_homomorphisms(&triangle, &db), 3);
//! assert_eq!(count_homomorphisms(&two_star, &db), 3);
//! ```

pub mod hom;
pub mod parser;
pub mod query;
pub mod schema;
pub mod structure;
pub mod value;
pub mod vrelation;

pub use hom::{
    bag_set_answer, count_homomorphisms, count_homomorphisms_budgeted,
    count_structure_homomorphisms, enumerate_homomorphisms, enumerate_homomorphisms_budgeted,
    for_each_homomorphism, for_each_homomorphism_budgeted, structure_to_query, Assignment,
};
pub use parser::{parse_query, parse_structure, ParseError};
pub use query::{Atom, ConjunctiveQuery, QueryError, Var};
pub use schema::{RelationSymbol, Vocabulary};
pub use structure::Structure;
pub use value::{Tuple, Value};
pub use vrelation::VRelation;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke_test() {
        let q1 = parse_query("Q1() :- R(x,y), R(y,x)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        let db = parse_structure("R(1,2). R(2,1). R(3,3).").unwrap();
        // Q1 counts 2-cycles (including the self loop), Q2 counts edges.
        assert_eq!(count_homomorphisms(&q1, &db), 3);
        assert_eq!(count_homomorphisms(&q2, &db), 3);
    }
}
