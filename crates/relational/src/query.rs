//! Conjunctive queries.
//!
//! A conjunctive query (Section 2.2 of the paper) is a conjunction of atoms
//! `Q(x) = A_1 ∧ … ∧ A_k`, where each atom `A_j = R(x_{j,1}, …, x_{j,a})`
//! associates a query variable with every attribute position of its relation
//! symbol; repeated variables inside an atom are allowed.  The head variables
//! `x` must occur in the body.  A query with no head variables is called
//! *Boolean* (its bag-set answer is a single count).
//!
//! Under bag-set semantics repeated atoms are redundant, so [`ConjunctiveQuery`]
//! de-duplicates atoms on construction (see the discussion of bag-bag vs.
//! bag-set semantics in Section 2.2).

use crate::schema::Vocabulary;
use crate::structure::Structure;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A query variable.  Variables are identified by name.
pub type Var = String;

/// One atom `R(x_1, …, x_a)` of a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation symbol name.
    pub relation: String,
    /// Variable at each attribute position (repetitions allowed).
    pub args: Vec<Var>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(
        relation: impl Into<String>,
        args: impl IntoIterator<Item = impl Into<Var>>,
    ) -> Atom {
        Atom {
            relation: relation.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// The set of distinct variables occurring in this atom.
    pub fn var_set(&self) -> BTreeSet<Var> {
        self.args.iter().cloned().collect()
    }

    /// Arity of the atom (number of positions, counting repetitions).
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.args.join(","))
    }
}

/// Errors raised when constructing a [`ConjunctiveQuery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any atom.
    HeadVariableNotInBody(Var),
    /// The same relation symbol is used with two different arities.
    InconsistentArity {
        /// The relation symbol with conflicting uses.
        relation: String,
        /// Arity seen first.
        first: usize,
        /// Conflicting arity seen later.
        second: usize,
    },
    /// The query has no atoms.
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::HeadVariableNotInBody(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            QueryError::InconsistentArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation {relation} used with inconsistent arities {first} and {second}"
            ),
            QueryError::EmptyBody => write!(f, "conjunctive query must have at least one atom"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query `Q(head) :- atoms`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Name of the query (cosmetic; used by the parser and display).
    pub name: String,
    head: Vec<Var>,
    atoms: Vec<Atom>,
    /// Distinct variables in first-occurrence order (head first, then body).
    vars: Vec<Var>,
}

impl ConjunctiveQuery {
    /// Creates a query with the given head variables and atoms.
    ///
    /// Repeated atoms are removed (bag-set semantics).  Returns an error if a
    /// head variable does not occur in the body, the body is empty, or a
    /// relation symbol is used with inconsistent arities.
    pub fn new(
        name: impl Into<String>,
        head: Vec<Var>,
        atoms: Vec<Atom>,
    ) -> Result<ConjunctiveQuery, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        for atom in &atoms {
            match arities.get(&atom.relation) {
                Some(&a) if a != atom.arity() => {
                    return Err(QueryError::InconsistentArity {
                        relation: atom.relation.clone(),
                        first: a,
                        second: atom.arity(),
                    })
                }
                Some(_) => {}
                None => {
                    arities.insert(atom.relation.clone(), atom.arity());
                }
            }
        }
        let body_vars: BTreeSet<&Var> = atoms.iter().flat_map(|a| a.args.iter()).collect();
        for v in &head {
            if !body_vars.contains(v) {
                return Err(QueryError::HeadVariableNotInBody(v.clone()));
            }
        }
        // De-duplicate atoms while keeping their first-occurrence order.
        let mut seen = BTreeSet::new();
        let mut unique_atoms = Vec::new();
        for atom in atoms {
            if seen.insert(atom.clone()) {
                unique_atoms.push(atom);
            }
        }
        let mut vars = Vec::new();
        let mut var_seen = BTreeSet::new();
        for v in head
            .iter()
            .chain(unique_atoms.iter().flat_map(|a| a.args.iter()))
        {
            if var_seen.insert(v.clone()) {
                vars.push(v.clone());
            }
        }
        Ok(ConjunctiveQuery {
            name: name.into(),
            head,
            atoms: unique_atoms,
            vars,
        })
    }

    /// Creates a Boolean query (no head variables).
    pub fn boolean(
        name: impl Into<String>,
        atoms: Vec<Atom>,
    ) -> Result<ConjunctiveQuery, QueryError> {
        ConjunctiveQuery::new(name, Vec::new(), atoms)
    }

    /// The head variables.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// The atoms of the query (de-duplicated).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Distinct variables in deterministic (first-occurrence) order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The set of variables.
    pub fn var_set(&self) -> BTreeSet<Var> {
        self.vars.iter().cloned().collect()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff the query has no head variables.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The vocabulary induced by the query's atoms.
    pub fn vocabulary(&self) -> Vocabulary {
        Vocabulary::from_symbols(self.atoms.iter().map(|a| (a.relation.clone(), a.arity())))
    }

    /// The query's hypergraph: one hyperedge (variable set) per atom.
    pub fn hyperedges(&self) -> Vec<BTreeSet<Var>> {
        self.atoms.iter().map(|a| a.var_set()).collect()
    }

    /// Edges of the Gaifman graph: unordered pairs of distinct variables that
    /// co-occur in some atom.
    pub fn gaifman_edges(&self) -> BTreeSet<(Var, Var)> {
        let mut edges = BTreeSet::new();
        for atom in &self.atoms {
            let set: Vec<Var> = atom.var_set().into_iter().collect();
            for i in 0..set.len() {
                for j in (i + 1)..set.len() {
                    edges.insert((set[i].clone(), set[j].clone()));
                }
            }
        }
        edges
    }

    /// The canonical structure of the query: its domain is `vars(Q)` (as text
    /// values) and each atom contributes one tuple.  This is the structure `Q`
    /// of Section 2.2, used to enumerate `hom(Q2, Q1)`.
    pub fn canonical_structure(&self) -> Structure {
        let mut structure = Structure::new(self.vocabulary());
        for v in &self.vars {
            structure.add_domain_value(Value::text(v.clone()));
        }
        for atom in &self.atoms {
            let tuple = atom.args.iter().map(|v| Value::text(v.clone())).collect();
            structure.add_fact(&atom.relation, tuple);
        }
        structure
    }

    /// Builds the Boolean query associated to a query (Q itself if already
    /// Boolean).  Following Lemma A.1, each head variable `x_i` receives a new
    /// unary atom `U_i(x_i)` (with fresh relation names `prefix1`, `prefix2`, …),
    /// and the head is dropped.
    pub fn to_boolean(&self, prefix: &str) -> ConjunctiveQuery {
        if self.is_boolean() {
            return self.clone();
        }
        let mut atoms = self.atoms.clone();
        for (i, v) in self.head.iter().enumerate() {
            atoms.push(Atom::new(format!("{prefix}{}", i + 1), [v.clone()]));
        }
        ConjunctiveQuery::boolean(format!("{}_bool", self.name), atoms)
            .expect("boolean reduction of a valid query is valid")
    }

    /// Renames every variable by appending `suffix`, producing an isomorphic
    /// query with a disjoint variable set.
    pub fn rename_vars(&self, suffix: &str) -> ConjunctiveQuery {
        let rename = |v: &Var| format!("{v}{suffix}");
        let head = self.head.iter().map(&rename).collect();
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                relation: a.relation.clone(),
                args: a.args.iter().map(&rename).collect(),
            })
            .collect();
        ConjunctiveQuery::new(format!("{}{suffix}", self.name), head, atoms)
            .expect("renaming preserves validity")
    }

    /// Conjunction of two Boolean queries (their atom sets are unioned).  The
    /// variable sets are used as-is, so take care to rename apart first if a
    /// disjoint conjunction is intended (cf. `n · A` in Lemma 2.2 of \[21\]).
    pub fn conjunction(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        let mut head = self.head.clone();
        for v in &other.head {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
        ConjunctiveQuery::new(format!("{}_{}", self.name, other.name), head, atoms)
            .expect("conjunction of valid queries is valid")
    }

    /// The disjoint conjunction of `n` copies of this query (`n · Q`), used by
    /// the reduction from the exponent-domination problem to DOM
    /// (Lemma 2.2 of Kopparty–Rossman, cited in Section 2.1).
    pub fn power(&self, n: usize) -> ConjunctiveQuery {
        assert!(n >= 1, "power requires at least one copy");
        let mut result = self.rename_vars("_c1");
        for i in 2..=n {
            result = result.conjunction(&self.rename_vars(&format!("_c{i}")));
        }
        result.name = format!("{}_pow{}", self.name, n);
        result
    }

    /// Returns the sub-query at a tree-decomposition bag: the conjunction of
    /// all atoms whose variables are contained in `bag`.  Returns `None` when
    /// no atom fits inside the bag.
    pub fn subquery_at(&self, bag: &BTreeSet<Var>) -> Option<ConjunctiveQuery> {
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .filter(|a| a.var_set().is_subset(bag))
            .cloned()
            .collect();
        if atoms.is_empty() {
            None
        } else {
            Some(
                ConjunctiveQuery::boolean(format!("{}_bag", self.name), atoms)
                    .expect("subquery of a valid query is valid"),
            )
        }
    }

    /// Connected components of the query's Gaifman graph, as sets of variables.
    pub fn connected_components(&self) -> Vec<BTreeSet<Var>> {
        let mut parent: BTreeMap<Var, Var> =
            self.vars.iter().map(|v| (v.clone(), v.clone())).collect();
        fn find(parent: &mut BTreeMap<Var, Var>, v: &Var) -> Var {
            let p = parent[v].clone();
            if &p == v {
                return p;
            }
            let root = find(parent, &p);
            parent.insert(v.clone(), root.clone());
            root
        }
        for atom in &self.atoms {
            let vars: Vec<Var> = atom.var_set().into_iter().collect();
            for window in vars.windows(2) {
                let a = find(&mut parent, &window[0]);
                let b = find(&mut parent, &window[1]);
                if a != b {
                    parent.insert(a, b);
                }
            }
        }
        let mut components: BTreeMap<Var, BTreeSet<Var>> = BTreeMap::new();
        for v in &self.vars {
            let root = find(&mut parent, v);
            components.entry(root).or_default().insert(v.clone());
        }
        components.into_values().collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) :- ", self.name, self.head.join(","))?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(
            "Q1",
            vec![
                Atom::new("R", ["x1", "x2"]),
                Atom::new("R", ["x2", "x3"]),
                Atom::new("R", ["x3", "x1"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let q = triangle();
        assert!(q.is_boolean());
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.vars(), &["x1", "x2", "x3"]);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.vocabulary().arity_of("R"), Some(2));
    }

    #[test]
    fn repeated_atoms_are_deduplicated() {
        // R(x) ∧ R(x) ∧ S(x,y) is the same as R(x) ∧ S(x,y) under bag-set semantics.
        let q = ConjunctiveQuery::boolean(
            "Q",
            vec![
                Atom::new("R", ["x"]),
                Atom::new("R", ["x"]),
                Atom::new("S", ["x", "y"]),
            ],
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 2);
    }

    #[test]
    fn head_variable_validation() {
        let err =
            ConjunctiveQuery::new("Q", vec!["z".to_string()], vec![Atom::new("R", ["x", "y"])])
                .unwrap_err();
        assert_eq!(err, QueryError::HeadVariableNotInBody("z".to_string()));
    }

    #[test]
    fn arity_consistency_validation() {
        let err =
            ConjunctiveQuery::boolean("Q", vec![Atom::new("R", ["x", "y"]), Atom::new("R", ["x"])])
                .unwrap_err();
        assert!(matches!(err, QueryError::InconsistentArity { .. }));
    }

    #[test]
    fn empty_body_is_rejected() {
        assert_eq!(
            ConjunctiveQuery::boolean("Q", vec![]).unwrap_err(),
            QueryError::EmptyBody
        );
    }

    #[test]
    fn gaifman_edges_and_hyperedges() {
        let q = triangle();
        let edges = q.gaifman_edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&("x1".to_string(), "x2".to_string())));
        let hyperedges = q.hyperedges();
        assert_eq!(hyperedges.len(), 3);
        assert!(hyperedges[0].contains("x1") && hyperedges[0].contains("x2"));
    }

    #[test]
    fn canonical_structure_has_one_tuple_per_atom() {
        let q = triangle();
        let s = q.canonical_structure();
        assert_eq!(s.num_facts("R"), 3);
        assert_eq!(s.active_domain().len(), 3);
    }

    #[test]
    fn boolean_reduction_adds_unary_atoms() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec!["x".to_string(), "z".to_string()],
            vec![Atom::new("R", ["x", "y"]), Atom::new("S", ["y", "z"])],
        )
        .unwrap();
        let b = q.to_boolean("U");
        assert!(b.is_boolean());
        assert_eq!(b.atoms().len(), 4);
        assert!(b
            .atoms()
            .iter()
            .any(|a| a.relation == "U1" && a.args == vec!["x".to_string()]));
        assert!(b
            .atoms()
            .iter()
            .any(|a| a.relation == "U2" && a.args == vec!["z".to_string()]));
        // Already-Boolean queries are returned unchanged.
        assert_eq!(triangle().to_boolean("U").atoms().len(), 3);
    }

    #[test]
    fn rename_and_power() {
        let q = triangle();
        let renamed = q.rename_vars("_a");
        assert!(renamed.vars().iter().all(|v| v.ends_with("_a")));
        let squared = q.power(2);
        assert_eq!(squared.num_vars(), 6);
        assert_eq!(squared.atoms().len(), 6);
        assert_eq!(squared.connected_components().len(), 2);
    }

    #[test]
    fn subquery_at_bag() {
        let q = triangle();
        let bag: BTreeSet<Var> = ["x1", "x2"].iter().map(|s| s.to_string()).collect();
        let sub = q.subquery_at(&bag).unwrap();
        assert_eq!(sub.atoms().len(), 1);
        let empty_bag: BTreeSet<Var> = ["x9"].iter().map(|s| s.to_string()).collect();
        assert!(q.subquery_at(&empty_bag).is_none());
    }

    #[test]
    fn connected_components() {
        let q = ConjunctiveQuery::boolean(
            "Q",
            vec![
                Atom::new("R", ["a", "b"]),
                Atom::new("R", ["c", "d"]),
                Atom::new("S", ["b", "e"]),
            ],
        )
        .unwrap();
        let components = q.connected_components();
        assert_eq!(components.len(), 2);
    }

    #[test]
    fn display() {
        let q = triangle();
        assert_eq!(q.to_string(), "Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)");
    }
}
