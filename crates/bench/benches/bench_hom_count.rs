//! Experiment E10 (ablation): homomorphism counting — generic backtracking
//! vs. junction-tree dynamic programming (Yannakakis-style) on acyclic
//! queries, as the database grows.

use bqc_bench::{path_query, random_graph, star_query};
use bqc_core::count_homomorphisms_acyclic;
use bqc_relational::count_homomorphisms;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_path_queries(c: &mut Criterion) {
    let query = path_query(4);
    let mut group = c.benchmark_group("hom_count/path4");
    group.sample_size(10);
    for edges in [30usize, 80, 150] {
        let db = random_graph(20, edges, 42);
        group.bench_with_input(BenchmarkId::new("backtracking", edges), &edges, |b, _| {
            b.iter(|| count_homomorphisms(&query, &db))
        });
        group.bench_with_input(BenchmarkId::new("junction_tree", edges), &edges, |b, _| {
            b.iter(|| count_homomorphisms_acyclic(&query, &db).unwrap())
        });
    }
    group.finish();
}

fn bench_star_queries(c: &mut Criterion) {
    let query = star_query(4);
    let mut group = c.benchmark_group("hom_count/star4");
    group.sample_size(10);
    for edges in [50usize, 150] {
        let db = random_graph(15, edges, 7);
        group.bench_with_input(BenchmarkId::new("backtracking", edges), &edges, |b, _| {
            b.iter(|| count_homomorphisms(&query, &db))
        });
        group.bench_with_input(BenchmarkId::new("junction_tree", edges), &edges, |b, _| {
            b.iter(|| count_homomorphisms_acyclic(&query, &db).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_path_queries, bench_star_queries
}
criterion_main!(benches);
