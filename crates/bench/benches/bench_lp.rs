//! Experiment E11: the exact LP solvers on Shannon-cone feasibility programs.
//!
//! Four groups feed the CI bench-regression gate (`BENCH_PR5.json`):
//!
//! * `lp/shannon_cone_feasibility` — the *identical* standard-form program
//!   through the sparse revised simplex (`revised/n`, n = 3..6) and through
//!   the retained dense tableau oracle (`dense/n`, capped at n = 5: the
//!   dense tableau on the 247-row n = 6 cone is minutes-slow and would blow
//!   the CI budget without adding signal);
//! * `lp/gamma_validity` — full `Γ_n` validity checks at n = 6 (and lazy-only
//!   n = 7, where the eager cone's 679 rows are out of budget) through the
//!   eager materialized cone versus the lazy separation prover, cold
//!   (one-shot) and warm (repeated same-shaped probes, the serving path —
//!   CI enforces warm-lazy ≥ 5× eager on the n = 6 chain validity check);
//! * `lp/warm_start` — repeated same-shaped cone probes, cold versus seeded
//!   with the previous optimal basis via [`LpProblem::solve_from`];
//! * `lp/random_dense` — dense random LPs through the modelling layer, as a
//!   guard against the sparse solver regressing on non-sparse inputs.

use bqc_arith::{int, Rational};
use bqc_entropy::{elemental_inequalities, EntropyExpr};
use bqc_iip::{check_max_inequality_eager, GammaProver, LinearInequality, MaxInequality};
use bqc_lp::oracle::solve_standard_form_dense;
use bqc_lp::{solve_standard_form, ConstraintOp, LpBasis, LpProblem, Sense, VarBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Builds the LP "is there a polymatroid with h(V) >= 1?" — a feasibility
/// problem whose size matches the prover's programs — in the modelling layer.
fn shannon_cone_problem(n: usize, extra_disjuncts: usize) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut columns = vec![None; 1 << n];
    for mask in 1u32..(1 << n) {
        columns[mask as usize] = Some(lp.add_variable(format!("h{mask}"), VarBound::NonNegative));
    }
    for constraint in elemental_inequalities(n) {
        let coeffs: Vec<_> = constraint
            .terms
            .iter()
            .filter_map(|(mask, coeff)| columns[*mask as usize].map(|v| (v, coeff.clone())))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Ge, Rational::zero());
    }
    let full = (1usize << n) - 1;
    lp.add_constraint(
        vec![(columns[full].unwrap(), Rational::one())],
        ConstraintOp::Ge,
        int(1),
    );
    // Optional prover-style disjunct rows E(h) <= -1 (kept violated-feasible
    // by using singleton negative coefficients), for the warm-start scenario.
    for d in 0..extra_disjuncts {
        let var = columns[1 + (d % full)].unwrap();
        lp.add_constraint(vec![(var, int(-1))], ConstraintOp::Le, int(-1));
    }
    lp
}

/// The same cone feasibility program as an explicit dense standard form
/// (surplus column per `>=` row), so the dense oracle and the revised solver
/// can be timed on byte-identical input.
fn shannon_cone_standard_form(n: usize) -> (Vec<Vec<Rational>>, Vec<Rational>, Vec<Rational>) {
    let vars = (1usize << n) - 1;
    let elementals: Vec<_> = elemental_inequalities(n).into_iter().collect();
    let rows = elementals.len() + 1;
    let cols = vars + rows;
    let mut a = vec![vec![Rational::zero(); cols]; rows];
    for (i, constraint) in elementals.iter().enumerate() {
        for (mask, coeff) in &constraint.terms {
            if *mask != 0 {
                a[i][*mask as usize - 1] = coeff.clone();
            }
        }
        a[i][vars + i] = -Rational::one();
    }
    let last = rows - 1;
    a[last][vars - 1] = Rational::one();
    a[last][vars + last] = -Rational::one();
    let mut b = vec![Rational::zero(); rows];
    b[last] = Rational::one();
    let c = vec![Rational::zero(); cols];
    (a, b, c)
}

fn bench_shannon_cone(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/shannon_cone_feasibility");
    group.sample_size(10);
    for n in [3usize, 4, 5, 6] {
        let (a, b, cost) = shannon_cone_standard_form(n);
        group.bench_with_input(BenchmarkId::new("revised", n), &n, |bencher, _| {
            bencher.iter(|| {
                assert!(matches!(
                    solve_standard_form(&a, &b, &cost),
                    bqc_lp::SimplexOutcome::Optimal { .. }
                ))
            })
        });
        // The dense tableau is O(m·n) big-rational work per pivot; n = 6
        // (247 rows) takes minutes and is deliberately excluded.
        if n <= 5 {
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |bencher, _| {
                bencher.iter(|| {
                    assert!(matches!(
                        solve_standard_form_dense(&a, &b, &cost),
                        bqc_lp::SimplexOutcome::Optimal { .. }
                    ))
                })
            });
        }
    }
    group.finish();
}

/// The chain Shannon inequality `h(V0) + Σ h(V_{i+1}|V_i) ≥ h(V)` — valid,
/// with a Farkas certificate combining Θ(n²) elemental rows, i.e. the
/// *deep* validity shape the containment inequalities of Theorem 4.2
/// produce on path-shaped junction trees.
fn chain_inequality(n: usize) -> MaxInequality {
    let universe: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let mut expr = EntropyExpr::zero();
    expr.add_term(int(1), [universe[0].clone()]);
    for i in 0..n - 1 {
        expr.add_term(int(1), [universe[i].clone(), universe[i + 1].clone()]);
        expr.add_term(int(-1), [universe[i].clone()]);
    }
    expr.add_term(int(-1), universe.clone());
    LinearInequality::new(universe, expr).to_max()
}

/// An invalid inequality (`h(V) ≤ h(V0)`) whose refutation needs a
/// polymatroid counterexample from deep inside the cone.
fn refuted_inequality(n: usize) -> MaxInequality {
    let universe: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let mut expr = EntropyExpr::zero();
    expr.add_term(int(1), [universe[0].clone()]);
    expr.add_term(int(-1), universe.clone());
    LinearInequality::new(universe, expr).to_max()
}

fn bench_gamma_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/gamma_validity");
    group.sample_size(10);
    let valid6 = chain_inequality(6);
    let refute6 = refuted_inequality(6);
    // Eager baseline: materialize all n + C(n,2)·2^{n−2} elemental rows per
    // probe.  n = 7 (679 rows) is excluded — it is exactly the wall the lazy
    // prover removes.
    group.bench_with_input(BenchmarkId::new("eager", 6), &6, |b, _| {
        b.iter(|| assert!(check_max_inequality_eager(&valid6).is_valid()))
    });
    group.bench_with_input(BenchmarkId::new("refute_eager", 6), &6, |b, _| {
        b.iter(|| assert!(!check_max_inequality_eager(&refute6).is_valid()))
    });
    for n in [6usize, 7] {
        let valid = chain_inequality(n);
        let refute = refuted_inequality(n);
        // Cold: a fresh prover per probe (first-contact latency).
        group.bench_with_input(BenchmarkId::new("lazy_cold", n), &n, |b, _| {
            b.iter(|| assert!(GammaProver::new().check_max_inequality(&valid).is_valid()))
        });
        // Warm: one prover reused across probes of the same shape — the
        // batch-serving path (bqc-engine worker contexts).  The CI gate
        // requires warm ≥ 5× eager at n = 6.
        let mut warm = GammaProver::new();
        assert!(warm.check_max_inequality(&valid).is_valid());
        group.bench_with_input(BenchmarkId::new("lazy_warm", n), &n, |b, _| {
            b.iter(|| assert!(warm.check_max_inequality(&valid).is_valid()))
        });
        if n == 6 {
            let mut warm_refute = GammaProver::new();
            assert!(!warm_refute.check_max_inequality(&refute).is_valid());
            group.bench_with_input(BenchmarkId::new("refute_lazy_warm", n), &n, |b, _| {
                b.iter(|| assert!(!warm_refute.check_max_inequality(&refute).is_valid()))
            });
        } else {
            // Warm refutation state mutates between repeats (the active set
            // keeps shifting around the counterexample vertex), which makes
            // a warm n = 7 scenario too noisy to gate; the cold one-shot is
            // deterministic.
            group.bench_with_input(BenchmarkId::new("refute_lazy_cold", n), &n, |b, _| {
                b.iter(|| assert!(!GammaProver::new().check_max_inequality(&refute).is_valid()))
            });
        }
    }
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/warm_start");
    group.sample_size(10);
    for n in [4usize, 5] {
        let lp = shannon_cone_problem(n, 2);
        let (solution, basis) = lp.solve_from(None);
        assert!(solution.is_optimal());
        let basis: LpBasis = basis.expect("cone probe has a clean optimal basis");
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |bencher, _| {
            bencher.iter(|| assert!(lp.solve_from(None).0.is_optimal()))
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |bencher, _| {
            bencher.iter(|| assert!(lp.solve_from(Some(&basis)).0.is_optimal()))
        });
    }
    group.finish();
}

fn random_lp(variables: usize, constraints: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..variables)
        .map(|i| lp.add_variable(format!("x{i}"), VarBound::NonNegative))
        .collect();
    lp.set_objective(
        vars.iter()
            .map(|&v| (v, int(rng.gen_range(1..5))))
            .collect::<Vec<_>>(),
    );
    for _ in 0..constraints {
        let coeffs: Vec<_> = vars
            .iter()
            .map(|&v| (v, int(rng.gen_range(0..4))))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, int(rng.gen_range(5..20)));
    }
    lp
}

fn bench_random_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/random_dense");
    group.sample_size(10);
    for size in [10usize, 20, 30] {
        let lp = random_lp(size, size, size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let solution = lp.solve();
                assert!(solution.is_optimal());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_shannon_cone, bench_gamma_validity, bench_warm_start, bench_random_lps
}
criterion_main!(benches);
