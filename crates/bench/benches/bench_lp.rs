//! Experiment E11: the exact LP solvers on Shannon-cone feasibility programs.
//!
//! Three groups feed the CI bench-regression gate (`BENCH_PR3.json`):
//!
//! * `lp/shannon_cone_feasibility` — the *identical* standard-form program
//!   through the sparse revised simplex (`revised/n`, n = 3..6) and through
//!   the retained dense tableau oracle (`dense/n`, capped at n = 5: the
//!   dense tableau on the 247-row n = 6 cone is minutes-slow and would blow
//!   the CI budget without adding signal);
//! * `lp/warm_start` — repeated same-shaped cone probes, cold versus seeded
//!   with the previous optimal basis via [`LpProblem::solve_from`];
//! * `lp/random_dense` — dense random LPs through the modelling layer, as a
//!   guard against the sparse solver regressing on non-sparse inputs.

use bqc_arith::{int, Rational};
use bqc_entropy::elemental_inequalities;
use bqc_lp::oracle::solve_standard_form_dense;
use bqc_lp::{solve_standard_form, ConstraintOp, LpBasis, LpProblem, Sense, VarBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Builds the LP "is there a polymatroid with h(V) >= 1?" — a feasibility
/// problem whose size matches the prover's programs — in the modelling layer.
fn shannon_cone_problem(n: usize, extra_disjuncts: usize) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut columns = vec![None; 1 << n];
    for mask in 1u32..(1 << n) {
        columns[mask as usize] = Some(lp.add_variable(format!("h{mask}"), VarBound::NonNegative));
    }
    for constraint in elemental_inequalities(n) {
        let coeffs: Vec<_> = constraint
            .terms
            .iter()
            .filter_map(|(mask, coeff)| columns[*mask as usize].map(|v| (v, coeff.clone())))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Ge, Rational::zero());
    }
    let full = (1usize << n) - 1;
    lp.add_constraint(
        vec![(columns[full].unwrap(), Rational::one())],
        ConstraintOp::Ge,
        int(1),
    );
    // Optional prover-style disjunct rows E(h) <= -1 (kept violated-feasible
    // by using singleton negative coefficients), for the warm-start scenario.
    for d in 0..extra_disjuncts {
        let var = columns[1 + (d % full)].unwrap();
        lp.add_constraint(vec![(var, int(-1))], ConstraintOp::Le, int(-1));
    }
    lp
}

/// The same cone feasibility program as an explicit dense standard form
/// (surplus column per `>=` row), so the dense oracle and the revised solver
/// can be timed on byte-identical input.
fn shannon_cone_standard_form(n: usize) -> (Vec<Vec<Rational>>, Vec<Rational>, Vec<Rational>) {
    let vars = (1usize << n) - 1;
    let elementals: Vec<_> = elemental_inequalities(n).into_iter().collect();
    let rows = elementals.len() + 1;
    let cols = vars + rows;
    let mut a = vec![vec![Rational::zero(); cols]; rows];
    for (i, constraint) in elementals.iter().enumerate() {
        for (mask, coeff) in &constraint.terms {
            if *mask != 0 {
                a[i][*mask as usize - 1] = coeff.clone();
            }
        }
        a[i][vars + i] = -Rational::one();
    }
    let last = rows - 1;
    a[last][vars - 1] = Rational::one();
    a[last][vars + last] = -Rational::one();
    let mut b = vec![Rational::zero(); rows];
    b[last] = Rational::one();
    let c = vec![Rational::zero(); cols];
    (a, b, c)
}

fn bench_shannon_cone(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/shannon_cone_feasibility");
    group.sample_size(10);
    for n in [3usize, 4, 5, 6] {
        let (a, b, cost) = shannon_cone_standard_form(n);
        group.bench_with_input(BenchmarkId::new("revised", n), &n, |bencher, _| {
            bencher.iter(|| {
                assert!(matches!(
                    solve_standard_form(&a, &b, &cost),
                    bqc_lp::SimplexOutcome::Optimal { .. }
                ))
            })
        });
        // The dense tableau is O(m·n) big-rational work per pivot; n = 6
        // (247 rows) takes minutes and is deliberately excluded.
        if n <= 5 {
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |bencher, _| {
                bencher.iter(|| {
                    assert!(matches!(
                        solve_standard_form_dense(&a, &b, &cost),
                        bqc_lp::SimplexOutcome::Optimal { .. }
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/warm_start");
    group.sample_size(10);
    for n in [4usize, 5] {
        let lp = shannon_cone_problem(n, 2);
        let (solution, basis) = lp.solve_from(None);
        assert!(solution.is_optimal());
        let basis: LpBasis = basis.expect("cone probe has a clean optimal basis");
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |bencher, _| {
            bencher.iter(|| assert!(lp.solve_from(None).0.is_optimal()))
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |bencher, _| {
            bencher.iter(|| assert!(lp.solve_from(Some(&basis)).0.is_optimal()))
        });
    }
    group.finish();
}

fn random_lp(variables: usize, constraints: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..variables)
        .map(|i| lp.add_variable(format!("x{i}"), VarBound::NonNegative))
        .collect();
    lp.set_objective(
        vars.iter()
            .map(|&v| (v, int(rng.gen_range(1..5))))
            .collect::<Vec<_>>(),
    );
    for _ in 0..constraints {
        let coeffs: Vec<_> = vars
            .iter()
            .map(|&v| (v, int(rng.gen_range(0..4))))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, int(rng.gen_range(5..20)));
    }
    lp
}

fn bench_random_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/random_dense");
    group.sample_size(10);
    for size in [10usize, 20, 30] {
        let lp = random_lp(size, size, size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let solution = lp.solve();
                assert!(solution.is_optimal());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_shannon_cone, bench_warm_start, bench_random_lps
}
criterion_main!(benches);
