//! Experiment E11: the exact rational simplex solver on Shannon-cone
//! feasibility programs and on dense random LPs.

use bqc_arith::{int, Rational};
use bqc_entropy::elemental_inequalities;
use bqc_lp::{ConstraintOp, LpProblem, Sense, VarBound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Builds the LP "is there a polymatroid with h(V) >= 1 and all singletons = s?"
/// — a feasibility problem whose size matches the prover's programs.
fn shannon_cone_lp(n: usize) -> LpProblem {
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut columns = vec![None; 1 << n];
    for mask in 1u32..(1 << n) {
        columns[mask as usize] = Some(lp.add_variable(format!("h{mask}"), VarBound::NonNegative));
    }
    for constraint in elemental_inequalities(n) {
        let coeffs: Vec<_> = constraint
            .terms
            .iter()
            .filter_map(|(mask, coeff)| columns[*mask as usize].map(|v| (v, coeff.clone())))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Ge, Rational::zero());
    }
    let full = (1usize << n) - 1;
    lp.add_constraint(
        vec![(columns[full].unwrap(), Rational::one())],
        ConstraintOp::Ge,
        int(1),
    );
    lp
}

fn random_lp(variables: usize, constraints: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<_> = (0..variables)
        .map(|i| lp.add_variable(format!("x{i}"), VarBound::NonNegative))
        .collect();
    lp.set_objective(
        vars.iter()
            .map(|&v| (v, int(rng.gen_range(1..5))))
            .collect::<Vec<_>>(),
    );
    for _ in 0..constraints {
        let coeffs: Vec<_> = vars
            .iter()
            .map(|&v| (v, int(rng.gen_range(0..4))))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Le, int(rng.gen_range(5..20)));
    }
    lp
}

fn bench_shannon_cone(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/shannon_cone_feasibility");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let lp = shannon_cone_lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| assert!(lp.solve().is_optimal()))
        });
    }
    group.finish();
}

fn bench_random_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/random_dense");
    group.sample_size(10);
    for size in [10usize, 20, 30] {
        let lp = random_lp(size, size, size as u64);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let solution = lp.solve();
                assert!(solution.is_optimal());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_shannon_cone, bench_random_lps
}
criterion_main!(benches);
