//! Experiment E15: throughput of the caching batch engine.
//!
//! The acceptance workload repeats each distinct canonical containment
//! question ≥ 4 times under shuffled variable names and atom orders
//! (`bqc_bench::engine_workload`).  Three configurations are timed on the
//! same request list:
//!
//! * `sequential/decide_each` — the baseline: one `decide_containment_with`
//!   call per request, no canonicalization, no cache, no threads;
//! * `engine/cold_batch` — a fresh engine per iteration: canonicalization +
//!   in-flight dedup + worker-pool fan-out pay for every distinct pair once
//!   (this is the ≥ 2x-speedup comparison against the baseline);
//! * `engine/warm_batch` — a pre-warmed engine: every request is a cache
//!   hit, measuring the canonicalize-and-look-up ceiling of the serving
//!   layer.

use bqc_bench::engine_workload;
use bqc_core::{decide_containment_with, DecideOptions};
use bqc_engine::{Engine, EngineOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Witness extraction off in both the baseline and the engine: the
/// comparison targets the decide/canonicalize/cache pipeline, not witness
/// materialization (that is experiment E12).
fn decide_options() -> DecideOptions {
    DecideOptions {
        extract_witness: false,
        ..DecideOptions::default()
    }
}

fn engine_options() -> EngineOptions {
    EngineOptions {
        decide: decide_options(),
        ..EngineOptions::default()
    }
}

fn bench_engine_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_sequential");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    for repeats in [4usize, 8] {
        let workload = engine_workload(repeats, 42);
        group.bench_with_input(
            BenchmarkId::new("sequential/decide_each", repeats),
            &workload,
            |b, workload| {
                let options = decide_options();
                b.iter(|| {
                    let mut verdicts = 0usize;
                    for (q1, q2) in workload {
                        if decide_containment_with(q1, q2, &options)
                            .expect("workload has matching heads")
                            .is_contained()
                        {
                            verdicts += 1;
                        }
                    }
                    verdicts
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine/cold_batch", repeats),
            &workload,
            |b, workload| {
                b.iter(|| {
                    // A fresh engine per iteration: every distinct canonical
                    // pair is computed exactly once, repeats are deduped.
                    let engine = Engine::new(engine_options());
                    engine.decide_batch(workload)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine/warm_batch", repeats),
            &workload,
            |b, workload| {
                let engine = Engine::new(engine_options());
                engine.decide_batch(workload);
                b.iter(|| engine.decide_batch(workload))
            },
        );
    }
    group.finish();
}

fn bench_canonicalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/canonicalize_pair");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    let workload = engine_workload(4, 7);
    group.bench_function("workload_of_20", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|(q1, q2)| bqc_engine::canonicalize_pair(q1, q2).hash)
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_vs_sequential, bench_canonicalization);
criterion_main!(benches);
