//! Experiment E19: restart warmth of the serving layer.
//!
//! Three question groups:
//!
//! * `serve/snapshot` — raw snapshot-format throughput: `encode` and
//!   `decode` of a synthetic snapshot with realistic canonical-key text;
//! * `serve/restart` — the headline restart-warmth comparison on an
//!   LP-bound workload: `cold` decides every distinct pair from scratch
//!   (canonicalize + Shannon-cone LP), `restored` first restores a
//!   predecessor's snapshot and answers the same workload from
//!   byte-identical cached verdicts, paying only canonicalization.  The
//!   bench-regression gate enforces `restored` ≥ 5x `cold`
//!   (scripts/bench_compare.sh) — machine-independent, so it holds on any
//!   runner;
//! * `serve/rtt` — end-to-end request latency through a real `bqc-serve`
//!   daemon socket for a cache-hit request: protocol parse + queue +
//!   micro-batch + cache probe + response write, no decision work.

use bqc_bench::{cycle_query, path_query, rename_shuffle};
use bqc_core::DecideOptions;
use bqc_engine::{
    decode_snapshot, encode_snapshot, Engine, EngineOptions, Snapshot, SnapshotEntry,
};
use bqc_relational::ConjunctiveQuery;
use bqc_serve::{ServeOptions, Server};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

fn engine_options() -> EngineOptions {
    EngineOptions {
        decide: DecideOptions {
            // The comparison targets decide-vs-cache, not witness
            // materialization (experiment E12), mirroring bench_engine.
            extract_witness: false,
            ..DecideOptions::default()
        },
        ..EngineOptions::default()
    }
}

/// A synthetic snapshot with `entries` keys shaped like real canonical key
/// text (two canonical queries joined by the pair separator).
fn synthetic_snapshot(entries: usize) -> Snapshot {
    Snapshot {
        entries: (0..entries)
            .map(|i| SnapshotEntry {
                key: format!(
                    "Q() :- R(v0,v1), R(v1,v2), R(v2,v{i}) ;; Q() :- R(v0,v1), R(v0,v2), S(v2,v{i})"
                ),
                summary: if i % 3 == 0 {
                    bqc_core::AnswerSummary::Contained
                } else {
                    bqc_core::AnswerSummary::NotContained {
                        witness_verified: i % 2 == 0,
                    }
                },
            })
            .collect(),
        skeleton_sizes: vec![3, 4, 5],
    }
}

fn bench_snapshot_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/snapshot");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    let entries = 4096usize;
    let snapshot = synthetic_snapshot(entries);
    let bytes = encode_snapshot(&snapshot);
    group.bench_with_input(
        BenchmarkId::new("encode", entries),
        &snapshot,
        |b, snapshot| b.iter(|| encode_snapshot(snapshot).len()),
    );
    group.bench_with_input(BenchmarkId::new("decode", entries), &bytes, |b, bytes| {
        b.iter(|| {
            decode_snapshot(bytes)
                .expect("valid snapshot")
                .entries
                .len()
        })
    });
    group.finish();
}

/// The restart workload: LP-bound containment questions (the k-cycle inside
/// the (k-1)-path — decided by the Shannon-cone LP, the most expensive
/// stage), each appearing `repeats` times under shuffled variable names and
/// atom orders.  Decision cost dominates canonicalization here, which is
/// exactly the regime where restart warmth pays: a restored engine skips
/// every LP solve.
fn restart_workload(repeats: usize) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let mut workload = Vec::new();
    for k in [4usize, 5, 6] {
        let cycle = cycle_query(k);
        let path = path_query(k - 1);
        for copy in 0..repeats {
            let seed = (k * 31 + copy) as u64;
            workload.push((
                rename_shuffle(&cycle, seed),
                rename_shuffle(&path, seed + 1),
            ));
        }
    }
    workload
}

fn bench_restart_warmth(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/restart");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    let repeats = 4usize;
    let workload = restart_workload(repeats);
    // The predecessor process: compute everything once, keep its snapshot.
    let donor = Engine::new(engine_options());
    donor.decide_batch(&workload);
    let snapshot = donor.snapshot();

    group.bench_with_input(
        BenchmarkId::new("cold", repeats),
        &workload,
        |b, workload| {
            b.iter(|| {
                let engine = Engine::new(engine_options());
                engine.decide_batch(workload).len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("restored", repeats),
        &(&workload, &snapshot),
        |b, (workload, snapshot)| {
            b.iter(|| {
                let engine = Engine::new(engine_options());
                engine.restore_snapshot(snapshot);
                engine.decide_batch(workload).len()
            })
        },
    );
    group.finish();
}

fn bench_daemon_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/rtt");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    let engine = Arc::new(Engine::new(engine_options()));
    let server = Server::bind(
        engine,
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            ..ServeOptions::default()
        },
    )
    .expect("bind bench daemon");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run().expect("serve loop"));

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    let request = "Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)";
    // Warm the cache so the timed loop measures serving, not deciding.
    writeln!(writer, "{request}").unwrap();
    line.clear();
    reader.read_line(&mut line).expect("warm-up response");

    group.bench_function("cached/1", |b| {
        b.iter(|| {
            writeln!(writer, "{request}").unwrap();
            line.clear();
            reader.read_line(&mut line).expect("response");
            line.len()
        })
    });
    group.finish();

    shutdown.shutdown();
    daemon.join().expect("daemon thread");
}

criterion_group!(
    benches,
    bench_snapshot_format,
    bench_restart_warmth,
    bench_daemon_round_trip
);
criterion_main!(benches);
