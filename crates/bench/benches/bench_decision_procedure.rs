//! Experiment E8: scaling of the Theorem 3.1 decision procedure.
//!
//! The paper states the procedure runs in exponential time; this benchmark
//! measures it on the k-cycle ⊑ 2-out-star family (containment holds, the
//! interesting LP direction) and on a not-contained family exercising the
//! witness path, as the number of query variables grows.

use bqc_bench::{cycle_query, path_query};
use bqc_core::{decide_containment_with, DecideOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_contained_direction(c: &mut Criterion) {
    // The k-cycle is contained in the (k-1)-edge path (dropping the closing
    // atom); for k = 3 this is Example 4.3 with the 2-star replaced by a path.
    let mut group = c.benchmark_group("decide/cycle_in_path");
    group.sample_size(10);
    for k in [3usize, 4, 5] {
        let cycle = cycle_query(k);
        let path = path_query(k - 1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let answer = decide_containment_with(
                    &cycle,
                    &path,
                    &DecideOptions {
                        extract_witness: false,
                        ..DecideOptions::default()
                    },
                )
                .unwrap();
                assert!(answer.is_contained());
            })
        });
    }
    group.finish();
}

fn bench_not_contained_direction(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/path_in_longer_path");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        // path_k vs path_{k+1}: containment fails (a k-edge path database has a
        // k-path homomorphism but no (k+1)-path); exercises the witness path.
        let q1 = path_query(k);
        let q2 = path_query(k + 1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let answer = decide_containment_with(
                    &q1,
                    &q2,
                    &DecideOptions {
                        extract_witness: true,
                        witness_max_rows: 1 << 10,
                        ..DecideOptions::default()
                    },
                )
                .unwrap();
                assert!(!answer.is_unknown());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_contained_direction, bench_not_contained_direction
}
criterion_main!(benches);
