//! Experiment E13: the Lemma 3.7 constructions (modularization and
//! normalization) on random polymatroids of growing arity.

use bqc_bench::{random_capped_polymatroid, random_normal_polymatroid};
use bqc_entropy::{modularize, normalize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalize/lemma_3_7_2");
    group.sample_size(20);
    for n in [3usize, 5, 7] {
        let capped = random_capped_polymatroid(n, 11);
        group.bench_with_input(BenchmarkId::new("capped", n), &n, |b, _| {
            b.iter(|| normalize(&capped))
        });
        let normal = random_normal_polymatroid(n, 13);
        group.bench_with_input(BenchmarkId::new("already_normal", n), &n, |b, _| {
            b.iter(|| normalize(&normal))
        });
    }
    group.finish();
}

fn bench_modularize(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalize/lemma_3_7_1");
    group.sample_size(20);
    for n in [3usize, 5, 7, 9] {
        let h = random_capped_polymatroid(n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| modularize(&h))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_normalize, bench_modularize
}
criterion_main!(benches);
