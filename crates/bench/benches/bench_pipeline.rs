//! Experiment E16: the staged decision pipeline.
//!
//! Three questions, each backed by a machine-independent CI floor or the
//! regression gate (`scripts/bench_compare.sh`):
//!
//! * **LP avoidance** (`pipeline/refutable/*`) — on refutable workloads the
//!   counting refuter must beat the LP-only path by ≥ 5x.  The
//!   parallel-blocks family generalizes Example 3.5: `m` blocks put the
//!   LP-only path on a `Γ_{2m}` refutation while the refuter counts
//!   homomorphisms on an `m`-block canonical database.
//! * **Pipeline overhead** (`pipeline/overhead/*`) — on LP-bound scenarios
//!   (cycle ⊑ path, containment holds, every screen passes through) the
//!   staged pipeline with trace collection must stay within 10% of the
//!   pre-refactor monolith (`bqc_core::legacy`), i.e.
//!   `legacy / pipeline ≥ 0.909`.
//! * **Stage mix under serving** (`pipeline/stage_mix/*`) — a cold engine
//!   batch over a workload hitting every stage outcome (identity, hom
//!   screen, refuter via canonical database and via the random family, LP
//!   valid, single-bag fallback), the scenario the per-stage telemetry is
//!   for.
//! * **Budget overhead** (`pipeline/budget/*`) — the LP-bound k=6 scenario
//!   with resource budgets armed (generous deadline and work caps, so every
//!   cooperative check runs but none fires) vs unlimited.  The CI floor
//!   requires `off / on ≥ 0.952`, i.e. armed budget checks cost at most 5%.
//! * **Observability overhead** (`pipeline/obs/*`) — the same cold-engine
//!   stage-mix batch with the `bqc-obs` metric probes live vs killed by the
//!   runtime switch (`bqc_obs::set_enabled`).  The CI floor requires
//!   `disabled / enabled ≥ 0.952`, i.e. live counters cost at most 5% —
//!   the experiment E18 overhead policy.

use bqc_bench::{cycle_query, parallel_blocks_query, path_query, spread_query, stage_mix_workload};
use bqc_core::legacy::decide_containment_legacy;
use bqc_core::{decide_containment_with, DecideOptions};
use bqc_engine::{Engine, EngineOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Witness extraction off throughout: these scenarios measure the decision
/// pipeline, not Lemma 3.7 witness materialization (experiment E12).
fn decide_options(counting_refuter: bool) -> DecideOptions {
    DecideOptions {
        extract_witness: false,
        counting_refuter,
        ..DecideOptions::default()
    }
}

fn bench_refutable(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/refutable");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    let q2 = spread_query();
    for m in [2usize, 3] {
        let q1 = parallel_blocks_query(m);
        group.bench_with_input(BenchmarkId::new("lp_only", m), &m, |b, _| {
            let options = decide_options(false);
            b.iter(|| {
                let answer = decide_containment_with(&q1, &q2, &options).unwrap();
                assert!(answer.is_not_contained());
            })
        });
        group.bench_with_input(BenchmarkId::new("refuter", m), &m, |b, _| {
            let options = decide_options(true);
            b.iter(|| {
                let answer = decide_containment_with(&q1, &q2, &options).unwrap();
                assert!(answer.is_not_contained());
            })
        });
    }
    group.finish();
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    // cycle_k ⊑ path_{k-1}: containment holds, so every cheap screen (and
    // the refuter's candidate databases) passes through and the Γ_k LP
    // decides — the worst case for pipeline bookkeeping, trace collection
    // included.  The CI floor gates k=6, where the LP dominates and the
    // ratio is a clean overhead measurement; k=4 and k=5 are tracked by the
    // regression threshold and document the screen cost on small LPs.
    for k in [4usize, 5, 6] {
        let cycle = cycle_query(k);
        let path = path_query(k - 1);
        group.bench_with_input(BenchmarkId::new("legacy", k), &k, |b, _| {
            let options = decide_options(true);
            b.iter(|| {
                let answer = decide_containment_legacy(&cycle, &path, &options).unwrap();
                assert!(answer.is_contained());
            })
        });
        group.bench_with_input(BenchmarkId::new("pipeline", k), &k, |b, _| {
            let options = decide_options(true);
            b.iter(|| {
                let answer = decide_containment_with(&cycle, &path, &options).unwrap();
                assert!(answer.is_contained());
            })
        });
    }
    group.finish();
}

fn bench_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/budget");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    // Resource-governance overhead (experiment: budgets armed but never
    // exhausted).  Same LP-bound k=6 cycle-in-path scenario as
    // `pipeline/overhead`: every stage runs, the Γ_6 LP decides, and with
    // `on` every cooperative budget check (deadline per stage and per
    // pivot-block, pivot/separation-round/hom-step counters) executes
    // without ever firing.  The CI floor requires `off / on ≥ 0.952`, i.e.
    // armed budgets cost at most 5% — the same overhead policy as the
    // always-on bqc-obs probes.
    let k = 6usize;
    let cycle = cycle_query(k);
    let path = path_query(k - 1);
    for armed in [false, true] {
        let name = if armed { "on" } else { "off" };
        group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
            let mut options = decide_options(true);
            if armed {
                options.budget.deadline = Some(Duration::from_secs(3600));
                options.budget.max_pivots = Some(u64::MAX);
                options.budget.max_separation_rounds = Some(u64::MAX);
                options.budget.max_hom_steps = Some(u64::MAX);
            }
            b.iter(|| {
                let answer = decide_containment_with(&cycle, &path, &options).unwrap();
                assert!(answer.is_contained());
            })
        });
    }
    group.finish();
}

fn bench_stage_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/stage_mix");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    let repeats = 4usize;
    let workload = stage_mix_workload(repeats, 42);
    group.bench_with_input(
        BenchmarkId::new("engine_cold", repeats),
        &workload,
        |b, workload| {
            b.iter(|| {
                let engine = Engine::new(EngineOptions {
                    decide: decide_options(true),
                    ..EngineOptions::default()
                });
                engine.decide_batch(workload)
            })
        },
    );
    group.finish();
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/obs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    let repeats = 4usize;
    let workload = stage_mix_workload(repeats, 42);
    // Same cold-engine batch in both scenarios; only the metric kill switch
    // differs.  Spans are not started in either (tracing is off by default
    // and is not part of the always-on overhead budget).
    for enabled in [true, false] {
        let name = if enabled { "enabled" } else { "disabled" };
        group.bench_with_input(BenchmarkId::new(name, repeats), &workload, |b, workload| {
            bqc_obs::set_enabled(enabled);
            b.iter(|| {
                let engine = Engine::new(EngineOptions {
                    decide: decide_options(true),
                    ..EngineOptions::default()
                });
                engine.decide_batch(workload)
            });
            bqc_obs::set_enabled(true);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_refutable,
    bench_overhead,
    bench_budget,
    bench_stage_mix,
    bench_obs
);
criterion_main!(benches);
