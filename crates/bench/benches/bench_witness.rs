//! Experiment E12: witness extraction and verification.
//!
//! Measures (a) the full decide-then-extract-then-verify loop on Example 3.5
//! and (b) hand-written normal-witness verification as the witness grows.

use bqc_core::{decide_containment_with, verify_witness, DecideOptions};
use bqc_relational::{parse_query, VRelation, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::time::Duration;

fn example_3_5_queries() -> (
    bqc_relational::ConjunctiveQuery,
    bqc_relational::ConjunctiveQuery,
) {
    let q1 =
        parse_query("Q1() :- A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')")
            .unwrap();
    let q2 = parse_query("Q2() :- A(y1,y2), B(y1,y3), C(y4,y2)").unwrap();
    (q1, q2)
}

fn paper_witness(n: i64) -> VRelation {
    let product = VRelation::product(&[
        ("u".to_string(), (1..=n).map(Value::int).collect()),
        ("v".to_string(), (1..=n).map(Value::int).collect()),
    ]);
    let psi: Vec<(String, BTreeSet<String>)> = vec![
        ("x1".to_string(), ["u".to_string()].into_iter().collect()),
        ("x2".to_string(), ["u".to_string()].into_iter().collect()),
        ("x1'".to_string(), ["v".to_string()].into_iter().collect()),
        ("x2'".to_string(), ["v".to_string()].into_iter().collect()),
    ];
    VRelation::normal_relation(&product, &psi)
}

fn bench_decide_and_extract(c: &mut Criterion) {
    let (q1, q2) = example_3_5_queries();
    let mut group = c.benchmark_group("witness/example_3_5_end_to_end");
    group.sample_size(10);
    group.bench_function("decide+extract+verify", |b| {
        b.iter(|| {
            let answer = decide_containment_with(
                &q1,
                &q2,
                // The counting refuter would short-circuit Example 3.5 before
                // the LP; this experiment measures the Lemma 3.7 extraction
                // path, so keep the refuter off.
                &DecideOptions {
                    extract_witness: true,
                    witness_max_rows: 1 << 12,
                    counting_refuter: false,
                    ..DecideOptions::default()
                },
            )
            .unwrap();
            assert!(answer.is_not_contained());
        })
    });
    group.bench_function("decide_only", |b| {
        b.iter(|| {
            let answer = decide_containment_with(
                &q1,
                &q2,
                &DecideOptions {
                    extract_witness: false,
                    counting_refuter: false,
                    ..DecideOptions::default()
                },
            )
            .unwrap();
            assert!(answer.is_not_contained());
        })
    });
    group.finish();
}

fn bench_witness_verification(c: &mut Criterion) {
    let (q1, q2) = example_3_5_queries();
    let mut group = c.benchmark_group("witness/verify_paper_witness");
    group.sample_size(10);
    for n in [3i64, 6, 10] {
        let witness = paper_witness(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let verified = verify_witness(&q1, &q2, &witness).expect("witness verifies");
                assert!(verified.hom_q1 > verified.hom_q2);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_decide_and_extract, bench_witness_verification
}
criterion_main!(benches);
