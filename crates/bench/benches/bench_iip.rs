//! Experiments E9 and E14: the Shannon-cone (Max-)IIP prover.
//!
//! * E9 — validity checking of linear and max-linear inequalities as the
//!   number of random variables `n` grows (the LP has `2^n` columns and
//!   `n + C(n,2)·2^{n−2}` elemental rows).
//! * E14 — Theorem 6.1 convex-certificate search on valid max-inequalities.

use bqc_arith::int;
use bqc_entropy::EntropyExpr;
use bqc_iip::{
    check_linear_inequality, check_max_inequality, find_convex_certificate, LinearInequality,
    MaxInequality,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn vars(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("V{i}")).collect()
}

/// The "chain" Shannon inequality h(V0) + Σ h(V_{i+1}|V_i) ≥ h(V0…V_{n−1}).
fn chain_inequality(n: usize) -> LinearInequality {
    let universe = vars(n);
    let mut expr = EntropyExpr::zero();
    expr.add_term(int(1), [universe[0].clone()]);
    for i in 0..n - 1 {
        expr.add_term(int(1), [universe[i].clone(), universe[i + 1].clone()]);
        expr.add_term(int(-1), [universe[i].clone()]);
    }
    expr.add_term(int(-1), universe.clone());
    LinearInequality::new(universe, expr)
}

/// The Example 3.8-style max-inequality generalized to a cycle of n variables.
fn cycle_max_inequality(n: usize) -> MaxInequality {
    let universe = vars(n);
    let mut disjuncts = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let mut e = EntropyExpr::zero();
        e.add_term(int(1), [universe[i].clone(), universe[j].clone()]);
        e.add_term(int(1), [universe[i].clone(), universe[j].clone()]);
        e.add_term(int(-1), [universe[i].clone()]);
        e.add_term(int(-1), universe.clone());
        disjuncts.push(e);
    }
    MaxInequality::new(universe, disjuncts)
}

fn bench_linear_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("iip/linear_chain");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let inequality = chain_inequality(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| assert!(check_linear_inequality(&inequality).is_valid()))
        });
    }
    group.finish();
}

fn bench_max_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("iip/max_cycle");
    group.sample_size(10);
    for n in [3usize, 4, 5] {
        let inequality = cycle_max_inequality(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // Validity is not asserted (it depends on n); only timing matters.
                let _ = check_max_inequality(&inequality);
            })
        });
    }
    group.finish();
}

fn bench_convex_certificate(c: &mut Criterion) {
    let mut group = c.benchmark_group("iip/convex_certificate");
    group.sample_size(10);
    // max(h(X)-h(Y), h(Y)-h(X)) on growing universes (padding variables only
    // enlarge the cone description, not the disjuncts).
    for n in [2usize, 3, 4] {
        let universe = vars(n);
        let mut d1 = EntropyExpr::zero();
        d1.add_term(int(1), [universe[0].clone()]);
        d1.add_term(int(-1), [universe[1].clone()]);
        let d2 = d1.negate();
        let max = MaxInequality::new(universe, vec![d1, d2]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| assert!(find_convex_certificate(&max).is_some()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_linear_validity, bench_max_validity, bench_convex_certificate
}
criterion_main!(benches);
