//! Database families for the differential oracle.
//!
//! Fact 3.2 defines non-containment by the *existence* of a database with
//! `|Q1(D)| > |Q2(D)|`; the differential checker
//! ([`bqc_core::oracle::check_summary`]) can only ever test a finite family.
//! This module generates that family — labeled, seeded, size-parameterized —
//! from the query pair itself:
//!
//! * **canonical databases** of both queries, and their union — the
//!   canonical database of `Q1` is the classic first candidate (every
//!   set-semantics separation lives there, and many bag separations, e.g.
//!   Example 3.5);
//! * a **doubled canonical** `2 · canonical(Q1)` — homomorphism counts are
//!   multiplicative under disjoint union (`hom(Q, 2·A) = hom-components
//!   product`), so separations that need *margin amplification* show up
//!   here before they show up on the canonical database;
//! * **seeded random structures** over small domains (every possible fact
//!   over the joint vocabulary included independently with probability 1/2),
//!   the family that catches separations with no homomorphic relationship to
//!   either query — e.g. 5-cycle ⋢ 2-star needs a dense 3-element structure.
//!
//! What the family *cannot* catch: separations that only appear on databases
//! larger than [`FamilyConfig::max_domain`] — those are exactly why a
//! corpus case, once found, is checked in rather than re-fuzzed.

use bqc_relational::{ConjunctiveQuery, Structure, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-relation cap on the tuples a random family member may hold, guarding
/// against high-arity blowup (`domain^arity` possible facts).
const MAX_TUPLES_PER_RELATION: usize = 64;

/// Shape of the generated database family.
#[derive(Clone, Copy, Debug)]
pub struct FamilyConfig {
    /// Largest active-domain size for the random structures; domains
    /// `2..=max_domain` are generated.
    pub max_domain: usize,
    /// Random structures generated per domain size.
    pub random_per_domain: usize,
    /// Seed of the random members (the family is a pure function of the
    /// queries and this configuration).
    pub seed: u64,
}

impl Default for FamilyConfig {
    fn default() -> FamilyConfig {
        FamilyConfig {
            max_domain: 3,
            random_per_domain: 2,
            seed: 0x6f72_6163_u64 ^ 0x1e55, // "orac" ⊕ salt
        }
    }
}

/// Generates the labeled database family for a query pair.
pub fn database_family(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    config: &FamilyConfig,
) -> Vec<(String, Structure)> {
    let canonical_q1 = q1.canonical_structure();
    let canonical_q2 = q2.canonical_structure();
    let mut union = canonical_q1.clone();
    union.merge(&canonical_q2);
    let doubled = canonical_q1.disjoint_copies(2);
    let mut family = vec![
        ("canonical(Q1)".to_string(), canonical_q1),
        ("canonical(Q2)".to_string(), canonical_q2),
        ("canonical(Q1)+canonical(Q2)".to_string(), union),
        ("2*canonical(Q1)".to_string(), doubled),
    ];
    let mut vocabulary = q1.vocabulary();
    vocabulary.merge(&q2.vocabulary());
    let mut rng = StdRng::seed_from_u64(config.seed);
    for domain in 2..=config.max_domain {
        for index in 0..config.random_per_domain {
            let mut structure = Structure::new(vocabulary.clone());
            for value in 0..domain {
                structure.add_domain_value(Value::int(value as i64));
            }
            for symbol in vocabulary.symbols() {
                let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
                for _ in 0..symbol.arity {
                    let mut next = Vec::with_capacity(tuples.len() * domain);
                    for prefix in &tuples {
                        for v in 0..domain {
                            let mut t = prefix.clone();
                            t.push(Value::int(v as i64));
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                let mut added = 0;
                for tuple in tuples {
                    if added >= MAX_TUPLES_PER_RELATION {
                        break;
                    }
                    if rng.gen_bool(0.5) {
                        structure.add_fact(&symbol.name, tuple);
                        added += 1;
                    }
                }
            }
            family.push((format!("random(domain={domain},#{index})"), structure));
        }
    }
    family
}

/// Strategy mix of the random pair generator: which relationship the two
/// queries of a generated pair have.  Cycling through the strategies keeps
/// all three verdict classes (and the `Unknown` obstructions) populated —
/// purely independent random pairs are almost always refuted by the
/// hom-existence screen, which would leave `Contained` paths untested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairStrategy {
    /// Both queries drawn independently.
    Independent,
    /// `Q2` is a renamed, reordered isomorphic copy of `Q1` (contained both
    /// ways; exercises canonicalization and the identity shortcut).
    IsomorphicCopy,
    /// `Q2` keeps a random subset of `Q1`'s atoms (every `Q2 → Q1`
    /// homomorphism exists; the LP decides).
    AtomSubset,
    /// `Q1` extends `Q2` with extra random atoms (the reverse shape).
    AtomSuperset,
    /// Like [`PairStrategy::Independent`] but both queries get a one-variable
    /// head, exercising the Boolean reduction.
    Headed,
}

const STRATEGIES: [PairStrategy; 5] = [
    PairStrategy::Independent,
    PairStrategy::IsomorphicCopy,
    PairStrategy::AtomSubset,
    PairStrategy::AtomSuperset,
    PairStrategy::Headed,
];

/// Shape of the random pair generator.
#[derive(Clone, Copy, Debug)]
pub struct PairConfig {
    /// Largest number of variables per query.
    pub max_vars: usize,
    /// Largest number of atoms per query.
    pub max_atoms: usize,
    /// Base seed; pair `index` is a pure function of `(seed, index)`.
    pub seed: u64,
}

impl Default for PairConfig {
    fn default() -> PairConfig {
        PairConfig {
            // Small universes on purpose: the Shannon-cone LP is 2^n in the
            // variable count, and fuzz throughput matters more than any
            // single pair's size.  Structure bugs shrink to small repros
            // anyway — that is what the minimizer is for.
            max_vars: 4,
            max_atoms: 5,
            seed: 0xfa57_f00d,
        }
    }
}

/// Vocabulary of the generated queries: two binary relations and a unary
/// one, matching the pipeline-equivalence property tests.
const VOCABULARY: [(&str, usize); 3] = [("R", 2), ("S", 2), ("U", 1)];

/// Generates the `index`-th random query pair of the campaign, cycling
/// through the [`PairStrategy`] mix.  Deterministic in `(config.seed,
/// index)`.
pub fn random_pair(index: usize, config: &PairConfig) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let strategy = STRATEGIES[index % STRATEGIES.len()];
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(index as u64),
    );
    let q1 = random_query("Q1", config, &mut rng);
    let q2 = match strategy {
        PairStrategy::Independent | PairStrategy::Headed => random_query("Q2", config, &mut rng),
        PairStrategy::IsomorphicCopy => {
            let copy = crate::rename_shuffle(&q1, rng.gen_range(0u64..u64::MAX));
            bqc_relational::ConjunctiveQuery::boolean("Q2", copy.atoms().to_vec())
                .expect("renamed copy stays valid")
        }
        PairStrategy::AtomSubset => {
            let atoms = random_atom_subset(&q1, &mut rng);
            bqc_relational::ConjunctiveQuery::boolean("Q2", atoms).expect("subset stays valid")
        }
        PairStrategy::AtomSuperset => {
            let mut atoms = q1.atoms().to_vec();
            let extra = random_query("X", config, &mut rng);
            atoms.extend(extra.atoms().iter().cloned());
            bqc_relational::ConjunctiveQuery::boolean("Q2", atoms).expect("superset stays valid")
        }
    };
    if strategy == PairStrategy::Headed {
        (add_head(&q1), add_head(&q2))
    } else {
        (q1, q2)
    }
}

fn random_query(name: &str, config: &PairConfig, rng: &mut StdRng) -> ConjunctiveQuery {
    let vars = rng.gen_range(1..=config.max_vars.max(1));
    let atoms = rng.gen_range(1..=config.max_atoms.max(1));
    let atom_list: Vec<bqc_relational::Atom> = (0..atoms)
        .map(|_| {
            let (relation, arity) = VOCABULARY[rng.gen_range(0..VOCABULARY.len())];
            let args: Vec<String> = (0..arity)
                .map(|_| format!("v{}", rng.gen_range(0..vars)))
                .collect();
            bqc_relational::Atom::new(relation, args)
        })
        .collect();
    ConjunctiveQuery::boolean(name, atom_list).expect("generated query is valid")
}

fn random_atom_subset(q: &ConjunctiveQuery, rng: &mut StdRng) -> Vec<bqc_relational::Atom> {
    let atoms = q.atoms();
    let mut subset: Vec<bqc_relational::Atom> = atoms
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(atoms[rng.gen_range(0..atoms.len())].clone());
    }
    subset
}

/// Gives a Boolean query a one-variable head (its first variable), renaming
/// the query accordingly.  Used by [`PairStrategy::Headed`].
fn add_head(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let head = vec![q.vars()[0].clone()];
    ConjunctiveQuery::new(q.name.clone(), head, q.atoms().to_vec())
        .expect("head variable occurs in the body")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_core::oracle::count_violation;

    #[test]
    fn family_is_deterministic_and_labeled() {
        let q1 = crate::cycle_query(3);
        let q2 = crate::star_query(2);
        let config = FamilyConfig::default();
        let a = database_family(&q1, &q2, &config);
        let b = database_family(&q1, &q2, &config);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 4 + 2 * config.random_per_domain);
        for ((la, da), (lb, db)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(da, db);
        }
        assert_eq!(a[0].0, "canonical(Q1)");
    }

    #[test]
    fn family_separates_known_refutations() {
        // Example 3.5 separates on the canonical database of Q1.
        let q1 = crate::parallel_blocks_query(2);
        let q2 = crate::spread_query();
        let family = database_family(&q1, &q2, &FamilyConfig::default());
        assert!(family
            .iter()
            .any(|(_, db)| count_violation(&q1, &q2, db).unwrap().is_some()));
        // 5-cycle ⋢ 2-star needs the random members.
        let q1 = crate::star_query(2);
        let q2 = crate::cycle_query(5);
        let family = database_family(&q1, &q2, &FamilyConfig::default());
        assert!(family
            .iter()
            .any(|(_, db)| count_violation(&q1, &q2, db).unwrap().is_some()));
    }

    #[test]
    fn random_pairs_are_deterministic_and_cover_strategies() {
        let config = PairConfig::default();
        for index in 0..10 {
            let (a1, a2) = random_pair(index, &config);
            let (b1, b2) = random_pair(index, &config);
            assert_eq!(format!("{a1};{a2}"), format!("{b1};{b2}"));
            assert!(a1.num_vars() <= config.max_vars);
            assert!(a1.atoms().len() <= config.max_atoms);
        }
        // The headed strategy produces matching one-variable heads.
        let (h1, h2) = random_pair(4, &config);
        assert_eq!(h1.head().len(), 1);
        assert_eq!(h2.head().len(), 1);
        // The isomorphic-copy strategy produces canonically equal queries.
        let (c1, c2) = random_pair(1, &config);
        assert_eq!(c1.atoms().len(), c2.atoms().len());
    }
}
