//! Benchmark median reports and the CI regression comparison.
//!
//! The vendored criterion harness appends one JSON-lines record
//! `{"id": "...", "median_ns": ...}` per benchmark when `BQC_BENCH_JSON` is
//! set.  This module parses those records (and the collected baseline
//! documents built from them), renders the canonical committed form
//! (`BENCH_PR5.json`), and implements the regression comparison that the CI
//! `bench` job runs through the `bench_compare` binary.
//!
//! Everything is hand-rolled string processing: the build environment has no
//! serde, and the format is fully under this repository's control.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Median nanoseconds per scenario id, ordered by id.
pub type Medians = BTreeMap<String, f64>;

/// Parses every `{"id": ..., "median_ns": ...}` record in `text`.
///
/// Accepts both the raw JSON-lines stream written by the harness and the
/// collected document rendered by [`render_baseline`].  Duplicate ids keep
/// the **smallest** value: the gate script appends several runs of each
/// suite to one stream, and best-of-N medians is far more robust to
/// scheduler noise (which only ever inflates timings) than any single run —
/// on both sides of the comparison, since baselines are collected the same
/// way.  Returns an error naming the first malformed record.
pub fn parse_medians(text: &str) -> Result<Medians, String> {
    let mut medians = Medians::new();
    let mut rest = text;
    while let Some(start) = rest.find("\"id\"") {
        rest = &rest[start + 4..];
        let open = rest
            .find('"')
            .ok_or_else(|| "unterminated id record".to_string())?;
        let mut id = String::new();
        let mut chars = rest[open + 1..].char_indices();
        let mut closed = None;
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next() {
                    Some((_, escaped)) => id.push(escaped),
                    None => return Err("dangling escape in id".to_string()),
                },
                '"' => {
                    closed = Some(open + 1 + i);
                    break;
                }
                _ => id.push(ch),
            }
        }
        let closed = closed.ok_or_else(|| "unterminated id string".to_string())?;
        rest = &rest[closed + 1..];
        let key = rest
            .find("\"median_ns\"")
            .ok_or_else(|| format!("record {id:?} has no median_ns"))?;
        let after = rest[key + 11..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("record {id:?}: expected ':' after median_ns"))?
            .trim_start();
        let end = after
            .find(|ch: char| {
                !(ch.is_ascii_digit()
                    || ch == '.'
                    || ch == '-'
                    || ch == '+'
                    || ch == 'e'
                    || ch == 'E')
            })
            .unwrap_or(after.len());
        let value: f64 = after[..end]
            .parse()
            .map_err(|_| format!("record {id:?}: bad median_ns {:?}", &after[..end]))?;
        medians
            .entry(id)
            .and_modify(|best| *best = best.min(value))
            .or_insert(value);
        rest = &after[end..];
    }
    Ok(medians)
}

/// Renders the canonical committed baseline document.
pub fn render_baseline(medians: &Medians) -> String {
    let mut out = String::from("{\n  \"schema\": \"bqc-bench-medians-v1\",\n  \"scenarios\": [\n");
    for (i, (id, median)) in medians.iter().enumerate() {
        let comma = if i + 1 == medians.len() { "" } else { "," };
        let escaped: String = id
            .chars()
            .flat_map(|ch| match ch {
                '"' | '\\' => vec!['\\', ch],
                _ => vec![ch],
            })
            .collect();
        let _ = writeln!(
            out,
            "    {{\"id\": \"{escaped}\", \"median_ns\": {median:.1}}}{comma}"
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// A required speedup between two scenarios of the *new* run: the scenario
/// `slow` must take at least `factor` times as long as `fast`.
#[derive(Clone, Debug)]
pub struct SpeedupRequirement {
    /// Id of the scenario expected to be slower.
    pub slow: String,
    /// Id of the scenario expected to be faster.
    pub fast: String,
    /// Minimum ratio `median(slow) / median(fast)`.
    pub factor: f64,
}

/// Outcome of [`compare`]: the rendered report plus pass/fail.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Human-readable per-scenario table and verdicts.
    pub report: String,
    /// Failure descriptions; empty iff the gate passes.
    pub failures: Vec<String>,
}

/// Compares a new run against the committed baseline.
///
/// A scenario regresses when `new / baseline > threshold` (e.g. 1.25 for the
/// CI gate's 25%).  Scenarios present in the baseline but missing from the
/// new run fail the gate — losing coverage silently is exactly what the gate
/// exists to prevent — while scenarios only present in the new run are
/// reported but do not fail (the baseline is updated by committing the new
/// file).  Each `SpeedupRequirement` is checked against the new medians.
///
/// With `normalize` set, every per-scenario ratio is divided by the
/// geometric mean of all ratios before the threshold is applied.  This is
/// the **machine calibration** the CI gate relies on: a baseline recorded on
/// one machine and a run on a uniformly faster or slower one produce the
/// same shifted ratio everywhere, which the geomean cancels, while a
/// regression localized to some scenarios still sticks out against the
/// rest.  The trade-off — a change slowing *every* scenario by the same
/// factor is invisible to the normalized gate — is covered by the
/// machine-independent `SpeedupRequirement` floors, which always compare
/// scenarios of the same run.
pub fn compare(
    baseline: &Medians,
    new: &Medians,
    threshold: f64,
    speedups: &[SpeedupRequirement],
    normalize: bool,
) -> Comparison {
    let mut report = String::new();
    let mut failures = Vec::new();
    let scale = if normalize {
        let ratios: Vec<f64> = baseline
            .iter()
            .filter_map(|(id, base)| new.get(id).map(|current| current / base))
            .collect();
        if ratios.is_empty() {
            1.0
        } else {
            let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let _ = writeln!(
                report,
                "machine calibration: new run is {geomean:.3}x the baseline overall; \
                 per-scenario ratios are normalized by this factor"
            );
            geomean
        }
    } else {
        1.0
    };
    let _ = writeln!(
        report,
        "{:<55} {:>12} {:>12} {:>8}",
        "scenario", "baseline", "new", "ratio"
    );
    for (id, base) in baseline {
        match new.get(id) {
            None => {
                failures.push(format!("scenario {id:?} missing from the new run"));
                let _ = writeln!(report, "{id:<55} {base:>12.1} {:>12} {:>8}", "MISSING", "-");
            }
            Some(current) => {
                let ratio = (current / base) / scale;
                let verdict = if ratio > threshold { "  REGRESSED" } else { "" };
                let _ = writeln!(
                    report,
                    "{id:<55} {base:>12.1} {current:>12.1} {ratio:>8.3}{verdict}"
                );
                if ratio > threshold {
                    failures.push(format!(
                        "scenario {id:?} regressed {:.1}% (> {:.0}% allowed)",
                        (ratio - 1.0) * 100.0,
                        (threshold - 1.0) * 100.0
                    ));
                }
            }
        }
    }
    for id in new.keys() {
        if !baseline.contains_key(id) {
            let _ = writeln!(
                report,
                "{id:<55} {:>12} {:>12.1} {:>8}",
                "(new)", new[id], "-"
            );
        }
    }
    for requirement in speedups {
        let (Some(slow), Some(fast)) = (new.get(&requirement.slow), new.get(&requirement.fast))
        else {
            failures.push(format!(
                "speedup check needs both {:?} and {:?} in the new run",
                requirement.slow, requirement.fast
            ));
            continue;
        };
        let ratio = slow / fast;
        let _ = writeln!(
            report,
            "speedup {} / {} = {ratio:.1}x (required >= {:.1}x)",
            requirement.slow, requirement.fast, requirement.factor
        );
        if ratio < requirement.factor {
            failures.push(format!(
                "speedup {} / {} is {ratio:.1}x, below the required {:.1}x",
                requirement.slow, requirement.fast, requirement.factor
            ));
        }
    }
    Comparison { report, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(pairs: &[(&str, f64)]) -> Medians {
        pairs.iter().map(|(id, v)| (id.to_string(), *v)).collect()
    }

    #[test]
    fn parses_jsonl_and_rendered_documents() {
        let raw = "{\"id\": \"lp/a/1\", \"median_ns\": 120.5}\n{\"id\": \"lp/b \\\"x\\\"\", \"median_ns\": 3e2}\n{\"id\": \"lp/a/1\", \"median_ns\": 110.0}\n{\"id\": \"lp/a/1\", \"median_ns\": 140.0}\n";
        let parsed = parse_medians(raw).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["lp/a/1"], 110.0); // best (smallest) record wins
        assert_eq!(parsed["lp/b \"x\""], 300.0);
        let rendered = render_baseline(&parsed);
        assert!(rendered.contains("bqc-bench-medians-v1"));
        let reparsed = parse_medians(&rendered).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(parse_medians("{\"id\": \"x\"}").is_err());
        assert!(parse_medians("{\"id\": \"x\", \"median_ns\": oops}").is_err());
    }

    #[test]
    fn regression_detection_and_thresholds() {
        let base = medians(&[("a", 100.0), ("b", 100.0), ("gone", 50.0)]);
        let new = medians(&[("a", 120.0), ("b", 130.0), ("extra", 10.0)]);
        let result = compare(&base, &new, 1.25, &[], false);
        // a: +20% passes, b: +30% fails, gone: missing fails, extra: warns.
        assert_eq!(result.failures.len(), 2);
        assert!(result.failures.iter().any(|f| f.contains("\"b\"")));
        assert!(result.failures.iter().any(|f| f.contains("\"gone\"")));
        assert!(result.report.contains("(new)"));

        let ok = compare(
            &medians(&[("a", 100.0)]),
            &medians(&[("a", 124.0)]),
            1.25,
            &[],
            false,
        );
        assert!(ok.failures.is_empty());
    }

    #[test]
    fn normalization_cancels_uniform_machine_shifts_but_not_local_regressions() {
        let base = medians(&[("a", 100.0), ("b", 200.0), ("c", 50.0), ("d", 1000.0)]);
        // A uniformly 2x slower machine: raw ratios all 2.0, which would fail
        // every scenario un-normalized but must pass with calibration.
        let slower = medians(&[("a", 200.0), ("b", 400.0), ("c", 100.0), ("d", 2000.0)]);
        let raw = compare(&base, &slower, 1.25, &[], false);
        assert_eq!(raw.failures.len(), 4);
        let calibrated = compare(&base, &slower, 1.25, &[], true);
        assert!(calibrated.failures.is_empty(), "{:?}", calibrated.failures);
        assert!(calibrated.report.contains("machine calibration"));

        // The same 2x machine with one genuinely regressed scenario: only
        // that scenario fails after calibration.
        let regressed = medians(&[("a", 200.0), ("b", 400.0), ("c", 100.0), ("d", 8000.0)]);
        let result = compare(&base, &regressed, 1.25, &[], true);
        assert_eq!(result.failures.len(), 1);
        assert!(result.failures[0].contains("\"d\""));
    }

    #[test]
    fn speedup_requirements_are_enforced() {
        let base = medians(&[("slow", 1000.0), ("fast", 100.0)]);
        let new = medians(&[("slow", 1000.0), ("fast", 100.0)]);
        let ok = compare(
            &base,
            &new,
            1.25,
            &[SpeedupRequirement {
                slow: "slow".into(),
                fast: "fast".into(),
                factor: 5.0,
            }],
            false,
        );
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
        let bad = compare(
            &base,
            &new,
            1.25,
            &[SpeedupRequirement {
                slow: "slow".into(),
                fast: "fast".into(),
                factor: 50.0,
            }],
            false,
        );
        assert_eq!(bad.failures.len(), 1);
    }
}
