//! CLI for the CI bench-regression gate.
//!
//! Two subcommands:
//!
//! * `bench_compare collect <raw.jsonl>` — reads the JSON-lines records the
//!   benchmark harness appends under `BQC_BENCH_JSON` and prints the
//!   canonical baseline document (`BENCH_PR5.json`) to stdout;
//! * `bench_compare compare <baseline.json> <new.json> [--threshold 1.25]
//!   [--normalize] [--min-speedup SLOW_ID FAST_ID FACTOR]...` — fails
//!   (exit 1) when any baseline scenario regresses beyond the threshold,
//!   disappears from the new run, or a required speedup between two
//!   scenarios of the new run is not met.  `--normalize` divides every
//!   ratio by the run-wide geometric mean first (machine calibration), so a
//!   baseline recorded on a different machine stays comparable.
//!
//! See `scripts/bench_compare.sh` for the invocation CI uses.

use bqc_bench::report::{compare, parse_medians, render_baseline, SpeedupRequirement};
use std::process::ExitCode;

fn read_medians(path: &str) -> Result<bqc_bench::report::Medians, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    parse_medians(&text).map_err(|error| format!("{path}: {error}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("collect") => {
            let [_, raw] = args.as_slice() else {
                return Err("usage: bench_compare collect <raw.jsonl>".into());
            };
            let medians = read_medians(raw)?;
            if medians.is_empty() {
                return Err(format!("{raw} contains no benchmark records"));
            }
            print!("{}", render_baseline(&medians));
            Ok(())
        }
        Some("compare") => {
            let mut threshold = 1.25f64;
            let mut normalize = false;
            let mut speedups = Vec::new();
            let mut positional = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--normalize" => normalize = true,
                    "--threshold" => {
                        let value = rest
                            .next()
                            .ok_or_else(|| "--threshold needs a value".to_string())?;
                        threshold = value
                            .parse()
                            .map_err(|_| format!("bad threshold {value:?}"))?;
                    }
                    "--min-speedup" => {
                        let (Some(slow), Some(fast), Some(factor)) =
                            (rest.next(), rest.next(), rest.next())
                        else {
                            return Err("--min-speedup needs SLOW_ID FAST_ID FACTOR".into());
                        };
                        speedups.push(SpeedupRequirement {
                            slow: slow.clone(),
                            fast: fast.clone(),
                            factor: factor
                                .parse()
                                .map_err(|_| format!("bad speedup factor {factor:?}"))?,
                        });
                    }
                    other => positional.push(other.to_string()),
                }
            }
            let [baseline_path, new_path] = positional.as_slice() else {
                return Err(
                    "usage: bench_compare compare <baseline.json> <new.json> [--threshold X] \
                     [--normalize] [--min-speedup SLOW FAST FACTOR]..."
                        .into(),
                );
            };
            let baseline = read_medians(baseline_path)?;
            let new = read_medians(new_path)?;
            let result = compare(&baseline, &new, threshold, &speedups, normalize);
            print!("{}", result.report);
            if result.failures.is_empty() {
                println!(
                    "bench gate: OK ({} scenarios within {:.0}%)",
                    baseline.len(),
                    (threshold - 1.0) * 100.0
                );
                Ok(())
            } else {
                for failure in &result.failures {
                    eprintln!("bench gate: {failure}");
                }
                Err(format!("{} failure(s)", result.failures.len()))
            }
        }
        _ => Err("usage: bench_compare <collect|compare> ...".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}
