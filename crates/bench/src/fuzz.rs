//! The engine-scale fuzz harness behind `bqc fuzz`.
//!
//! Drives generated query pairs ([`crate::families::random_pair`]) through
//! [`bqc_engine::Engine::decide_batch`] in chunks, and replays every verdict
//! against the differential oracle ([`bqc_core::oracle`]) on a per-pair
//! database family ([`crate::families::database_family`]):
//!
//! * `Contained` — every family database must respect the count inequality
//!   (pointwise for headed pairs); any violation is a soundness bug;
//! * `NotContained` — confirmed by a family separation when one exists;
//!   otherwise the pair is re-decided fresh (cross-checking the engine's
//!   cached verdict against the direct one) and its witness re-counted
//!   independently; a witness-free refutation the family cannot confirm is
//!   *counted* as unconfirmed but is not a finding — the LP's refutations
//!   are allowed to live outside the family;
//! * `Unknown` — the reported obstruction is recomputed from `Q2`'s
//!   structure.
//!
//! Every finding is shrunk by [`minimize_case`] (drop atoms, identify
//! variables, re-check the discrepancy after each step) and rendered in the
//! corpus format ([`bqc_engine::corpus`]) so it can be checked in verbatim.
//!
//! [`FuzzConfig::self_test`] flips the first family-separable `NotContained`
//! verdict to `Contained` before checking — an injected soundness bug the
//! oracle must catch, exercising the find → minimize → emit path end to end
//! (the acceptance test of the harness itself).

use crate::families::{database_family, random_pair, FamilyConfig, PairConfig};
use bqc_core::oracle::{check_answer, check_summary, count_violation, replay_witness, Discrepancy};
use bqc_core::{decide_containment, AnswerSummary, ContainmentAnswer, DecideOptions, Obstruction};
use bqc_engine::corpus::{render_case, ExpectedVerdict};
use bqc_engine::{Engine, EngineOptions};
use bqc_relational::{Atom, ConjunctiveQuery, Structure};
use std::time::Duration;

/// The property a minimization step must preserve (see [`minimize_case`]).
type PersistPredicate = Box<dyn Fn(&ConjunctiveQuery, &ConjunctiveQuery) -> bool>;

/// Shape of a fuzz campaign.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of generated pairs.
    pub pairs: usize,
    /// Campaign seed: pair generation and family generation derive from it.
    pub seed: u64,
    /// Pairs per `decide_batch` call.
    pub chunk: usize,
    /// Shape of the per-pair database family.
    pub family: FamilyConfig,
    /// Shape of the generated queries.
    pub pair: PairConfig,
    /// Inject one flipped verdict (see module docs).
    pub self_test: bool,
    /// Per-decision deadline for the engine run (`bqc fuzz --deadline-ms`).
    ///
    /// With a deadline set, the campaign exercises the *degraded-answer
    /// contract* of resource governance: a budget-exhausted answer must be
    /// `Unknown` with a resource-exhausted obstruction — by construction it
    /// can never be a flipped verdict — and re-deciding the same pair with
    /// no budget must produce an answer the counting oracle accepts.  The
    /// budget may cost precision, never soundness.
    pub deadline: Option<Duration>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            pairs: 10_000,
            seed: 0x0bac_5eed,
            chunk: 256,
            family: FamilyConfig::default(),
            pair: PairConfig::default(),
            self_test: false,
            deadline: None,
        }
    }
}

/// One verdict/count discrepancy, with its minimized corpus-format repro.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Index of the pair in the campaign.
    pub index: usize,
    /// The original generated pair.
    pub q1: ConjunctiveQuery,
    /// The original containing-candidate query.
    pub q2: ConjunctiveQuery,
    /// Whether this finding is the [`FuzzConfig::self_test`] injection.
    pub injected: bool,
    /// Every discrepancy the oracle reported for the original pair.
    pub discrepancies: Vec<Discrepancy>,
    /// The shrunk pair that still exhibits the discrepancy.
    pub minimized: (ConjunctiveQuery, ConjunctiveQuery),
    /// The repro in corpus format, ready to be checked in.
    pub repro: String,
}

/// Aggregate outcome of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Pairs driven through the engine.
    pub pairs: usize,
    /// `Contained` verdicts.
    pub contained: usize,
    /// `NotContained` verdicts.
    pub not_contained: usize,
    /// `Unknown` verdicts.
    pub unknown: usize,
    /// Decision errors (mismatched heads etc. — none are generated, so any
    /// count here deserves a look).
    pub errors: usize,
    /// `NotContained` verdicts confirmed by a family separation or an
    /// independently re-counted witness.
    pub confirmed_refutations: usize,
    /// `NotContained` verdicts the oracle could not independently confirm
    /// (no family separation, no witness).  Not findings — but reported, so
    /// a generator change that collapses confirmation coverage is visible.
    pub unconfirmed_refutations: usize,
    /// Budget-exhausted `Unknown` answers (only with [`FuzzConfig::deadline`]
    /// set).  Each one was re-decided without a budget and the unbudgeted
    /// answer replayed against the oracle.  Also counted in `unknown`.
    pub budget_exhausted: usize,
    /// Every discrepancy, minimized.
    pub findings: Vec<Finding>,
    /// Index of the self-test injection, when one was made.
    pub injected_at: Option<usize>,
}

impl CampaignReport {
    /// `true` iff the campaign found no real discrepancy and — when a
    /// self-test injection was made — the injection *was* caught.
    pub fn passed(&self) -> bool {
        match self.injected_at {
            None => self.findings.is_empty(),
            Some(index) => {
                self.findings.iter().any(|f| f.injected && f.index == index)
                    && self.findings.iter().all(|f| f.injected)
            }
        }
    }
}

/// Runs a fuzz campaign, invoking `progress(pairs_done)` after every chunk.
pub fn run_campaign(config: &FuzzConfig, progress: &mut dyn FnMut(usize)) -> CampaignReport {
    let mut decide = DecideOptions::default();
    decide.budget.deadline = config.deadline;
    let engine = Engine::new(EngineOptions {
        decide,
        ..EngineOptions::default()
    });
    let mut report = CampaignReport::default();
    let chunk_size = config.chunk.max(1);
    let mut index = 0;
    while index < config.pairs {
        let count = chunk_size.min(config.pairs - index);
        let batch: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (index..index + count)
            .map(|i| random_pair(i, &config.pair))
            .collect();
        let results = engine.decide_batch(&batch);
        for (offset, result) in results.iter().enumerate() {
            let pair_index = index + offset;
            let (q1, q2) = &batch[offset];
            let mut summary = match &result.answer {
                Ok(summary) => *summary,
                Err(_) => {
                    report.errors += 1;
                    continue;
                }
            };
            let family = pair_family(q1, q2, config, pair_index);
            let mut injected = false;
            if config.self_test
                && report.injected_at.is_none()
                && matches!(summary, AnswerSummary::NotContained { .. })
                && family_separates(q1, q2, &family)
            {
                summary = AnswerSummary::Contained;
                report.injected_at = Some(pair_index);
                injected = true;
            }
            match summary {
                AnswerSummary::Contained => report.contained += 1,
                AnswerSummary::NotContained { .. } => report.not_contained += 1,
                AnswerSummary::Unknown { .. } => report.unknown += 1,
            }
            let exhausted = matches!(
                summary,
                AnswerSummary::Unknown {
                    obstruction: Obstruction::ResourceExhausted { .. }
                }
            );
            let mut check = if exhausted {
                // A budget-exhausted answer makes no claim about the pair,
                // only about the run — the type system already guarantees it
                // is `Unknown`, never a flipped verdict.  What the campaign
                // must establish is that the budget cost only precision:
                // re-decide with no budget and hold *that* answer to the
                // oracle.
                report.budget_exhausted += 1;
                match decide_containment(q1, q2) {
                    Ok(answer) => check_answer(q1, q2, &answer, &family),
                    Err(_) => {
                        report.errors += 1;
                        continue;
                    }
                }
            } else {
                check_summary(q1, q2, summary, &family)
            };
            if let AnswerSummary::NotContained { .. } = summary {
                if check.separated_by.is_some() {
                    report.confirmed_refutations += 1;
                } else {
                    // Re-decide fresh: cross-check the engine's verdict and
                    // replay the witness the direct decision materializes.
                    match decide_containment(q1, q2) {
                        Ok(answer) => {
                            let fresh = answer.summary();
                            if fresh != summary {
                                check.discrepancies.push(Discrepancy::VerdictMismatch {
                                    observed: summary,
                                    fresh,
                                });
                            }
                            if let ContainmentAnswer::NotContained {
                                witness: Some(witness),
                                ..
                            } = &answer
                            {
                                match replay_witness(q1, q2, witness) {
                                    Ok(()) => report.confirmed_refutations += 1,
                                    Err(d) => check.discrepancies.push(d),
                                }
                            } else {
                                report.unconfirmed_refutations += 1;
                            }
                        }
                        Err(_) => report.errors += 1,
                    }
                }
            }
            if !check.discrepancies.is_empty() {
                report.findings.push(build_finding(
                    q1,
                    q2,
                    pair_index,
                    injected,
                    check.discrepancies,
                    config,
                ));
            }
        }
        index += count;
        report.pairs = index;
        progress(index);
    }
    report
}

fn pair_family(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    config: &FuzzConfig,
    pair_index: usize,
) -> Vec<(String, Structure)> {
    let family_config = FamilyConfig {
        seed: config
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(pair_index as u64),
        ..config.family
    };
    database_family(q1, q2, &family_config)
}

/// `true` iff some family member separates the pair by counting (counter
/// mismatches are treated as non-separating here; they surface through the
/// regular check instead).
fn family_separates(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    family: &[(String, Structure)],
) -> bool {
    family
        .iter()
        .any(|(_, db)| matches!(count_violation(q1, q2, db), Ok(Some(_))))
}

fn build_finding(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    index: usize,
    injected: bool,
    discrepancies: Vec<Discrepancy>,
    config: &FuzzConfig,
) -> Finding {
    // What must keep holding while we shrink.  For an injected flip the
    // decision procedure is actually correct, so the property is "the oracle
    // would convict a Contained verdict": the pair is decided NotContained
    // and the family separates it.  For a real finding it is "a fresh check
    // of the fresh verdict still reports a discrepancy".
    let persists: PersistPredicate = if injected {
        let config = *config;
        Box::new(move |a: &ConjunctiveQuery, b: &ConjunctiveQuery| {
            let family = pair_family(a, b, &config, index);
            matches!(
                decide_containment(a, b).map(|ans| ans.summary()),
                Ok(AnswerSummary::NotContained { .. })
            ) && family_separates(a, b, &family)
        })
    } else {
        let config = *config;
        Box::new(move |a: &ConjunctiveQuery, b: &ConjunctiveQuery| {
            let family = pair_family(a, b, &config, index);
            match decide_containment(a, b) {
                Ok(answer) => !bqc_core::oracle::check_answer(a, b, &answer, &family)
                    .discrepancies
                    .is_empty(),
                Err(_) => false,
            }
        })
    };
    let minimized = minimize_case(q1, q2, persists.as_ref());
    let repro = render_repro(
        &minimized.0,
        &minimized.1,
        index,
        injected,
        &discrepancies,
        config,
    );
    Finding {
        index,
        q1: q1.clone(),
        q2: q2.clone(),
        injected,
        discrepancies,
        minimized,
        repro,
    }
}

/// Renders the minimized pair as a corpus case: the expected verdict is the
/// *oracle-correct* one — `not-contained` with the separating family
/// database as `WITNESS:` when the family separates the minimized pair,
/// otherwise whatever a fresh decision produces.
fn render_repro(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    index: usize,
    injected: bool,
    discrepancies: &[Discrepancy],
    config: &FuzzConfig,
) -> String {
    let family = pair_family(q1, q2, config, index);
    let separation = family
        .iter()
        .find_map(|(label, db)| match count_violation(q1, q2, db) {
            Ok(Some(v)) => Some((label.clone(), db.clone(), v)),
            _ => None,
        });
    let mut comments = vec![format!(
        "found by `bqc fuzz`: seed={:#x}, pair #{index}{}",
        config.seed,
        if injected {
            " (self-test injection)"
        } else {
            ""
        }
    )];
    for d in discrepancies {
        comments.push(format!("discrepancy: {d}"));
    }
    let (expect, witness) = match &separation {
        Some((label, db, violation)) => {
            comments.push(format!(
                "family member {label} separates: |Q1(D)| = {} > {} = |Q2(D)|",
                violation.hom_q1, violation.hom_q2
            ));
            (ExpectedVerdict::NotContained, Some(db.clone()))
        }
        None => {
            let expect = match decide_containment(q1, q2).map(|a| a.summary()) {
                Ok(AnswerSummary::Contained) => ExpectedVerdict::Contained,
                Ok(AnswerSummary::NotContained { .. }) => ExpectedVerdict::NotContained,
                Ok(AnswerSummary::Unknown { .. }) | Err(_) => ExpectedVerdict::Unknown,
            };
            (expect, None)
        }
    };
    render_case(&comments, q1, q2, expect, witness.as_ref())
}

/// Budget on `persists` evaluations during minimization — each one is a full
/// decision plus a family replay.
const MINIMIZE_BUDGET: usize = 200;

/// Greedy shrinking: repeatedly tries dropping one atom (either query) and
/// identifying one variable pair (either query), keeping any candidate for
/// which `persists` still holds, until a fixpoint or the evaluation budget
/// is reached.  `persists` must hold for the input pair; the result is a
/// pair on which it still holds.
pub fn minimize_case(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    persists: &dyn Fn(&ConjunctiveQuery, &ConjunctiveQuery) -> bool,
) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let mut current = (q1.clone(), q2.clone());
    let mut budget = MINIMIZE_BUDGET;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current.0, &current.1) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if persists(&candidate.0, &candidate.1) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// All one-step shrinks of a pair, smallest-effect first: atom drops on
/// either side, then variable identifications on either side.
fn shrink_candidates(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let mut candidates = Vec::new();
    for (side, q) in [(0, q1), (1, q2)] {
        if q.atoms().len() > 1 {
            for skip in 0..q.atoms().len() {
                let atoms: Vec<Atom> = q
                    .atoms()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                if let Some(shrunk) = rebuild(q, atoms) {
                    candidates.push(if side == 0 {
                        (shrunk, q2.clone())
                    } else {
                        (q1.clone(), shrunk)
                    });
                }
            }
        }
    }
    for (side, q) in [(0, q1), (1, q2)] {
        let vars = q.vars();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i == j {
                    continue;
                }
                let atoms: Vec<Atom> = q
                    .atoms()
                    .iter()
                    .map(|a| {
                        Atom::new(
                            a.relation.clone(),
                            a.args.iter().map(|v| {
                                if *v == vars[i] {
                                    vars[j].clone()
                                } else {
                                    v.clone()
                                }
                            }),
                        )
                    })
                    .collect();
                if let Some(shrunk) = rebuild(q, atoms) {
                    candidates.push(if side == 0 {
                        (shrunk, q2.clone())
                    } else {
                        (q1.clone(), shrunk)
                    });
                }
            }
        }
    }
    candidates
}

/// Rebuilds a query with new atoms, keeping only the head variables that
/// still occur in the body.  `None` when the result is invalid.
fn rebuild(q: &ConjunctiveQuery, atoms: Vec<Atom>) -> Option<ConjunctiveQuery> {
    let body_vars: std::collections::BTreeSet<&String> =
        atoms.iter().flat_map(|a| a.args.iter()).collect();
    let head: Vec<String> = q
        .head()
        .iter()
        .filter(|v| body_vars.contains(v))
        .cloned()
        .collect();
    ConjunctiveQuery::new(q.name.clone(), head, atoms).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_engine::parse_corpus;

    #[test]
    fn small_clean_campaign_passes() {
        let config = FuzzConfig {
            pairs: 50,
            ..FuzzConfig::default()
        };
        let mut last = 0;
        let report = run_campaign(&config, &mut |done| last = done);
        assert_eq!(last, 50);
        assert_eq!(report.pairs, 50);
        assert!(report.passed(), "findings: {:?}", report.findings);
        assert_eq!(report.errors, 0);
        assert_eq!(report.contained + report.not_contained + report.unknown, 50);
        // The strategy mix must reach all verdict classes even this small.
        assert!(report.contained > 0, "no contained verdicts generated");
        assert!(report.not_contained > 0, "no refutations generated");
        assert!(report.confirmed_refutations > 0);
    }

    #[test]
    fn zero_deadline_campaign_degrades_soundly() {
        // A zero deadline exhausts every decision before its first pipeline
        // stage: all answers must degrade to budget-exhausted `Unknown`
        // (never a flipped verdict), and each unbudgeted re-decision must
        // satisfy the oracle — so the campaign still passes.
        let config = FuzzConfig {
            pairs: 30,
            deadline: Some(Duration::ZERO),
            ..FuzzConfig::default()
        };
        let report = run_campaign(&config, &mut |_| {});
        assert!(report.passed(), "findings: {:?}", report.findings);
        assert_eq!(report.errors, 0);
        assert_eq!(report.budget_exhausted, 30, "every answer degraded");
        assert_eq!(report.unknown, 30);
        assert_eq!(report.contained + report.not_contained, 0);
    }

    #[test]
    fn generous_deadline_campaign_matches_the_unbudgeted_one() {
        // With an ample deadline the budget machinery is armed but never
        // fires: verdict counts must be identical to the unbudgeted run.
        let base = FuzzConfig {
            pairs: 40,
            ..FuzzConfig::default()
        };
        let budgeted = FuzzConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..base
        };
        let plain = run_campaign(&base, &mut |_| {});
        let timed = run_campaign(&budgeted, &mut |_| {});
        assert_eq!(timed.budget_exhausted, 0);
        assert_eq!(
            (timed.contained, timed.not_contained, timed.unknown),
            (plain.contained, plain.not_contained, plain.unknown)
        );
        assert!(timed.passed());
    }

    #[test]
    fn self_test_injection_is_caught_and_minimized() {
        let config = FuzzConfig {
            pairs: 40,
            self_test: true,
            ..FuzzConfig::default()
        };
        let report = run_campaign(&config, &mut |_| {});
        let injected_at = report.injected_at.expect("an injection site exists");
        assert!(report.passed(), "injection not caught: {report:?}");
        let finding = report
            .findings
            .iter()
            .find(|f| f.injected)
            .expect("the injected bug is a finding");
        assert_eq!(finding.index, injected_at);
        assert!(matches!(
            finding.discrepancies[0],
            Discrepancy::ContainedViolated { .. }
        ));
        // Minimization did not grow the pair …
        assert!(
            finding.minimized.0.atoms().len() <= finding.q1.atoms().len()
                && finding.minimized.1.atoms().len() <= finding.q2.atoms().len()
        );
        // … and the repro is a valid corpus case expecting the true verdict.
        let cases = parse_corpus(&finding.repro).expect("repro parses as corpus");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].expect, bqc_engine::ExpectedVerdict::NotContained);
        let witness = cases[0].witness.as_ref().expect("repro carries a witness");
        let violation = bqc_core::oracle::count_violation(&cases[0].q1, &cases[0].q2, witness)
            .expect("counts agree")
            .expect("witness separates");
        assert!(violation.hom_q1 > violation.hom_q2);
    }

    #[test]
    fn minimizer_reaches_small_fixpoints() {
        // star2 ⋢ triangle: minimization under "still refuted with family
        // separation" must keep a separating shape but may drop atoms.
        let q1 = crate::star_query(2);
        let q2 = crate::cycle_query(3);
        let persists = |a: &ConjunctiveQuery, b: &ConjunctiveQuery| {
            matches!(
                decide_containment(a, b).map(|ans| ans.summary()),
                Ok(AnswerSummary::NotContained { .. })
            )
        };
        let (m1, m2) = minimize_case(&q1, &q2, &persists);
        assert!(persists(&m1, &m2));
        assert!(m1.atoms().len() <= q1.atoms().len());
        assert!(m2.atoms().len() <= q2.atoms().len());
    }
}
