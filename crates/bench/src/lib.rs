//! Workload generators shared by the benchmark harness.
//!
//! The paper has no empirical tables (it is a PODS theory paper), so the
//! benchmark suite regenerates the *algorithmic* experiments catalogued in
//! EXPERIMENTS.md: scaling of the Theorem 3.1 decision procedure, of the
//! Shannon-cone LP prover, of homomorphism counting (backtracking vs.
//! junction-tree DP), of the exact simplex, of witness extraction, and of the
//! Lemma 3.7 normalization.  This crate holds the deterministic workload
//! generators those benchmarks (and some stress tests) share.

use bqc_arith::{int, Rational};
use bqc_entropy::{all_masks, SetFunction};
use bqc_relational::{Atom, ConjunctiveQuery, Structure, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod families;
pub mod fuzz;
pub mod report;

/// A directed cycle `R(0,1), R(1,2), …, R(n−1,0)` as a Boolean query.
pub fn cycle_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2);
    let atoms = (0..n)
        .map(|i| Atom::new("R", [format!("x{i}"), format!("x{}", (i + 1) % n)]))
        .collect();
    ConjunctiveQuery::boolean(format!("cycle{n}"), atoms).expect("valid cycle query")
}

/// A directed path `R(0,1), …, R(n−1,n)` as a Boolean query (acyclic, chordal,
/// simple junction tree).
pub fn path_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| Atom::new("R", [format!("y{i}"), format!("y{}", i + 1)]))
        .collect();
    ConjunctiveQuery::boolean(format!("path{n}"), atoms).expect("valid path query")
}

/// An out-star `R(c,1), …, R(c,n)` as a Boolean query.
pub fn star_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| Atom::new("R", ["c".to_string(), format!("l{i}")]))
        .collect();
    ConjunctiveQuery::boolean(format!("star{n}"), atoms).expect("valid star query")
}

/// A random directed graph database with `vertices` vertices and `edges`
/// (not necessarily distinct) edges, deterministic in `seed`.
pub fn random_graph(vertices: usize, edges: usize, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Structure::empty();
    for _ in 0..edges {
        let a = rng.gen_range(0..vertices);
        let b = rng.gen_range(0..vertices);
        db.add_fact("R", vec![Value::int(a as i64), Value::int(b as i64)]);
    }
    db
}

/// An isomorphic copy of `query`: variables renamed by a random permutation
/// (to fresh `p{i}` names) and atoms shuffled, deterministic in `seed`.
///
/// The result is canonically equal to `query` — exactly the kind of repeat a
/// containment-serving engine must recognize — while sharing no variable
/// names and no atom order with it.
pub fn rename_shuffle(query: &ConjunctiveQuery, seed: u64) -> ConjunctiveQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars = query.vars();
    // Random permutation of 0..n decides which fresh name each variable gets.
    let mut perm: Vec<usize> = (0..vars.len()).collect();
    shuffle(&mut perm, &mut rng);
    let rename = |v: &str| {
        let i = vars.iter().position(|w| w == v).expect("var in vars()");
        format!("p{}", perm[i])
    };
    let head: Vec<String> = query.head().iter().map(|v| rename(v)).collect();
    let mut atoms: Vec<Atom> = query
        .atoms()
        .iter()
        .map(|a| Atom::new(a.relation.clone(), a.args.iter().map(|v| rename(v))))
        .collect();
    shuffle(&mut atoms, &mut rng);
    ConjunctiveQuery::new(query.name.clone(), head, atoms)
        .expect("renaming and reordering preserve validity")
}

/// A batch-engine workload: each base containment question appears `repeats`
/// times, every occurrence as a differently renamed and reordered isomorphic
/// copy, with the whole request list shuffled.  Deterministic in `seed`.
///
/// The base questions cover the decision procedure's branches on small
/// queries (Shannon-valid containment, refuted containment, the
/// no-homomorphism shortcut), so the workload exercises both the LP path and
/// the cache/dedup machinery of the engine.
pub fn engine_workload(repeats: usize, seed: u64) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let base: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = vec![
        // Example 4.3: triangle ⊑ 2-out-star (the LP-valid direction).
        (cycle_query(3), star_query(2)),
        // The refuted reverse direction.
        (star_query(2), cycle_query(3)),
        // Paths in both directions (chordal, simple junction trees).
        (path_query(3), path_query(2)),
        (path_query(2), path_query(3)),
        // Stars against stars: dropping a leaf keeps containment.
        (star_query(3), star_query(2)),
    ];
    let mut workload = Vec::with_capacity(base.len() * repeats);
    for (i, (q1, q2)) in base.iter().enumerate() {
        for r in 0..repeats {
            let variant_seed = seed
                .wrapping_mul(0x1000_0000_01b3)
                .wrapping_add((i * repeats + r) as u64);
            workload.push((
                rename_shuffle(q1, variant_seed),
                rename_shuffle(q2, variant_seed.wrapping_add(0x5bd1_e995)),
            ));
        }
    }
    shuffle(&mut workload, &mut rng);
    workload
}

/// Example 3.5's contained-candidate generalized to `m` parallel-edge
/// blocks: `A(x{i},y{i}), B(x{i},y{i}), C(x{i},y{i})` for `i < m`, all
/// blocks variable-disjoint.  For every `m ≥ 2` the pair
/// `(parallel_blocks_query(m), spread_query())` is **not** contained, the
/// instance is inside the decidable class of Theorem 3.1, and the counting
/// refuter separates it on the canonical database of `Q1` (`m^m` vs `m`
/// homomorphisms) — while the LP-only path must refute a `Γ_{2m}` program.
pub fn parallel_blocks_query(m: usize) -> ConjunctiveQuery {
    assert!(m >= 1);
    let mut atoms = Vec::with_capacity(3 * m);
    for i in 0..m {
        for relation in ["A", "B", "C"] {
            atoms.push(Atom::new(relation, [format!("x{i}"), format!("y{i}")]));
        }
    }
    ConjunctiveQuery::boolean(format!("blocks{m}"), atoms).expect("valid blocks query")
}

/// Example 3.5's containing query `A(y1,y2), B(y1,y3), C(y4,y2)` (chordal,
/// simple junction tree).
pub fn spread_query() -> ConjunctiveQuery {
    ConjunctiveQuery::boolean(
        "spread",
        vec![
            Atom::new("A", ["y1", "y2"]),
            Atom::new("B", ["y1", "y3"]),
            Atom::new("C", ["y4", "y2"]),
        ],
    )
    .expect("valid spread query")
}

/// A batch-engine workload exercising **every** pipeline stage outcome: the
/// base questions below are decided by, respectively, the Shannon-cone LP
/// (both pairs of Example 4.3), the hom-existence screen, the
/// canonical-identity shortcut (isomorphic copies canonicalize to the same
/// representative), the counting refuter (on the canonical database and on
/// the random family), and the single-bag Theorem 4.2 check for a
/// non-chordal containing query.  Each question appears `repeats` times as a
/// differently renamed/reordered copy, shuffled; deterministic in `seed`.
pub fn stage_mix_workload(repeats: usize, seed: u64) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51f1_77e5);
    let square = cycle_query(4);
    let chorded = {
        let mut atoms = cycle_query(4).atoms().to_vec();
        atoms.push(Atom::new("R", ["x0", "x2"]));
        ConjunctiveQuery::boolean("chorded4", atoms).expect("valid chorded cycle")
    };
    let base: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = vec![
        // shannon-lp, contained (Example 4.3) and hom-existence, refuted.
        (cycle_query(3), star_query(2)),
        (star_query(2), cycle_query(3)),
        // identity-shortcut (through the engine: isomorphic copies share one
        // canonical representative).
        (path_query(3), path_query(3)),
        // counting-refuter on the canonical database (Example 3.5)…
        (parallel_blocks_query(2), spread_query()),
        // …and on the random-structure family (5-cycle ⋢ 2-star).
        (cycle_query(5), star_query(2)),
        // Non-chordal containing query, contained via the single-bag check.
        (chorded, square),
    ];
    let mut workload = Vec::with_capacity(base.len() * repeats);
    for (i, (q1, q2)) in base.iter().enumerate() {
        for r in 0..repeats {
            let variant_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i * repeats + r) as u64);
            workload.push((
                rename_shuffle(q1, variant_seed),
                rename_shuffle(q2, variant_seed.wrapping_add(0xc2b2_ae35)),
            ));
        }
    }
    shuffle(&mut workload, &mut rng);
    workload
}

/// In-place Fisher–Yates shuffle driven by the deterministic [`StdRng`].
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// A random exact polymatroid over `n` named variables, built as a random
/// non-negative combination of step functions (hence normal, hence a
/// polymatroid), deterministic in `seed`.
pub fn random_normal_polymatroid(n: usize, seed: u64) -> SetFunction {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let mut h = SetFunction::zero(vars.clone());
    let full = h.full_mask();
    let mut result = SetFunction::zero(vars.clone());
    for w in all_masks(n) {
        if w == full {
            continue;
        }
        let coeff = int(rng.gen_range(0..4));
        if coeff.is_zero() {
            continue;
        }
        let step = bqc_entropy::step_function(vars.clone(), w).scale(&coeff);
        result = result.add(&step);
    }
    // Ensure the function is not identically zero.
    if result.value(full).is_zero() {
        result = result.add(&bqc_entropy::step_function(vars, 0));
    }
    h = result;
    h
}

/// A random (generally non-normal) exact polymatroid: the minimum of a random
/// modular function and a constant cap, `h(X) = min(Σ_{i∈X} w_i, cap)` — a
/// rank function of a (weighted) uniform-matroid-like structure.
pub fn random_capped_polymatroid(n: usize, seed: u64) -> SetFunction {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(1..4)).collect();
    let cap: i64 = rng.gen_range(2..2 + weights.iter().sum::<i64>().max(2));
    let mut h = SetFunction::zero(vars);
    for mask in all_masks(n) {
        let total: i64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| weights[i])
            .sum();
        h.set_value(mask, Rational::from(total.min(cap)));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_entropy::{is_normal, is_polymatroid};
    use std::collections::BTreeSet;

    #[test]
    fn generators_produce_valid_objects() {
        assert_eq!(cycle_query(3).num_vars(), 3);
        assert_eq!(path_query(3).num_vars(), 4);
        assert_eq!(star_query(4).num_vars(), 5);
        assert_eq!(random_graph(5, 10, 1).vocabulary().arity_of("R"), Some(2));
        for seed in 0..5 {
            let normal = random_normal_polymatroid(4, seed);
            assert!(is_polymatroid(&normal));
            assert!(is_normal(&normal));
            let capped = random_capped_polymatroid(4, seed);
            assert!(is_polymatroid(&capped));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_graph(6, 12, 7), random_graph(6, 12, 7));
        assert_eq!(
            random_normal_polymatroid(3, 9),
            random_normal_polymatroid(3, 9)
        );
        assert_eq!(rename_shuffle(&cycle_query(4), 3), {
            rename_shuffle(&cycle_query(4), 3)
        });
        let (a, b) = (engine_workload(3, 11), engine_workload(3, 11));
        assert_eq!(a.len(), b.len());
        for ((a1, a2), (b1, b2)) in a.iter().zip(&b) {
            assert_eq!((a1, a2), (b1, b2));
        }
    }

    #[test]
    fn rename_shuffle_preserves_structure() {
        let q = ConjunctiveQuery::new(
            "Q".to_string(),
            vec!["x".to_string(), "z".to_string()],
            vec![
                Atom::new("R", ["x", "y"]),
                Atom::new("S", ["y", "z"]),
                Atom::new("T", ["z", "x"]),
            ],
        )
        .unwrap();
        let shuffled = rename_shuffle(&q, 5);
        assert_eq!(shuffled.num_vars(), q.num_vars());
        assert_eq!(shuffled.atoms().len(), q.atoms().len());
        assert_eq!(shuffled.head().len(), q.head().len());
        // Fresh names: disjoint from the original's.
        assert!(shuffled.vars().iter().all(|v| v.starts_with('p')));
        // Same relation multiset.
        fn rels(q: &ConjunctiveQuery) -> Vec<&str> {
            let mut r: Vec<&str> = q.atoms().iter().map(|a| a.relation.as_str()).collect();
            r.sort();
            r
        }
        assert_eq!(rels(&q), rels(&shuffled));
    }

    #[test]
    fn refutable_and_stage_mix_generators_are_sound() {
        use bqc_core::{decide_containment_traced, DecideContext, DecideOptions};
        // The parallel-blocks family is refuted by the counting stage without
        // touching the LP, for every m.
        for m in 2..=3 {
            let decision = decide_containment_traced(
                &mut DecideContext::new(),
                &parallel_blocks_query(m),
                &spread_query(),
                &DecideOptions::default(),
            )
            .unwrap();
            assert!(decision.answer.is_not_contained(), "m = {m}");
            assert_eq!(decision.trace.decided_by(), Some("counting-refuter"));
        }
        // The stage-mix workload is deterministic and repeats every base pair.
        let (a, b) = (stage_mix_workload(3, 5), stage_mix_workload(3, 5));
        assert_eq!(a.len(), 6 * 3);
        for ((a1, a2), (b1, b2)) in a.iter().zip(&b) {
            assert_eq!((a1, a2), (b1, b2));
        }
    }

    #[test]
    fn engine_workload_repeats_each_base_pair() {
        let workload = engine_workload(4, 2);
        assert_eq!(workload.len(), 5 * 4);
        // No two requests share variable names with equal spelling AND equal
        // atom order for the repeated pairs (they are distinct isomorphic
        // copies); we spot-check that at least the spellings vary.
        let texts: BTreeSet<String> = workload
            .iter()
            .map(|(q1, q2)| format!("{q1} ; {q2}"))
            .collect();
        assert!(texts.len() > 5, "shuffled copies must not be identical");
    }
}
