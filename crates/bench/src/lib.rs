//! Workload generators shared by the benchmark harness.
//!
//! The paper has no empirical tables (it is a PODS theory paper), so the
//! benchmark suite regenerates the *algorithmic* experiments catalogued in
//! EXPERIMENTS.md: scaling of the Theorem 3.1 decision procedure, of the
//! Shannon-cone LP prover, of homomorphism counting (backtracking vs.
//! junction-tree DP), of the exact simplex, of witness extraction, and of the
//! Lemma 3.7 normalization.  This crate holds the deterministic workload
//! generators those benchmarks (and some stress tests) share.

use bqc_arith::{int, Rational};
use bqc_entropy::{all_masks, SetFunction};
use bqc_relational::{Atom, ConjunctiveQuery, Structure, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed cycle `R(0,1), R(1,2), …, R(n−1,0)` as a Boolean query.
pub fn cycle_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 2);
    let atoms = (0..n)
        .map(|i| Atom::new("R", [format!("x{i}"), format!("x{}", (i + 1) % n)]))
        .collect();
    ConjunctiveQuery::boolean(format!("cycle{n}"), atoms).expect("valid cycle query")
}

/// A directed path `R(0,1), …, R(n−1,n)` as a Boolean query (acyclic, chordal,
/// simple junction tree).
pub fn path_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| Atom::new("R", [format!("y{i}"), format!("y{}", i + 1)]))
        .collect();
    ConjunctiveQuery::boolean(format!("path{n}"), atoms).expect("valid path query")
}

/// An out-star `R(c,1), …, R(c,n)` as a Boolean query.
pub fn star_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| Atom::new("R", ["c".to_string(), format!("l{i}")]))
        .collect();
    ConjunctiveQuery::boolean(format!("star{n}"), atoms).expect("valid star query")
}

/// A random directed graph database with `vertices` vertices and `edges`
/// (not necessarily distinct) edges, deterministic in `seed`.
pub fn random_graph(vertices: i64, edges: usize, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Structure::empty();
    for _ in 0..edges {
        let a = rng.gen_range(0..vertices);
        let b = rng.gen_range(0..vertices);
        db.add_fact("R", vec![Value::int(a), Value::int(b)]);
    }
    db
}

/// A random exact polymatroid over `n` named variables, built as a random
/// non-negative combination of step functions (hence normal, hence a
/// polymatroid), deterministic in `seed`.
pub fn random_normal_polymatroid(n: usize, seed: u64) -> SetFunction {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let mut h = SetFunction::zero(vars.clone());
    let full = h.full_mask();
    let mut result = SetFunction::zero(vars.clone());
    for w in all_masks(n) {
        if w == full {
            continue;
        }
        let coeff = int(rng.gen_range(0..4));
        if coeff.is_zero() {
            continue;
        }
        let step = bqc_entropy::step_function(vars.clone(), w).scale(&coeff);
        result = result.add(&step);
    }
    // Ensure the function is not identically zero.
    if result.value(full).is_zero() {
        result = result.add(&bqc_entropy::step_function(vars, 0));
    }
    h = result;
    h
}

/// A random (generally non-normal) exact polymatroid: the minimum of a random
/// modular function and a constant cap, `h(X) = min(Σ_{i∈X} w_i, cap)` — a
/// rank function of a (weighted) uniform-matroid-like structure.
pub fn random_capped_polymatroid(n: usize, seed: u64) -> SetFunction {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..n).map(|i| format!("V{i}")).collect();
    let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(1..4)).collect();
    let cap: i64 = rng.gen_range(2..2 + weights.iter().sum::<i64>().max(2));
    let mut h = SetFunction::zero(vars);
    for mask in all_masks(n) {
        let total: i64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| weights[i])
            .sum();
        h.set_value(mask, Rational::from(total.min(cap)));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_entropy::{is_normal, is_polymatroid};

    #[test]
    fn generators_produce_valid_objects() {
        assert_eq!(cycle_query(3).num_vars(), 3);
        assert_eq!(path_query(3).num_vars(), 4);
        assert_eq!(star_query(4).num_vars(), 5);
        assert_eq!(random_graph(5, 10, 1).vocabulary().arity_of("R"), Some(2));
        for seed in 0..5 {
            let normal = random_normal_polymatroid(4, seed);
            assert!(is_polymatroid(&normal));
            assert!(is_normal(&normal));
            let capped = random_capped_polymatroid(4, seed);
            assert!(is_polymatroid(&capped));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_graph(6, 12, 7), random_graph(6, 12, 7));
        assert_eq!(
            random_normal_polymatroid(3, 9),
            random_normal_polymatroid(3, 9)
        );
    }
}
