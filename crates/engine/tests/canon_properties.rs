//! Property tests (vendored proptest) for query canonicalization.
//!
//! The contract under test: canonical forms and hashes are *invariant* under
//! variable renaming and atom reordering (every isomorphic copy of a query
//! produces byte-identical output), and *discriminating* across the
//! structurally distinct workload generators (cycles, paths, stars of
//! different sizes never share a canonical form).

use bqc_bench::{cycle_query, path_query, rename_shuffle, star_query};
use bqc_engine::{canonicalize, canonicalize_pair};
use bqc_relational::{Atom, ConjunctiveQuery};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random conjunctive query, deterministic in `seed`: up to `max_atoms`
/// atoms over up to `max_vars` variables drawn from a 3-relation vocabulary
/// of mixed arities, with a random (possibly empty) head.
fn random_query(max_vars: usize, max_atoms: usize, seed: u64) -> ConjunctiveQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..max_vars + 1);
    let atom_count = rng.gen_range(1..max_atoms + 1);
    let relations: [(&str, usize); 3] = [("R", 2), ("S", 2), ("T", 3)];
    let atoms: Vec<Atom> = (0..atom_count)
        .map(|_| {
            let (relation, arity) = relations[rng.gen_range(0..relations.len())];
            let args: Vec<String> = (0..arity)
                .map(|_| format!("x{}", rng.gen_range(0..n)))
                .collect();
            Atom::new(relation, args)
        })
        .collect();
    // A random subset of the occurring variables becomes the head.
    let occurring: Vec<String> = {
        let mut vs: Vec<String> = atoms.iter().flat_map(|a| a.args.clone()).collect();
        vs.sort();
        vs.dedup();
        vs
    };
    let head: Vec<String> = occurring
        .iter()
        .filter(|_| rng.gen_range(0..4usize) == 0)
        .cloned()
        .collect();
    ConjunctiveQuery::new("Q", head, atoms).expect("head vars occur in body")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Isomorphic copies (random variable permutation + atom shuffle)
    /// canonicalize to byte-identical forms and equal hashes.
    #[test]
    fn canonical_form_is_renaming_invariant(
        seed in 0u64..10_000,
        shuffle_seed in 0u64..10_000,
    ) {
        let query = random_query(6, 7, seed);
        let copy = rename_shuffle(&query, shuffle_seed);
        let canon_q = canonicalize(&query);
        let canon_c = canonicalize(&copy);
        prop_assert_eq!(&canon_q.text, &canon_c.text);
        prop_assert_eq!(canon_q.hash, canon_c.hash);
        // The canonical representative is itself a fixed point.
        let canon_r = canonicalize(&canon_q.query);
        prop_assert_eq!(&canon_r.text, &canon_q.text);
    }

    /// Pair canonicalization is invariant when both sides are independently
    /// renamed and reordered.
    #[test]
    fn pair_hash_is_renaming_invariant(
        seed in 0u64..10_000,
        s1 in 0u64..10_000,
        s2 in 0u64..10_000,
    ) {
        let q1 = random_query(5, 5, seed);
        let q2 = random_query(5, 5, seed.wrapping_add(77));
        let original = canonicalize_pair(&q1, &q2);
        let renamed = canonicalize_pair(&rename_shuffle(&q1, s1), &rename_shuffle(&q2, s2));
        prop_assert_eq!(original.hash, renamed.hash);
        prop_assert_eq!(&original.q1.text, &renamed.q1.text);
        prop_assert_eq!(&original.q2.text, &renamed.q2.text);
    }

    /// Structurally distinct generator outputs never collide on canonical
    /// form — cycles vs. paths vs. stars, across sizes.
    #[test]
    fn distinct_generators_do_not_collide(
        n in 2usize..7,
        m in 2usize..7,
        shuffle_seed in 0u64..10_000,
    ) {
        let queries = [
            cycle_query(n),
            path_query(n),
            star_query(n),
            cycle_query(m + 7),
            path_query(m + 7),
            star_query(m + 7),
        ];
        let forms: Vec<String> = queries
            .iter()
            .map(|q| canonicalize(&rename_shuffle(q, shuffle_seed)).text)
            .collect();
        for i in 0..forms.len() {
            for j in (i + 1)..forms.len() {
                prop_assert_ne!(&forms[i], &forms[j]);
            }
        }
    }
}
