//! The cache-determinism invariant (ARCHITECTURE.md), end to end:
//! *a cached answer must equal the freshly computed one* — for every request
//! of an acceptance-style workload in which each distinct canonical pair
//! appears ≥ 4 times under shuffled variable names and atom orders.

use bqc_bench::engine_workload;
use bqc_core::{decide_containment_with, DecideOptions};
use bqc_engine::{canonicalize_pair, Engine, EngineOptions, Provenance};

fn engine() -> Engine {
    Engine::new(EngineOptions::default())
}

/// Every answer the engine produces for the workload — whether fresh, deduped
/// in flight, or served from a warm cache on a second pass — equals the
/// answer of a direct, uncached decision-procedure run on the canonical
/// representative of that request.
#[test]
fn cached_and_fresh_answers_agree_on_every_pair() {
    let workload = engine_workload(4, 20260728);
    let engine = engine();
    let first_pass = engine.decide_batch(&workload);
    let second_pass = engine.decide_batch(&workload);
    for (i, (q1, q2)) in workload.iter().enumerate() {
        let pair = canonicalize_pair(q1, q2);
        let fresh =
            decide_containment_with(&pair.q1.query, &pair.q2.query, &DecideOptions::default())
                .expect("workload heads match")
                .summary();
        let batch_answer = first_pass[i].answer.as_ref().expect("workload decides");
        let warm_answer = second_pass[i].answer.as_ref().expect("workload decides");
        assert_eq!(
            *batch_answer, fresh,
            "request {i}: batch answer must equal a fresh computation"
        );
        assert_eq!(
            *warm_answer, fresh,
            "request {i}: cache-served answer must equal a fresh computation"
        );
        assert_eq!(first_pass[i].pair_hash, pair.hash);
    }
    // The second pass must not have recomputed anything.
    assert!(second_pass
        .iter()
        .all(|r| r.provenance != Provenance::Fresh));
}

/// The engine verdicts also agree with the decision procedure run on the
/// *original* (un-canonicalized) spellings: the verdict is a semantic
/// property of the isomorphism class, not of the spelling.
#[test]
fn engine_verdicts_agree_with_direct_decides_on_original_spellings() {
    let workload = engine_workload(4, 7);
    let results = engine().decide_batch(&workload);
    for ((q1, q2), result) in workload.iter().zip(&results) {
        let direct = decide_containment_with(q1, q2, &DecideOptions::default())
            .expect("workload heads match")
            .summary();
        let engine_answer = result.answer.as_ref().expect("workload decides");
        assert_eq!(
            engine_answer.verdict(),
            direct.verdict(),
            "verdict must be spelling-independent for {q1} vs {q2}"
        );
    }
}

/// The trace-determinism invariant, mirrored through the engine: two
/// independent engines deciding the same workload produce identical stage
/// sequences (and notes) for every fresh computation, no matter which worker
/// thread or context history computed it.
#[test]
fn fresh_traces_are_deterministic_across_engines() {
    let workload = engine_workload(3, 31);
    let first: Vec<_> = engine().decide_batch(&workload);
    let second: Vec<_> = engine().decide_batch(&workload);
    let mut compared = 0;
    for (a, b) in first.iter().zip(&second) {
        match (&a.trace, &b.trace) {
            (Some(ta), Some(tb)) => {
                assert_eq!(ta.signature(), tb.signature());
                let notes = |t: &bqc_core::DecisionTrace| -> Vec<Option<String>> {
                    t.reports().iter().map(|r| r.note.clone()).collect()
                };
                assert_eq!(notes(ta), notes(tb));
                compared += 1;
            }
            (None, None) => {}
            other => panic!("trace presence must be deterministic, got {other:?}"),
        }
    }
    assert!(compared > 0, "the workload has fresh computations");
    // Per-stage telemetry is a pure fold of those traces, so the decided /
    // continued / inapplicable counters agree engine-to-engine as well.
}

/// Provenance bookkeeping on the acceptance workload: exactly one Fresh
/// computation per distinct canonical pair, everything else deduped in the
/// first batch; everything cache-served afterwards.
#[test]
fn one_fresh_computation_per_distinct_pair() {
    let repeats = 5;
    let workload = engine_workload(repeats, 99);
    let engine = engine();
    let results = engine.decide_batch(&workload);
    let fresh = results
        .iter()
        .filter(|r| r.provenance == Provenance::Fresh)
        .count();
    let deduped = results
        .iter()
        .filter(|r| r.provenance == Provenance::DedupedInFlight)
        .count();
    let distinct = {
        let mut hashes: Vec<u64> = results.iter().map(|r| r.pair_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes.len()
    };
    assert_eq!(fresh, distinct);
    assert_eq!(deduped, workload.len() - distinct);
    assert_eq!(engine.cache_stats().entries as usize, distinct);

    let warm = engine.decide_batch(&workload);
    assert_eq!(
        warm.iter()
            .filter(|r| r.provenance == Provenance::CachedHit)
            .count(),
        distinct,
        "one cache hit per distinct pair on the warm pass (rest deduped)"
    );
}
