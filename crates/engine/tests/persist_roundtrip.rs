//! Snapshot round-trip and compatibility suite.
//!
//! The contract under test (ARCHITECTURE.md, "The serving layer"): a saved
//! snapshot restores to **byte-identical** cached verdicts — same keys, same
//! `AnswerSummary` values, same hit behavior — and every damaged or
//! incompatible snapshot is *refused* (never half-parsed) and quarantined
//! rather than crashing the process.  Plus the end-to-end restart property:
//! an engine restored from another engine's snapshot answers the first
//! engine's traffic entirely from cache.

use bqc_core::{AnswerSummary, Obstruction};
use bqc_engine::{
    decode_snapshot, encode_snapshot, load_or_quarantine, parse_workload, Engine, EngineOptions,
    LoadOutcome, Provenance, Snapshot, SnapshotEntry, SnapshotError, SnapshotLoad, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh per-test temp path (the suite runs tests in parallel).
fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bqc-persist-{}-{tag}-{n}.snap", std::process::id()))
}

/// All five distinct `AnswerSummary` values, indexed.
fn summary(index: usize) -> AnswerSummary {
    match index % 5 {
        0 => AnswerSummary::Contained,
        1 => AnswerSummary::NotContained {
            witness_verified: false,
        },
        2 => AnswerSummary::NotContained {
            witness_verified: true,
        },
        3 => AnswerSummary::Unknown {
            obstruction: Obstruction::NotChordal,
        },
        _ => AnswerSummary::Unknown {
            obstruction: Obstruction::JunctionTreeNotSimple,
        },
    }
}

/// A small exercising workload: containment, refutation with witness, and a
/// canonical repeat (deduped on first contact, cached afterwards).
const WORKLOAD: &str = "\
Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)
Q1() :- R(u,v), R(u,w) ; Q2() :- R(x,y), R(y,z), R(z,x)
Q1() :- R(x,y), S(x,y) ; Q2() :- R(u,v)
Q1() :- R(x,y) ; Q2() :- S(u,v)
";

fn requests() -> Vec<(
    bqc_relational::ConjunctiveQuery,
    bqc_relational::ConjunctiveQuery,
)> {
    parse_workload(WORKLOAD)
        .unwrap()
        .into_iter()
        .map(|e| (e.q1, e.q2))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary entry sets (every verdict kind, arbitrary keys incl.
    /// non-ASCII) and manifests survive encode → decode byte-exactly.
    #[test]
    fn arbitrary_snapshots_round_trip(
        count in 0usize..24,
        key_seed in 0u64..1_000_000,
        size_count in 0usize..4,
    ) {
        let entries: Vec<SnapshotEntry> = (0..count)
            .map(|i| SnapshotEntry {
                // Distinct keys with awkward bytes: pipes, unicode, spaces.
                key: format!("()|R(v{i},v{}) |= Δ{key_seed} #{i}", i + 1),
                summary: summary(i + key_seed as usize),
            })
            .collect();
        let snapshot = Snapshot {
            entries: entries.clone(),
            skeleton_sizes: (0..size_count).map(|i| 3 + i).collect(),
        };
        let decoded = decode_snapshot(&encode_snapshot(&snapshot)).unwrap();
        prop_assert_eq!(decoded.entries.len(), entries.len());
        prop_assert_eq!(&decoded.skeleton_sizes, &snapshot.skeleton_sizes);
        for entry in &entries {
            let found = decoded.entries.iter().find(|e| e.key == entry.key);
            prop_assert_eq!(found.map(|e| e.summary), Some(entry.summary));
        }
    }

    /// Every truncation of a valid snapshot is rejected — no prefix parses.
    #[test]
    fn truncated_snapshots_are_rejected(cut in 0usize..300) {
        let snapshot = Snapshot {
            entries: (0..6).map(|i| SnapshotEntry {
                key: format!("()|R(v0,v{i}) |= ()|S(v0)"),
                summary: summary(i),
            }).collect(),
            skeleton_sizes: vec![5],
        };
        let bytes = encode_snapshot(&snapshot);
        prop_assume!(cut < bytes.len());
        let err = decode_snapshot(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, SnapshotError::Corrupt(_)),
            "truncation at {} must be Corrupt, got {:?}", cut, err
        );
    }

    /// A single flipped bit anywhere in the file is caught by the checksum
    /// (or, for flips inside the trailer itself, by the mismatch against the
    /// body) — decoding never yields a different valid snapshot.
    #[test]
    fn bit_flips_are_rejected(position_seed in 0usize..100_000, bit in 0usize..8) {
        let snapshot = Snapshot {
            entries: (0..4).map(|i| SnapshotEntry {
                key: format!("()|R(v0,v{i}) |= ()|T(v0,v1,v2)"),
                summary: summary(i),
            }).collect(),
            skeleton_sizes: vec![4, 6],
        };
        let mut bytes = encode_snapshot(&snapshot);
        let position = position_seed % bytes.len();
        bytes[position] ^= 1 << bit;
        prop_assert!(
            decode_snapshot(&bytes).is_err(),
            "flip of bit {} at byte {} must not decode", bit, position
        );
    }
}

#[test]
fn version_mismatch_is_refused_not_half_parsed() {
    // Re-checksum a structurally valid file claiming version 99.
    let snapshot = Snapshot {
        entries: vec![SnapshotEntry {
            key: "()|R(v0,v1) |= ()|R(v0,v1)".into(),
            summary: AnswerSummary::Contained,
        }],
        skeleton_sizes: vec![],
    };
    let mut bytes = encode_snapshot(&snapshot);
    let at = SNAPSHOT_MAGIC.len();
    bytes[at..at + 4].copy_from_slice(&99u32.to_le_bytes());
    let len = bytes.len();
    let checksum = bqc_engine::fnv1a(&bytes[..len - 8]);
    bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
    match decode_snapshot(&bytes) {
        Err(SnapshotError::VersionMismatch { found: 99 }) => {}
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    assert_eq!(SNAPSHOT_VERSION, 1, "bump the compatibility tests on rev");
}

#[test]
fn engine_snapshot_restores_byte_identical_summaries_and_hits() {
    let first = Engine::default();
    let requests = requests();
    let original = first.decide_batch(&requests);
    let path = temp_path("roundtrip");
    let saved = first.save_snapshot(&path).unwrap();
    assert_eq!(saved.entries as u64, first.cache_stats().entries);
    assert!(saved.bytes > 0);

    // A brand-new engine ("restarted server") restores the snapshot.
    let second = Engine::default();
    match second.load_snapshot(&path) {
        SnapshotLoad::Restored { entries, .. } => assert_eq!(entries, saved.entries),
        other => panic!("expected Restored, got {other:?}"),
    }
    let replayed = second.decide_batch(&requests);
    for (old, new) in original.iter().zip(&replayed) {
        // Byte-identical verdicts: AnswerSummary is Copy + Eq, so equality
        // here is exactly value identity.
        assert_eq!(
            old.answer.as_ref().unwrap(),
            new.answer.as_ref().unwrap(),
            "restored summary must equal the originally computed one"
        );
        assert_eq!(old.pair_hash, new.pair_hash);
        assert_eq!(
            new.provenance,
            Provenance::CachedHit,
            "every previously-seen pair must be answered from the restored cache"
        );
    }
    // The restored hits landed in the restored bucket, not hits or misses —
    // and no fresh pipeline work happened at all.
    let stats = second.cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.restored_hits, saved.entries as u64);
    assert_eq!(stats.restored, saved.entries as u64);
    assert_eq!(second.pipeline_stats().len(), 0, "no fresh decisions ran");
    assert_eq!(
        second.short_circuit_stats().restored,
        saved.entries as u64,
        "telemetry counts restored serves in their own bucket"
    );
    // A fresh recomputation of one pair clears its restored mark.
    let (q1, q2) = &requests[0];
    second.clear_cache();
    second.decide(q1, q2).unwrap();
    second.decide(q1, q2).unwrap();
    assert_eq!(second.cache_stats().hits, 1, "now a plain warm hit");
    std::fs::remove_file(&path).ok();
}

#[test]
fn skeleton_manifest_rebuilds_warm_skeletons() {
    // A 5-variable pair forces a skeleton build (above the eager cutoff);
    // the counting refuter is off so the LP path actually runs.
    let requests: Vec<_> = parse_workload(
        "Q1() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1) ; Q2() :- R(y1,y2), R(y1,y3)",
    )
    .unwrap()
    .into_iter()
    .map(|e| (e.q1, e.q2))
    .collect();
    let opts = EngineOptions {
        workers: 1,
        decide: bqc_core::DecideOptions {
            counting_refuter: false,
            ..bqc_core::DecideOptions::default()
        },
        ..EngineOptions::default()
    };
    let first = Engine::new(opts.clone());
    first.decide_batch(&requests);
    assert!(!first.skeletons().is_empty());
    let path = temp_path("skeletons");
    first.save_snapshot(&path).unwrap();

    let second = Engine::new(opts);
    assert!(second.skeletons().is_empty());
    second.load_snapshot(&path);
    assert_eq!(
        second.skeletons().sizes(),
        first.skeletons().sizes(),
        "manifest rebuilds exactly the predecessor's warm skeletons"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_snapshot_is_quarantined_and_engine_starts_cold() {
    let path = temp_path("quarantine");
    let first = Engine::default();
    let requests = requests();
    first.decide_batch(&requests);
    first.save_snapshot(&path).unwrap();
    // Flip a byte in the middle of the file on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let second = Engine::default();
    let quarantined_to = match second.load_snapshot(&path) {
        SnapshotLoad::Quarantined {
            error,
            quarantined_to,
        } => {
            assert!(matches!(error, SnapshotError::Corrupt(_)));
            quarantined_to.expect("rename succeeded")
        }
        other => panic!("expected Quarantined, got {other:?}"),
    };
    // The bad file moved aside; the original path is free for the next save.
    assert!(!path.exists());
    assert!(quarantined_to.exists());
    assert!(quarantined_to.to_string_lossy().ends_with(".corrupt"));
    // The engine runs cold without crashing …
    let results = second.decide_batch(&requests);
    assert!(results
        .iter()
        .all(|r| r.provenance != Provenance::CachedHit));
    assert_eq!(second.cache_stats().restored, 0);
    // … and its next save is not blocked by the quarantined file.
    second.save_snapshot(&path).unwrap();
    match Engine::default().load_snapshot(&path) {
        SnapshotLoad::Restored { .. } => {}
        other => panic!("post-quarantine save must load cleanly, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&quarantined_to).ok();
}

#[test]
fn missing_snapshot_is_a_cold_start() {
    let engine = Engine::default();
    let path = temp_path("missing");
    match engine.load_snapshot(&path) {
        SnapshotLoad::ColdStart => {}
        other => panic!("expected ColdStart, got {other:?}"),
    }
    assert!(matches!(load_or_quarantine(&path), LoadOutcome::Missing));
}

#[test]
fn snapshots_are_content_deterministic_across_engines() {
    // Two engines that computed the same decisions (in different orders)
    // write byte-identical snapshot files.
    let requests = requests();
    let a = Engine::default();
    a.decide_batch(&requests);
    let b = Engine::default();
    let mut reversed = requests.clone();
    reversed.reverse();
    b.decide_batch(&reversed);
    let pa = temp_path("det-a");
    let pb = temp_path("det-b");
    a.save_snapshot(&pa).unwrap();
    b.save_snapshot(&pb).unwrap();
    assert_eq!(
        std::fs::read(&pa).unwrap(),
        std::fs::read(&pb).unwrap(),
        "snapshot bytes are a function of the cached decisions alone"
    );
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
}
