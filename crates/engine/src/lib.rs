#![warn(missing_docs)]
//! # bqc-engine — a concurrent, caching batch containment engine
//!
//! The rest of the workspace proves Theorems 2.7/3.1/6.1 one query pair at a
//! time through [`bqc_core::decide_containment`].  This crate turns that
//! decision procedure into a *serving subsystem* that amortizes work across
//! requests, exploiting the fact that real containment workloads are highly
//! repetitive — the same pair re-asked modulo variable renaming and atom
//! reordering — while each individual decision solves an exact LP with
//! exponentially many columns:
//!
//! * [`canon`] — canonical forms of conjunctive queries modulo variable
//!   renaming and atom reordering (iterative refinement with a backtracking
//!   individualization search, transposition-automorphism pruning), plus
//!   stable 64-bit FNV-1a hashes for queries and `(Q1, Q2)` pairs;
//! * [`cache`] — a sharded, LRU-bounded decision cache storing
//!   [`bqc_core::AnswerSummary`] values, with hit/miss/eviction counters and
//!   a canonical-text collision guard;
//! * [`engine`] — [`Engine::decide_batch`]: canonicalize, dedup, serve
//!   repeats from cache, and fan the remaining distinct pairs out over a
//!   `std::thread::scope` worker pool, reporting per-request provenance
//!   ([`Provenance::Fresh`] / [`Provenance::CachedHit`] /
//!   [`Provenance::DedupedInFlight`]) and timing;
//! * [`workload`] — the textual workload format consumed by the `bqc` CLI
//!   (one `Q1 … ; Q2 …` question per line) and a small JSON string escaper
//!   for the machine-readable report;
//! * [`persist`] — durable snapshots of the decision cache: a versioned,
//!   length-prefixed, checksummed binary format (written atomically, loaded
//!   with a corrupt-file quarantine path) serializing every canonical key +
//!   [`bqc_core::AnswerSummary`] pair plus a warm-state manifest of built
//!   cone skeletons, so a restarted `bqc serve` answers its steady-state
//!   traffic from byte-identical cached verdicts
//!   ([`Engine::save_snapshot`] / [`Engine::load_snapshot`]);
//! * [`corpus`] — the adversarial corpus format: workload files whose
//!   `# EXPECT:` / `# WITNESS:` directive comments pin each question to the
//!   verdict it must produce (and, for refutations, a separating database);
//!   parsed by the corpus runner in `cargo test` and written back out by
//!   `bqc fuzz` repro minimization;
//! * [`telemetry`] — per-stage aggregate counters
//!   ([`telemetry::PipelineTelemetry`]) folded from the
//!   [`bqc_core::DecisionTrace`] of every fresh decision, answering "which
//!   pipeline stage decides how much of the traffic, at what cost" for a
//!   whole serving deployment, with cache hits and in-flight dedups tallied
//!   in a distinct short-circuited bucket
//!   ([`telemetry::ShortCircuitStats`]) so stage fractions can be reported
//!   against total traffic; fresh [`BatchResult`]s also carry their
//!   individual trace for `bqc --explain` / `--json`.
//!
//! The cache, the batch executor and the telemetry also feed the
//! workspace-wide `bqc-obs` registry (per-shard
//! `bqc_engine_cache_*_total{shard="i"}` counters, provenance totals, batch
//! and per-decision latency histograms, and `decide-batch` / `decide` spans)
//! for export via `bqc --metrics` / `--trace-out`.
//!
//! **Cache determinism invariant** (see ARCHITECTURE.md): a cached answer is
//! byte-identical to the answer a fresh computation would produce, because
//! the engine always runs the decision procedure on the *canonical
//! representative* of a pair — every spelling of the pair maps to the same
//! input — and the procedure itself is deterministic.
//!
//! ## Quickstart
//!
//! ```
//! use bqc_engine::{Engine, Provenance};
//! use bqc_relational::parse_query;
//!
//! let engine = Engine::default();
//! let batch = vec![
//!     (
//!         parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap(),
//!         parse_query("Q2() :- R(u,v), R(u,w)").unwrap(),
//!     ),
//!     // The same question, renamed and reordered: deduplicated in flight.
//!     (
//!         parse_query("A() :- R(c,a), R(a,b), R(b,c)").unwrap(),
//!         parse_query("B() :- R(h,k), R(h,j)").unwrap(),
//!     ),
//! ];
//! let results = engine.decide_batch(&batch);
//! assert!(results[0].answer.as_ref().unwrap().is_contained());
//! assert_eq!(results[1].provenance, Provenance::DedupedInFlight);
//! ```

pub mod cache;
pub mod canon;
pub mod corpus;
pub mod engine;
pub mod persist;
pub mod telemetry;
pub mod workload;

pub use cache::{CacheHit, CacheStats, DecisionCache};
pub use canon::{canonicalize, canonicalize_pair, fnv1a, CanonicalPair, CanonicalQuery};
pub use corpus::{parse_corpus, render_case, CorpusCase, CorpusError, ExpectedVerdict};
pub use engine::{
    BatchResult, Engine, EngineOptions, FaultStats, Provenance, SnapshotLoad, SnapshotSaved,
};
pub use persist::{
    decode_snapshot, encode_snapshot, load_or_quarantine, read_snapshot_file, write_snapshot_file,
    LoadOutcome, Snapshot, SnapshotEntry, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use telemetry::{PipelineTelemetry, ShortCircuitStats, StageStats};
pub use workload::{
    json_escape, parse_workload, parse_workload_line, WorkloadEntry, WorkloadError,
};
