//! Canonical forms of conjunctive queries modulo variable renaming and atom
//! reordering.
//!
//! Two queries that differ only in variable names and in the order of their
//! body atoms are the same query for every semantic purpose in this
//! workspace — the decision procedure, homomorphism counts and witnesses are
//! all invariant under such relabelings.  A serving engine wants to detect
//! that equivalence in microseconds so it can answer the repeat from cache
//! instead of re-running an exponential decision procedure.
//!
//! [`canonicalize`] computes a *canonical form*: a renaming of the query's
//! variables to `v0, v1, …` such that the renamed, atom-sorted query is
//! lexicographically minimal over all renamings.  The search is the classic
//! individualization–refinement scheme:
//!
//! 1. **Iterative refinement** partitions variables by invariant signatures
//!    (head positions, then `(relation, position, argument colors)`
//!    occurrence multisets), iterated to a fixed point;
//! 2. when a color class still holds several variables, the search
//!    **backtracks**: each member is tentatively assigned the next canonical
//!    index, refinement resumes, and the lexicographically smallest complete
//!    rendering wins;
//! 3. branches are pruned when swapping the candidate with an
//!    already-explored one is a **transposition automorphism** of the query —
//!    which collapses the factorial blow-up on highly symmetric queries
//!    (stars, cliques of identical atoms) to a single branch per level.
//!
//! Every choice made by the search (class order, candidate pruning) depends
//! only on renaming-invariant data, so the resulting canonical form — and the
//! 64-bit FNV-1a [`CanonicalQuery::hash`] derived from it — is identical for
//! every member of an isomorphism class.  The query *name* is cosmetic and
//! excluded from the form.

use bqc_relational::{Atom, ConjunctiveQuery};

/// A query in canonical form, with its canonical text and stable hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalQuery {
    /// The canonical representative: variables renamed to `v0, v1, …` in
    /// canonical order, atoms sorted.  Semantically equivalent to the input
    /// (for containment purposes) and byte-identical across the whole
    /// isomorphism class of the input.
    pub query: ConjunctiveQuery,
    /// The canonical rendering, e.g. `(v0,v1)|R(v0,v1)|S(v1,v2)`.
    pub text: String,
    /// 64-bit FNV-1a hash of [`text`](CanonicalQuery::text).  Stable across
    /// processes and platforms (no `DefaultHasher` seeding involved).
    pub hash: u64,
}

/// A canonicalized `(Q1, Q2)` request, the unit the decision cache keys on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalPair {
    /// Canonical form of the contained-candidate query.
    pub q1: CanonicalQuery,
    /// Canonical form of the containing-candidate query.
    pub q2: CanonicalQuery,
    /// The joined canonical text `{q1.text} |= {q2.text}` — exactly the byte
    /// string [`hash`](CanonicalPair::hash) is computed from.  Two requests
    /// are the same containment question iff their keys are equal; the engine
    /// dedups on it and the cache stores it as its collision guard.
    pub key: String,
    /// 64-bit FNV-1a hash of [`key`](CanonicalPair::key), order-sensitive
    /// (`Q1 ⊑ Q2` and `Q2 ⊑ Q1` are different questions).
    pub hash: u64,
}

/// Computes the canonical form of a query.  See the module docs for the
/// algorithm and its invariance guarantee.
pub fn canonicalize(query: &ConjunctiveQuery) -> CanonicalQuery {
    let indexed = IndexedQuery::from_query(query);
    let rendering = indexed.minimal_rendering();
    let (text, canonical) = rendering.into_query();
    let hash = fnv1a(text.as_bytes());
    CanonicalQuery {
        query: canonical,
        text,
        hash,
    }
}

/// Canonicalizes a `(Q1, Q2)` containment request.
pub fn canonicalize_pair(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> CanonicalPair {
    let q1 = canonicalize(q1);
    let q2 = canonicalize(q2);
    let key = format!("{} |= {}", q1.text, q2.text);
    let hash = fnv1a(key.as_bytes());
    CanonicalPair { q1, q2, key, hash }
}

/// 64-bit FNV-1a.  Chosen over `std`'s `DefaultHasher` because the output
/// must be stable across runs, processes and Rust versions — cache keys and
/// workload reports may be persisted and compared.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Internal representation: variables as dense indices.
// ---------------------------------------------------------------------------

/// The query with variables replaced by dense indices `0..n` (in the
/// original `vars()` order, which is *not* invariant — every invariant-
/// sensitive step below works on colors, never on these raw indices).
struct IndexedQuery {
    head: Vec<usize>,
    /// `(relation, argument variable indices)` per atom.
    atoms: Vec<(String, Vec<usize>)>,
    /// `occurrences[v]` lists `(atom index, position)` pairs where `v` occurs.
    occurrences: Vec<Vec<(usize, usize)>>,
    n: usize,
}

/// A complete canonical rendering: the head as canonical indices and the
/// sorted atom list.  `Ord` is the lexicographic order the search minimizes.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Rendering {
    head: Vec<usize>,
    atoms: Vec<(String, Vec<usize>)>,
}

impl Rendering {
    /// Materializes the canonical text and the canonical representative query.
    fn into_query(self) -> (String, ConjunctiveQuery) {
        let var = |i: &usize| format!("v{i}");
        let mut text = String::new();
        text.push('(');
        for (k, i) in self.head.iter().enumerate() {
            if k > 0 {
                text.push(',');
            }
            text.push_str(&var(i));
        }
        text.push(')');
        for (relation, args) in &self.atoms {
            text.push('|');
            text.push_str(relation);
            text.push('(');
            for (k, i) in args.iter().enumerate() {
                if k > 0 {
                    text.push(',');
                }
                text.push_str(&var(i));
            }
            text.push(')');
        }
        let head: Vec<String> = self.head.iter().map(var).collect();
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .map(|(relation, args)| Atom::new(relation.clone(), args.iter().map(var)))
            .collect();
        let query = ConjunctiveQuery::new("canon", head, atoms)
            .expect("renaming a valid query preserves validity");
        (text, query)
    }
}

impl IndexedQuery {
    fn from_query(query: &ConjunctiveQuery) -> IndexedQuery {
        let vars = query.vars();
        let index_of = |v: &str| vars.iter().position(|w| w == v).expect("var in vars()");
        let head: Vec<usize> = query.head().iter().map(|v| index_of(v)).collect();
        let atoms: Vec<(String, Vec<usize>)> = query
            .atoms()
            .iter()
            .map(|a| {
                (
                    a.relation.clone(),
                    a.args.iter().map(|v| index_of(v)).collect(),
                )
            })
            .collect();
        let mut occurrences = vec![Vec::new(); vars.len()];
        for (ai, (_, args)) in atoms.iter().enumerate() {
            for (pos, &v) in args.iter().enumerate() {
                occurrences[v].push((ai, pos));
            }
        }
        IndexedQuery {
            head,
            atoms,
            occurrences,
            n: vars.len(),
        }
    }

    /// The lexicographically minimal rendering over all canonical orderings
    /// reachable through individualization–refinement.
    fn minimal_rendering(&self) -> Rendering {
        let colors = self.refine(self.initial_colors(), &vec![None; self.n]);
        let mut best: Option<Rendering> = None;
        self.search(colors, vec![None; self.n], 0, &mut best);
        best.expect("search assigns every variable")
    }

    /// Initial colors: rank of `(head positions, sorted (relation, position)
    /// occurrence multiset)`.  Invariant under renaming and atom reordering.
    fn initial_colors(&self) -> Vec<usize> {
        type InitialSig<'a> = (Vec<usize>, Vec<(&'a str, usize)>);
        let sigs: Vec<InitialSig<'_>> = (0..self.n)
            .map(|v| {
                let head_positions: Vec<usize> = self
                    .head
                    .iter()
                    .enumerate()
                    .filter(|&(_, &h)| h == v)
                    .map(|(p, _)| p)
                    .collect();
                let mut occ: Vec<(&str, usize)> = self.occurrences[v]
                    .iter()
                    .map(|&(ai, pos)| (self.atoms[ai].0.as_str(), pos))
                    .collect();
                occ.sort();
                (head_positions, occ)
            })
            .collect();
        rank_signatures(&sigs)
    }

    /// Refines `colors` to a fixed point.  Individualized variables (present
    /// in `assigned`) contribute their assigned canonical index to their
    /// signature, which makes them singletons and propagates the distinction.
    fn refine(&self, mut colors: Vec<usize>, assigned: &[Option<usize>]) -> Vec<usize> {
        // Signature: (assigned index, own color, sorted occurrence
        // descriptors with the full argument color vector of each atom).
        type RefineSig<'a> = (Option<usize>, usize, Vec<(&'a str, usize, Vec<usize>)>);
        loop {
            let class_count = count_distinct(&colors);
            let sigs: Vec<RefineSig<'_>> = (0..self.n)
                .map(|v| {
                    let mut occ: Vec<(&str, usize, Vec<usize>)> = self.occurrences[v]
                        .iter()
                        .map(|&(ai, pos)| {
                            let (relation, args) = &self.atoms[ai];
                            let arg_colors: Vec<usize> = args.iter().map(|&w| colors[w]).collect();
                            (relation.as_str(), pos, arg_colors)
                        })
                        .collect();
                    occ.sort();
                    (assigned[v], colors[v], occ)
                })
                .collect();
            colors = rank_signatures(&sigs);
            // Refinement only ever splits classes; a fixed point is reached
            // when the class count stops growing.
            if count_distinct(&colors) == class_count {
                return colors;
            }
        }
    }

    /// Individualization–refinement search for the minimal rendering.
    fn search(
        &self,
        colors: Vec<usize>,
        assigned: Vec<Option<usize>>,
        next_index: usize,
        best: &mut Option<Rendering>,
    ) {
        if next_index == self.n {
            let perm: Vec<usize> = assigned
                .iter()
                .map(|a| a.expect("complete assignment"))
                .collect();
            let rendering = self.render(&perm);
            if best.as_ref().is_none_or(|b| rendering < *b) {
                *best = Some(rendering);
            }
            return;
        }
        // Target class: the unassigned variables of minimal color.  Colors
        // are invariant ranks, so this selection is invariant.
        let min_color = (0..self.n)
            .filter(|&v| assigned[v].is_none())
            .map(|v| colors[v])
            .min()
            .expect("next_index < n implies an unassigned variable");
        let candidates: Vec<usize> = (0..self.n)
            .filter(|&v| assigned[v].is_none() && colors[v] == min_color)
            .collect();
        let mut tried: Vec<usize> = Vec::new();
        for v in candidates {
            // Pruning: if swapping v with an already-explored candidate is an
            // automorphism, the branch through v yields the same renderings.
            if tried
                .iter()
                .any(|&u| self.transposition_is_automorphism(u, v))
            {
                continue;
            }
            tried.push(v);
            let mut next_assigned = assigned.clone();
            next_assigned[v] = Some(next_index);
            let refined = self.refine(colors.clone(), &next_assigned);
            self.search(refined, next_assigned, next_index + 1, best);
        }
    }

    /// Whether the transposition `(u v)` is an automorphism of the query.
    fn transposition_is_automorphism(&self, u: usize, v: usize) -> bool {
        let swap = |w: usize| {
            if w == u {
                v
            } else if w == v {
                u
            } else {
                w
            }
        };
        if self.head.iter().any(|&h| h == u || h == v) {
            // The head is an ordered tuple; swapping a head variable moves it.
            return false;
        }
        let mut swapped: Vec<(&str, Vec<usize>)> = self
            .atoms
            .iter()
            .map(|(relation, args)| {
                (
                    relation.as_str(),
                    args.iter().map(|&w| swap(w)).collect::<Vec<usize>>(),
                )
            })
            .collect();
        let mut original: Vec<(&str, Vec<usize>)> = self
            .atoms
            .iter()
            .map(|(relation, args)| (relation.as_str(), args.clone()))
            .collect();
        swapped.sort();
        original.sort();
        swapped == original
    }

    /// Renders the query under a complete variable → canonical index map.
    fn render(&self, perm: &[usize]) -> Rendering {
        let head: Vec<usize> = self.head.iter().map(|&v| perm[v]).collect();
        let mut atoms: Vec<(String, Vec<usize>)> = self
            .atoms
            .iter()
            .map(|(relation, args)| {
                (
                    relation.clone(),
                    args.iter().map(|&v| perm[v]).collect::<Vec<usize>>(),
                )
            })
            .collect();
        atoms.sort();
        Rendering { head, atoms }
    }
}

/// Ranks signatures: equal signatures get equal ranks, ranks follow the
/// signatures' own ordering (hence are invariant whenever the signatures are).
fn rank_signatures<S: Ord + Clone>(sigs: &[S]) -> Vec<usize> {
    let mut sorted: Vec<&S> = sigs.iter().collect();
    sorted.sort();
    sorted.dedup();
    sigs.iter()
        .map(|s| sorted.binary_search(&s).expect("signature present"))
        .collect()
}

fn count_distinct(colors: &[usize]) -> usize {
    let mut seen = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;

    fn canon_text(text: &str) -> String {
        canonicalize(&parse_query(text).unwrap()).text
    }

    #[test]
    fn renaming_and_reordering_are_normalized() {
        let variants = [
            "Q() :- R(x,y), S(y,z)",
            "Q() :- S(b,c), R(a,b)",
            "Qx() :- R(u1,u2), S(u2,u3)",
            "Z() :- S(y,x), R(z,y)",
        ];
        let forms: Vec<String> = variants.iter().map(|t| canon_text(t)).collect();
        assert!(
            forms.iter().all(|f| f == &forms[0]),
            "all variants must canonicalize identically: {forms:?}"
        );
    }

    #[test]
    fn head_order_is_significant() {
        let a = canon_text("Q(x,y) :- R(x,y)");
        let b = canon_text("Q(y,x) :- R(x,y)");
        assert_ne!(a, b, "head tuples are ordered");
        // But renaming the whole query still normalizes.
        assert_eq!(a, canon_text("Q(u,w) :- R(u,w)"));
        assert_eq!(b, canon_text("Q(w,u) :- R(u,w)"));
    }

    #[test]
    fn symmetric_queries_canonicalize_fast_and_stably() {
        // An 8-leaf out-star has 8! leaf orderings; transposition pruning
        // must collapse them to one branch per level.
        let atoms: Vec<String> = (0..8).map(|i| format!("R(c,l{i})")).collect();
        let star = format!("Q() :- {}", atoms.join(", "));
        let shuffled =
            "Q() :- R(hub,a), R(hub,z), R(hub,m), R(hub,b), R(hub,q), R(hub,c), R(hub,x), R(hub,d)";
        assert_eq!(canon_text(&star), canon_text(shuffled));
    }

    #[test]
    fn directed_cycles_are_invariant_under_rotation() {
        let a = canon_text("Q() :- R(x1,x2), R(x2,x3), R(x3,x1)");
        let b = canon_text("Q() :- R(b,c), R(c,a), R(a,b)");
        assert_eq!(a, b);
        // The triangle and the 2-star are different queries.
        assert_ne!(a, canon_text("Q() :- R(y1,y2), R(y1,y3)"));
    }

    #[test]
    fn self_loops_and_repeated_variables_are_distinguished() {
        let loop_q = canon_text("Q() :- R(x,x)");
        let edge_q = canon_text("Q() :- R(x,y)");
        assert_ne!(loop_q, edge_q);
        assert_eq!(loop_q, canon_text("Q() :- R(w,w)"));
    }

    #[test]
    fn refinement_equivalent_but_nonisomorphic_queries_differ() {
        // A 6-cycle vs. two disjoint triangles: every variable has the same
        // degree profile, so naive refinement alone cannot separate them —
        // the backtracking search must.
        let six = canon_text("Q() :- R(a,b), R(b,c), R(c,d), R(d,e), R(e,f), R(f,a)");
        let two_triangles = canon_text("Q() :- R(p,q), R(q,r), R(r,p), R(s,t), R(t,u), R(u,s)");
        assert_ne!(six, two_triangles);
        // And each is invariant under its own relabelings.
        assert_eq!(
            six,
            canon_text("Q() :- R(f,a), R(e,f), R(a,b), R(d,e), R(b,c), R(c,d)")
        );
        assert_eq!(
            two_triangles,
            canon_text("Q() :- R(y,z), R(x,y), R(n,l), R(z,x), R(l,m), R(m,n)")
        );
    }

    #[test]
    fn canonical_representative_is_a_valid_equivalent_query() {
        let q = parse_query("Q(x,z) :- R(x,y), S(y,z), T(z,x)").unwrap();
        let canon = canonicalize(&q);
        assert_eq!(canon.query.head().len(), 2);
        assert_eq!(canon.query.atoms().len(), 3);
        // Canonicalizing the representative is a fixed point.
        let again = canonicalize(&canon.query);
        assert_eq!(again.text, canon.text);
        assert_eq!(again.hash, canon.hash);
    }

    #[test]
    fn pair_hash_is_order_sensitive_and_stable() {
        let q1 = parse_query("Q1() :- R(x,y), R(y,z), R(z,x)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v), R(u,w)").unwrap();
        let forward = canonicalize_pair(&q1, &q2);
        let backward = canonicalize_pair(&q2, &q1);
        assert_ne!(forward.hash, backward.hash);
        // Stable across calls (FNV-1a, no per-process seeding).
        assert_eq!(forward.hash, canonicalize_pair(&q1, &q2).hash);
    }

    #[test]
    fn fnv1a_reference_vector() {
        // Well-known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
