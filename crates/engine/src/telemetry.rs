//! Per-stage aggregate telemetry for the serving engine.
//!
//! Every fresh decision the engine computes carries a
//! [`bqc_core::DecisionTrace`]; this module folds those traces into
//! `CacheStats`-style counters — per pipeline stage, how many decisions it
//! decided / continued through / skipped, and the cumulative wall-clock it
//! consumed.  The aggregate answers the capacity-planning questions a
//! serving deployment asks ("what fraction of fresh decisions never reach
//! the LP?", "where do the milliseconds go?") without retaining any
//! per-request data.
//!
//! Cache hits and in-flight dedups never touch the pipeline, but they are
//! still traffic: the accumulator counts them in a distinct
//! **short-circuited** bucket ([`ShortCircuitStats`]), so per-stage
//! fractions can be computed against [`PipelineTelemetry::traffic`] — every
//! decision served — rather than only the fresh decisions the pipeline ran.
//! The per-tier detail (which shard, how many evictions) remains in
//! [`CacheStats`](crate::cache::CacheStats) and the batch provenance
//! counters.

use bqc_core::{DecisionTrace, StageStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregate counters for one pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage name, as reported by the pipeline trace.
    pub stage: &'static str,
    /// Decisions this stage answered.
    pub decided: u64,
    /// Decisions this stage enriched and passed on.
    pub continued: u64,
    /// Decisions for which the stage was inapplicable.
    pub inapplicable: u64,
    /// Cumulative wall-clock microseconds spent in the stage.
    pub micros: u64,
}

impl StageStats {
    fn new(stage: &'static str) -> StageStats {
        StageStats {
            stage,
            ..StageStats::default()
        }
    }

    /// Total times the stage was reached (any status).
    pub fn reached(&self) -> u64 {
        self.decided + self.continued + self.inapplicable
    }
}

/// Decisions served without running the pipeline at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShortCircuitStats {
    /// Answered from a cache entry this process computed.
    pub cached: u64,
    /// Answered from a cache entry restored out of a snapshot — work done by
    /// a *previous* process.  Kept out of `cached` so warm-up accounting
    /// across restarts stays honest.
    pub restored: u64,
    /// Answered by deduplication against an identical in-flight request.
    pub deduped: u64,
}

impl ShortCircuitStats {
    /// Total short-circuited decisions.
    pub fn total(&self) -> u64 {
        self.cached + self.restored + self.deduped
    }
}

/// Thread-safe accumulator of [`StageStats`], ordered by first appearance
/// (which, for the standard pipeline, is the stage execution order), plus
/// the short-circuited bucket for cache-served and deduped decisions.
///
/// The stage lock recovers from poisoning deliberately: a contained panic
/// mid-[`record`](PipelineTelemetry::record) loses at most one trace's rows,
/// which skews an aggregate but carries no correctness weight — telemetry
/// must never take the serving engine down with it.
#[derive(Debug, Default)]
pub struct PipelineTelemetry {
    stages: Mutex<Vec<StageStats>>,
    cached: AtomicU64,
    restored: AtomicU64,
    deduped: AtomicU64,
}

impl PipelineTelemetry {
    /// An empty accumulator.
    pub fn new() -> PipelineTelemetry {
        PipelineTelemetry::default()
    }

    /// Folds one decision trace into the counters.
    pub fn record(&self, trace: &DecisionTrace) {
        let mut stages = self
            .stages
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        for report in trace.reports() {
            let entry = match stages.iter_mut().find(|s| s.stage == report.stage) {
                Some(entry) => entry,
                None => {
                    stages.push(StageStats::new(report.stage));
                    stages.last_mut().expect("just pushed")
                }
            };
            match report.status {
                StageStatus::Decided(_) => entry.decided += 1,
                StageStatus::Continued => entry.continued += 1,
                StageStatus::Inapplicable => entry.inapplicable += 1,
            }
            entry.micros += report.micros;
        }
    }

    /// Point-in-time snapshot of every stage's counters.
    pub fn snapshot(&self) -> Vec<StageStats> {
        self.stages
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// Counts one decision answered from the cache.
    pub fn record_cache_hit(&self) {
        self.cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one decision answered from a snapshot-restored cache entry.
    pub fn record_restored_hit(&self) {
        self.restored.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one decision answered by in-flight deduplication.
    pub fn record_dedup(&self) {
        self.deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// The short-circuited bucket: decisions served without the pipeline.
    pub fn short_circuited(&self) -> ShortCircuitStats {
        ShortCircuitStats {
            cached: self.cached.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (stage rows and the short-circuited bucket),
    /// starting a fresh accounting window.  A serving deployment calls this
    /// after reporting an interval so stage fractions describe recent
    /// traffic rather than since-boot totals.
    pub fn reset(&self) {
        self.stages
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clear();
        self.cached.store(0, Ordering::Relaxed);
        self.restored.store(0, Ordering::Relaxed);
        self.deduped.store(0, Ordering::Relaxed);
    }

    /// Total fresh decisions folded in (every trace has exactly one deciding
    /// stage).
    pub fn decisions(&self) -> u64 {
        self.stages
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .iter()
            .map(|s| s.decided)
            .sum()
    }

    /// Total decisions served — fresh pipeline runs plus short-circuited —
    /// the denominator stage fractions should be computed against.
    pub fn traffic(&self) -> u64 {
        self.decisions() + self.short_circuited().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_core::{decide_containment_traced, DecideContext, DecideOptions};
    use bqc_relational::parse_query;

    #[test]
    fn traces_fold_into_ordered_stage_counters() {
        let telemetry = PipelineTelemetry::new();
        let mut ctx = DecideContext::new();
        let options = DecideOptions::default();
        let pairs = [
            ("Q1() :- R(x,y)", "Q2() :- S(u,v)"), // hom-existence decides
            ("Q() :- R(x,y)", "Q() :- R(x,y)"),   // identity shortcut decides
            (
                "Q1() :- R(x1,x2), R(x2,x3), R(x3,x1)",
                "Q2() :- R(y1,y2), R(y1,y3)",
            ), // shannon-lp decides
        ];
        for (t1, t2) in pairs {
            let q1 = parse_query(t1).unwrap();
            let q2 = parse_query(t2).unwrap();
            let decision = decide_containment_traced(&mut ctx, &q1, &q2, &options).unwrap();
            telemetry.record(&decision.trace);
        }
        assert_eq!(telemetry.decisions(), 3);
        let snapshot = telemetry.snapshot();
        // Stage order is the pipeline order (every trace starts with the
        // Boolean reduction).
        assert_eq!(snapshot[0].stage, "boolean-reduction");
        assert_eq!(snapshot[0].inapplicable, 3, "all pairs are Boolean");
        let by_name = |name: &str| {
            *snapshot
                .iter()
                .find(|s| s.stage == name)
                .unwrap_or_else(|| panic!("stage {name} missing"))
        };
        assert_eq!(by_name("identity-shortcut").decided, 1);
        assert_eq!(by_name("hom-existence").decided, 1);
        assert_eq!(by_name("shannon-lp").decided, 1);
        // The LP stage was only reached by the pair the screens passed on;
        // the identity shortcut is consulted by every decision.
        assert_eq!(by_name("shannon-lp").reached(), 1);
        assert_eq!(by_name("identity-shortcut").reached(), 3);
    }

    #[test]
    fn short_circuited_decisions_count_toward_traffic() {
        let telemetry = PipelineTelemetry::new();
        let mut ctx = DecideContext::new();
        let q1 = parse_query("Q1() :- R(x,y)").unwrap();
        let q2 = parse_query("Q2() :- S(u,v)").unwrap();
        let decision =
            decide_containment_traced(&mut ctx, &q1, &q2, &DecideOptions::default()).unwrap();
        telemetry.record(&decision.trace);
        telemetry.record_cache_hit();
        telemetry.record_cache_hit();
        telemetry.record_restored_hit();
        telemetry.record_dedup();
        assert_eq!(telemetry.decisions(), 1, "only the fresh decision");
        assert_eq!(
            telemetry.short_circuited(),
            ShortCircuitStats {
                cached: 2,
                restored: 1,
                deduped: 1
            }
        );
        assert_eq!(telemetry.traffic(), 5, "stage fractions divide by this");
        telemetry.reset();
        assert_eq!(telemetry.traffic(), 0, "reset opens a fresh window");
        assert!(telemetry.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let telemetry = PipelineTelemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let telemetry = &telemetry;
                scope.spawn(move || {
                    let mut ctx = DecideContext::new();
                    let q1 = parse_query("Q1() :- R(x,y)").unwrap();
                    let q2 = parse_query("Q2() :- S(u,v)").unwrap();
                    for _ in 0..10 {
                        let decision = decide_containment_traced(
                            &mut ctx,
                            &q1,
                            &q2,
                            &DecideOptions::default(),
                        )
                        .unwrap();
                        telemetry.record(&decision.trace);
                    }
                });
            }
        });
        assert_eq!(telemetry.decisions(), 40);
    }
}
