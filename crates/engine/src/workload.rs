//! Workload files: batches of containment questions in textual form.
//!
//! A workload file holds one containment question per line, written as the
//! two queries in the [`bqc_relational::parser`] syntax separated by `;`:
//!
//! ```text
//! # does the triangle query count no more than the 2-star?
//! Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)
//! Q1() :- R(u,v), R(u,w)         ; Q2() :- R(x,y), R(y,z), R(z,x)
//! ```
//!
//! Blank lines are skipped and everything from the first `#` or `%` on a
//! line is a comment — so whole-line comments, trailing comments, and even
//! comments containing `;` are all fine.

use bqc_relational::{parse_query, ConjunctiveQuery, ParseError};
use std::fmt;

/// One parsed request with the line it came from (1-based, for messages).
#[derive(Clone, Debug)]
pub struct WorkloadEntry {
    /// Source line number in the workload text, 1-based.
    pub line: usize,
    /// The contained-candidate query (left of `;`).
    pub q1: ConjunctiveQuery,
    /// The containing-candidate query (right of `;`).
    pub q2: ConjunctiveQuery,
}

/// Errors reading a workload file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// A non-comment line did not contain exactly one `;` separator.
    MissingSeparator {
        /// 1-based line number.
        line: usize,
    },
    /// One of the two queries on a line failed to parse.
    BadQuery {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column *in the original line* where the parser gave
        /// up, when the underlying error is anchored to a position (comment
        /// stripping and the `;` split are accounted for, so the column
        /// points into the line as written in the file).
        column: Option<usize>,
        /// Which side of the `;` failed: `"Q1"` or `"Q2"`.
        side: &'static str,
        /// The underlying parser error.
        error: ParseError,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::MissingSeparator { line } => write!(
                f,
                "line {line}: expected `Q1 … ; Q2 …` (exactly one `;` separating the two queries)"
            ),
            WorkloadError::BadQuery {
                line,
                column,
                side,
                error,
            } => match column {
                Some(column) => {
                    write!(
                        f,
                        "line {line}, column {column}: {side} does not parse: {error}"
                    )
                }
                None => write!(f, "line {line}: {side} does not parse: {error}"),
            },
        }
    }
}

/// Byte offset of subslice `sub` within `raw`.  Both `code` (comment-stripped,
/// trimmed) and the `;`-split sides are genuine subslices of the raw line, so
/// pointer arithmetic recovers where they start in the original text.
fn offset_within(raw: &str, sub: &str) -> usize {
    (sub.as_ptr() as usize).saturating_sub(raw.as_ptr() as usize)
}

impl std::error::Error for WorkloadError {}

/// Parses one line of workload text: `Ok(None)` for blank/comment lines,
/// `Ok(Some(entry))` for a `Q1 … ; Q2 …` question.  `line` is the 1-based
/// line number used in errors; reported columns point into `raw` as given.
/// Shared by [`parse_workload`] and the corpus parser
/// ([`crate::corpus::parse_corpus`]), which layers directive comments on top
/// of this line shape.
pub fn parse_workload_line(raw: &str, line: usize) -> Result<Option<WorkloadEntry>, WorkloadError> {
    // Strip the comment tail before splitting on `;`, so a comment
    // containing a semicolon cannot break the separator count.
    let code = raw
        .split(['#', '%'])
        .next()
        .expect("split yields at least one piece")
        .trim();
    if code.is_empty() {
        return Ok(None);
    }
    let mut sides = code.split(';');
    let (left, right) = match (sides.next(), sides.next(), sides.next()) {
        (Some(l), Some(r), None) => (l, r),
        _ => return Err(WorkloadError::MissingSeparator { line }),
    };
    let q1 = parse_query(left).map_err(|error| WorkloadError::BadQuery {
        line,
        column: error.position().map(|p| offset_within(raw, left) + p + 1),
        side: "Q1",
        error,
    })?;
    let q2 = parse_query(right).map_err(|error| WorkloadError::BadQuery {
        line,
        column: error.position().map(|p| offset_within(raw, right) + p + 1),
        side: "Q2",
        error,
    })?;
    Ok(Some(WorkloadEntry { line, q1, q2 }))
}

/// Parses a workload text into its entries.
pub fn parse_workload(text: &str) -> Result<Vec<WorkloadEntry>, WorkloadError> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(entry) = parse_workload_line(raw, i + 1)? {
            entries.push(entry);
        }
    }
    Ok(entries)
}

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included).  Hand-rolled on purpose: the workspace has no registry access,
/// and the engine's report surface is small enough that a serializer
/// dependency would be all cost.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "\
# a comment
Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w)

% another comment
Q1(a) :- S(a,b) ; Q2(c) :- S(c,c)
";
        let entries = parse_workload(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].line, 2);
        assert_eq!(entries[0].q1.atoms().len(), 3);
        assert_eq!(entries[1].line, 5);
        assert_eq!(entries[1].q2.head().len(), 1);
    }

    #[test]
    fn trailing_comments_may_contain_semicolons() {
        let text = "Q1() :- R(x,y) ; Q2() :- R(u,v) # see also Q3; Q4\n\
                    Q1() :- S(a,b) ; Q2() :- S(c,d) % likewise; really";
        let entries = parse_workload(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].q2.name, "Q2");
        assert_eq!(entries[1].q1.atoms()[0].relation, "S");
    }

    #[test]
    fn missing_separator_is_reported_with_line() {
        let err = parse_workload("Q1() :- R(x,y)").unwrap_err();
        assert_eq!(err, WorkloadError::MissingSeparator { line: 1 });
        let err = parse_workload("Q1() :- R(x,y) ; Q2() :- R(u,v) ; Q3() :- R(a,b)").unwrap_err();
        assert_eq!(err, WorkloadError::MissingSeparator { line: 1 });
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn bad_queries_name_the_side() {
        let err = parse_workload("nonsense ; Q2() :- R(u,v)").unwrap_err();
        match &err {
            WorkloadError::BadQuery { line: 1, side, .. } => assert_eq!(*side, "Q1"),
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_workload("Q1() :- R(x,y) ; nonsense").unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::BadQuery {
                line: 1,
                side: "Q2",
                ..
            }
        ));
    }

    #[test]
    fn bad_query_columns_point_into_the_raw_line() {
        // The stray `?` sits after the `;`, so the reported column must
        // account for everything to its left in the original line.
        let text = "Q1() :- R(x,y) ; Q2() :- R(u,?v)";
        let err = parse_workload(text).unwrap_err();
        match &err {
            WorkloadError::BadQuery {
                line: 1,
                column: Some(col),
                side: "Q2",
                ..
            } => assert_eq!(&text[col - 1..*col], "?"),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("column"));

        // Same for the left side, with leading whitespace in the line.
        let text = "   Q1() :- R(x,?y) ; Q2() :- R(u,v)";
        let err = parse_workload(text).unwrap_err();
        match &err {
            WorkloadError::BadQuery {
                line: 1,
                column: Some(col),
                side: "Q1",
                ..
            } => assert_eq!(&text[col - 1..*col], "?"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unanchored_errors_have_no_column() {
        let err = parse_workload("Q1() :- R(x,y) ; Q2() :- R(u,").unwrap_err();
        match &err {
            WorkloadError::BadQuery {
                line: 1,
                column: None,
                side: "Q2",
                error: ParseError::UnexpectedEnd,
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
        assert!(!err.to_string().contains("column"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }
}
