//! The batch containment engine: canonicalize → dedup → cache → fan out.
//!
//! [`Engine::decide_batch`] takes a slice of `(Q1, Q2)` requests and answers
//! all of them while computing each *distinct canonical pair* at most once:
//!
//! 1. every request is canonicalized ([`crate::canon`]), collapsing variable
//!    renamings and atom reorderings onto one key;
//! 2. requests sharing a key are deduplicated — the first occurrence becomes
//!    the group leader, later ones are answered from the leader's result with
//!    [`Provenance::DedupedInFlight`];
//! 3. leaders probe the sharded decision cache ([`crate::cache`]); hits are
//!    answered immediately with [`Provenance::CachedHit`];
//! 4. the remaining leaders fan out over a `std::thread::scope` worker pool
//!    (no external dependencies), each running the Theorem 3.1 decision
//!    procedure **on the canonical representative** of its pair, and the
//!    summaries are inserted into the cache.
//!
//! Running the procedure on the canonical representative (rather than on
//! whichever spelling of the pair arrived first) is what makes the cache
//! *deterministic*: every member of an isomorphism class maps to the same
//! input bytes, so the cached summary is byte-identical to what a fresh
//! computation of any member would produce through the engine.

use crate::cache::{CacheStats, DecisionCache};
use crate::canon::{canonicalize_pair, fnv1a, CanonicalPair};
use crate::persist::{LoadOutcome, Snapshot, SnapshotEntry, SnapshotError};
use crate::telemetry::{PipelineTelemetry, ShortCircuitStats, StageStats};
use bqc_core::{
    decide_containment_traced, AnswerSummary, DecideContext, DecideError, DecideOptions,
    DecisionTrace, Obstruction, SkeletonCache,
};
use bqc_obs::{LazyCounter, LazyHistogram};
use bqc_relational::ConjunctiveQuery;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static BATCHES: LazyCounter = LazyCounter::new("bqc_engine_batches_total");
static BATCH_REQUESTS: LazyCounter = LazyCounter::new("bqc_engine_batch_requests_total");
static FRESH_DECISIONS: LazyCounter = LazyCounter::new("bqc_engine_fresh_decisions_total");
static CACHED_HITS: LazyCounter = LazyCounter::new("bqc_engine_cached_hits_total");
static RESTORED_HITS: LazyCounter = LazyCounter::new("bqc_engine_restored_hits_total");
static DEDUPED: LazyCounter = LazyCounter::new("bqc_engine_deduped_total");
static DECIDE_MICROS: LazyHistogram = LazyHistogram::new("bqc_engine_decide_micros");
static BATCH_MICROS: LazyHistogram = LazyHistogram::new("bqc_engine_batch_micros");
static SNAPSHOT_SAVES: LazyCounter = LazyCounter::new("bqc_engine_snapshot_saves_total");
static SNAPSHOT_SAVED_ENTRIES: LazyCounter =
    LazyCounter::new("bqc_engine_snapshot_saved_entries_total");
static SNAPSHOT_RESTORED_ENTRIES: LazyCounter =
    LazyCounter::new("bqc_engine_snapshot_restored_entries_total");
static SNAPSHOT_SAVE_MICROS: LazyHistogram = LazyHistogram::new("bqc_engine_snapshot_save_micros");
static SNAPSHOT_LOAD_MICROS: LazyHistogram = LazyHistogram::new("bqc_engine_snapshot_load_micros");
static PANICS: LazyCounter = LazyCounter::new("bqc_engine_panics_total");
static BUDGET_EXHAUSTED: LazyCounter = LazyCounter::new("bqc_engine_budget_exhausted_total");

/// How a request in a batch obtained its answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The decision procedure ran for this request.
    Fresh,
    /// The answer came from the decision cache.
    CachedHit,
    /// The request is canonically equal to an earlier request in the same
    /// batch and shares its result.
    DedupedInFlight,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Fresh => write!(f, "fresh"),
            Provenance::CachedHit => write!(f, "cached"),
            Provenance::DedupedInFlight => write!(f, "deduped"),
        }
    }
}

/// Per-request result of [`Engine::decide_batch`].
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// The verdict summary, or the error that prevented the decision.
    pub answer: Result<AnswerSummary, DecideError>,
    /// How the answer was obtained.
    pub provenance: Provenance,
    /// Wall time attributable to this request: the decision-procedure run for
    /// `Fresh` requests, (approximately) zero for cache hits and dedups.
    pub micros: u64,
    /// The request's canonical pair hash (shared by all requests the engine
    /// considered equal).
    pub pair_hash: u64,
    /// The decision trace of the pipeline run that produced this answer.
    /// Present exactly on `Fresh` results — cache hits and in-flight dedups
    /// reuse an earlier computation and carry no trace of their own (the
    /// leader's trace describes the shared computation).
    pub trace: Option<DecisionTrace>,
}

/// Tuning knobs for [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// LRU bound per shard; total capacity is `cache_shards × shard_capacity`.
    pub shard_capacity: usize,
    /// Worker threads for batch fan-out.  Capped by the number of distinct
    /// uncached pairs in the batch; `0` means "number of available cores".
    pub workers: usize,
    /// Options forwarded to the decision procedure.
    pub decide: DecideOptions,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            cache_shards: 8,
            shard_capacity: 1024,
            workers: 0,
            decide: DecideOptions::default(),
        }
    }
}

/// A concurrent, caching batch containment engine.  Cheap to share by
/// reference; all methods take `&self`.
pub struct Engine {
    cache: DecisionCache,
    /// Immutable Shannon-cone separation skeletons, shared by every worker
    /// context (and every single decide) this engine spawns: each universe
    /// size is built once per engine, not once per worker or per decision.
    skeletons: SkeletonCache,
    /// Per-stage aggregate counters folded from every fresh decision's
    /// trace.
    telemetry: PipelineTelemetry,
    /// Decision-procedure panics contained by this engine (each one answered
    /// `Err(DecideError::Panicked)` for its own request only).
    panics: AtomicU64,
    /// Fresh budget-exhausted summaries excluded from the cache.
    budget_exhausted: AtomicU64,
    options: EngineOptions,
}

/// Fault-isolation counters: how often this engine degraded instead of
/// failing.  Reported by `bqc serve`'s `!stats` alongside the cache and
/// pipeline rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Panics contained by [`Engine::decide`] / [`Engine::decide_batch`].
    pub panics: u64,
    /// Fresh decisions whose summary was budget-exhausted and therefore not
    /// cached.
    pub budget_exhausted: u64,
}

/// Whether a fresh summary may enter the decision cache.  Budget-exhausted
/// `Unknown`s describe the run's resource limits (and, for deadlines, the
/// wall clock), not the pair, so caching one would hand a degraded answer to
/// a later caller with a bigger budget — violating the cache-determinism
/// invariant.  Every other summary is a pure function of the canonical pair.
fn cacheable(summary: &AnswerSummary) -> bool {
    !matches!(
        summary,
        AnswerSummary::Unknown {
            obstruction: Obstruction::ResourceExhausted { .. }
        }
    )
}

/// Renders a caught panic payload as the human-readable message for
/// [`DecideError::Panicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(options: EngineOptions) -> Engine {
        Engine {
            cache: DecisionCache::new(options.cache_shards, options.shard_capacity),
            skeletons: SkeletonCache::new(),
            telemetry: PipelineTelemetry::new(),
            panics: AtomicU64::new(0),
            budget_exhausted: AtomicU64::new(0),
            options,
        }
    }

    /// Runs the decision procedure on `ctx` with panics contained: a panic
    /// unwinds no further than this call and becomes
    /// [`DecideError::Panicked`] for this one pair.  The caller must treat
    /// `ctx` as tainted after an `Err(Panicked)` — the unwound context may
    /// hold partially mutated warm-start state.
    fn decide_containing_panics(
        &self,
        ctx: &mut DecideContext,
        pair: &CanonicalPair,
    ) -> Result<bqc_core::Decision, DecideError> {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            decide_containment_traced(ctx, &pair.q1.query, &pair.q2.query, &self.options.decide)
        }));
        match attempt {
            Ok(outcome) => outcome,
            Err(payload) => {
                PANICS.inc();
                self.panics.fetch_add(1, Ordering::Relaxed);
                Err(DecideError::Panicked(panic_message(payload)))
            }
        }
    }

    /// Inserts a fresh summary into the cache unless [`cacheable`] excludes
    /// it (budget-exhausted answers are never cached).
    fn absorb_summary(&self, pair: &CanonicalPair, summary: AnswerSummary) {
        if cacheable(&summary) {
            self.cache.insert(pair.hash, &pair.key, summary);
        } else {
            BUDGET_EXHAUSTED.inc();
            self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The effective worker count for a batch with `jobs` uncached distinct
    /// pairs.
    fn worker_count(&self, jobs: usize) -> usize {
        let configured = if self.options.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.options.workers
        };
        configured.clamp(1, jobs.max(1))
    }

    /// Decides a single containment question through the cache.
    pub fn decide(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> Result<AnswerSummary, DecideError> {
        let pair = canonicalize_pair(q1, q2);
        if let Some(hit) = self.cache.probe(pair.hash, &pair.key) {
            if hit.restored {
                RESTORED_HITS.inc();
                self.telemetry.record_restored_hit();
            } else {
                CACHED_HITS.inc();
                self.telemetry.record_cache_hit();
            }
            return Ok(hit.summary);
        }
        // A fresh context per call keeps single decides history-independent;
        // the shared skeletons carry no history (see DecideContext docs).
        let mut ctx = DecideContext::with_skeletons(self.skeletons.clone());
        let start = Instant::now();
        let decide_span = bqc_obs::span_with_arg("decide", "pair", format!("{:016x}", pair.hash));
        let outcome = self.decide_containing_panics(&mut ctx, &pair);
        drop(decide_span);
        // The context is dropped either way, so a contained panic taints
        // nothing beyond this request.
        drop(ctx);
        let decision = outcome?;
        FRESH_DECISIONS.inc();
        DECIDE_MICROS.observe(start.elapsed().as_micros() as u64);
        self.telemetry.record(&decision.trace);
        let summary = decision.answer.summary();
        self.absorb_summary(&pair, summary);
        Ok(summary)
    }

    /// Decides a batch of containment questions, deduplicating canonically
    /// equal requests, serving repeats from the cache, and fanning the
    /// remaining distinct pairs out over a scoped worker pool.  Results are
    /// returned in request order.
    pub fn decide_batch(
        &self,
        requests: &[(ConjunctiveQuery, ConjunctiveQuery)],
    ) -> Vec<BatchResult> {
        let batch_start = Instant::now();
        BATCHES.inc();
        BATCH_REQUESTS.add(requests.len() as u64);
        let batch_span =
            bqc_obs::span_with_arg("decide-batch", "requests", requests.len().to_string());

        // Phase 1: canonicalize every request, in parallel — on a warm batch
        // this is the whole cost, and the backtracking search can be slow on
        // large symmetric queries.
        let workers = self.worker_count(requests.len());
        let canon_span = bqc_obs::span("canonicalize");
        let pairs: Vec<CanonicalPair> =
            parallel_map(requests, workers, |(q1, q2)| canonicalize_pair(q1, q2));
        drop(canon_span);

        // Group by the full canonical key text, NOT by the 64-bit hash: the
        // cache-determinism invariant requires that a hash collision between
        // two distinct questions is never allowed to merge them (the cache
        // layer enforces the same with its stored key text).
        let mut leader_of: HashMap<&str, usize> = HashMap::new();
        let mut leaders: Vec<usize> = Vec::new();
        for (i, pair) in pairs.iter().enumerate() {
            leader_of.entry(pair.key.as_str()).or_insert_with(|| {
                leaders.push(i);
                i
            });
        }

        // Phase 2: leaders probe the cache.
        struct LeaderOutcome {
            answer: Result<AnswerSummary, DecideError>,
            provenance: Provenance,
            micros: u64,
            trace: Option<DecisionTrace>,
        }
        let mut outcomes: HashMap<&str, LeaderOutcome> = HashMap::new();
        let mut jobs: Vec<usize> = Vec::new();
        let probe_span = bqc_obs::span("cache-probe");
        for &i in &leaders {
            let pair = &pairs[i];
            if let Some(hit) = self.cache.probe(pair.hash, &pair.key) {
                if hit.restored {
                    RESTORED_HITS.inc();
                    self.telemetry.record_restored_hit();
                } else {
                    CACHED_HITS.inc();
                    self.telemetry.record_cache_hit();
                }
                outcomes.insert(
                    pair.key.as_str(),
                    LeaderOutcome {
                        answer: Ok(hit.summary),
                        provenance: Provenance::CachedHit,
                        micros: 0,
                        trace: None,
                    },
                );
            } else {
                jobs.push(i);
            }
        }
        drop(probe_span);

        // Phase 3: fan the uncached leaders out over scoped workers.  Each
        // worker carries a DecideContext, so the Shannon-cone LP probes of
        // consecutive jobs on the same worker warm-start from each other's
        // separation state, and all workers draw their immutable cone
        // skeletons from the engine-wide cache.  (The context only shares
        // its prover for witness-free decisions — see the DecideContext docs
        // — so cached summaries never depend on which worker computed them.)
        let workers = self.worker_count(jobs.len());
        let fan_out_span = bqc_obs::span("fan-out");
        let computed = parallel_map_with(
            &jobs,
            workers,
            || DecideContext::with_skeletons(self.skeletons.clone()),
            |ctx, &i| {
                let pair = &pairs[i];
                let start = Instant::now();
                let decide_span =
                    bqc_obs::span_with_arg("decide", "pair", format!("{:016x}", pair.hash));
                let outcome = self.decide_containing_panics(ctx, pair);
                drop(decide_span);
                if matches!(outcome, Err(DecideError::Panicked(_))) {
                    // The unwound context may hold arbitrarily inconsistent
                    // warm-start state; rebuild it before this worker pulls
                    // its next job so one poisoned pair cannot leak into
                    // later decisions.
                    *ctx = DecideContext::with_skeletons(self.skeletons.clone());
                }
                let micros = start.elapsed().as_micros() as u64;
                FRESH_DECISIONS.inc();
                DECIDE_MICROS.observe(micros);
                (outcome, micros)
            },
        );
        drop(fan_out_span);
        for (&i, (outcome, micros)) in jobs.iter().zip(computed) {
            let pair = &pairs[i];
            let (answer, trace) = match outcome {
                Ok(decision) => {
                    self.telemetry.record(&decision.trace);
                    let summary = decision.answer.summary();
                    self.absorb_summary(pair, summary);
                    (Ok(summary), Some(decision.trace))
                }
                Err(error) => (Err(error), None),
            };
            outcomes.insert(
                pair.key.as_str(),
                LeaderOutcome {
                    answer,
                    provenance: Provenance::Fresh,
                    micros,
                    trace,
                },
            );
        }

        // Phase 4: assemble per-request results in request order.
        let results = pairs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let leader = leader_of[pair.key.as_str()];
                let outcome = &outcomes[pair.key.as_str()];
                let provenance = if i == leader {
                    outcome.provenance
                } else {
                    DEDUPED.inc();
                    self.telemetry.record_dedup();
                    Provenance::DedupedInFlight
                };
                BatchResult {
                    answer: outcome.answer.clone(),
                    provenance,
                    micros: if i == leader { outcome.micros } else { 0 },
                    pair_hash: pair.hash,
                    trace: if i == leader {
                        outcome.trace.clone()
                    } else {
                        None
                    },
                }
            })
            .collect();
        drop(batch_span);
        BATCH_MICROS.observe(batch_start.elapsed().as_micros() as u64);
        results
    }

    /// The engine-wide Shannon-cone skeleton cache (exposed for
    /// diagnostics; handing it to external [`DecideContext`]s is safe).
    pub fn skeletons(&self) -> &SkeletonCache {
        &self.skeletons
    }

    /// Snapshot of the decision cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the per-stage pipeline telemetry folded from every fresh
    /// decision this engine computed.  Cache hits and in-flight dedups never
    /// run the pipeline; they are tallied in the short-circuited bucket
    /// ([`Engine::short_circuit_stats`]), so stage fractions can be reported
    /// against total traffic rather than fresh decisions alone.
    pub fn pipeline_stats(&self) -> Vec<StageStats> {
        self.telemetry.snapshot()
    }

    /// Decisions this engine served without running the pipeline: cache hits
    /// (single and batch) and in-flight batch dedups.
    pub fn short_circuit_stats(&self) -> ShortCircuitStats {
        self.telemetry.short_circuited()
    }

    /// Fault-isolation counters: contained panics and cache-excluded
    /// budget-exhausted answers since construction.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            panics: self.panics.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached decision (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Zeroes the cache counters and the pipeline telemetry, opening a
    /// fresh accounting window.  Resident cache entries (and their restored
    /// marks) are untouched, as are the monotonic process-wide `bqc-obs`
    /// counters.
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
        self.telemetry.reset();
    }

    /// A point-in-time [`Snapshot`] of the engine's durable warm state:
    /// every resident cache entry plus the skeleton-size manifest.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .cache
                .export()
                .into_iter()
                .map(|(_, key, summary)| SnapshotEntry { key, summary })
                .collect(),
            skeleton_sizes: self.skeletons.sizes(),
        }
    }

    /// Writes the engine's warm state to `path` atomically (see
    /// [`crate::persist::write_snapshot_file`]).  Returns what was written.
    pub fn save_snapshot(&self, path: &Path) -> std::io::Result<SnapshotSaved> {
        let start = Instant::now();
        let snapshot = self.snapshot();
        let entries = snapshot.entries.len();
        let bytes = crate::persist::write_snapshot_file(path, &snapshot)?;
        SNAPSHOT_SAVES.inc();
        SNAPSHOT_SAVED_ENTRIES.add(entries as u64);
        SNAPSHOT_SAVE_MICROS.observe(start.elapsed().as_micros() as u64);
        Ok(SnapshotSaved { entries, bytes })
    }

    /// Restores a decoded snapshot into the engine: every entry enters the
    /// cache marked *restored* (hits on it count as
    /// [`CacheStats::restored_hits`]), and every manifest skeleton is
    /// rebuilt.  Returns the number of entries restored.  Restoring into a
    /// smaller cache than the one that saved simply lets the LRU bound
    /// evict the overflow.
    pub fn restore_snapshot(&self, snapshot: &Snapshot) -> usize {
        for entry in &snapshot.entries {
            let hash = fnv1a(entry.key.as_bytes());
            self.cache.restore(hash, &entry.key, entry.summary);
        }
        for &size in &snapshot.skeleton_sizes {
            // Skeletons are pure functions of the universe size; rebuilding
            // from the manifest reproduces the predecessor's warm set.
            self.skeletons.get(size);
        }
        SNAPSHOT_RESTORED_ENTRIES.add(snapshot.entries.len() as u64);
        snapshot.entries.len()
    }

    /// Loads the snapshot at `path` with the full degradation ladder: a
    /// valid file is restored, a missing file is a cold start, and a
    /// corrupt or version-mismatched file is quarantined to `<path>.corrupt`
    /// and reported — the engine still starts, cold, either way.
    pub fn load_snapshot(&self, path: &Path) -> SnapshotLoad {
        let start = Instant::now();
        let outcome = crate::persist::load_or_quarantine(path);
        let load = match outcome {
            LoadOutcome::Loaded(snapshot) => SnapshotLoad::Restored {
                entries: self.restore_snapshot(&snapshot),
                skeletons: snapshot.skeleton_sizes.len(),
            },
            LoadOutcome::Missing => SnapshotLoad::ColdStart,
            LoadOutcome::Quarantined {
                error,
                quarantined_to,
            } => SnapshotLoad::Quarantined {
                error,
                quarantined_to,
            },
        };
        SNAPSHOT_LOAD_MICROS.observe(start.elapsed().as_micros() as u64);
        load
    }

    /// The engine's configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }
}

/// What [`Engine::save_snapshot`] wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotSaved {
    /// Cache entries serialized.
    pub entries: usize,
    /// Encoded file size in bytes.
    pub bytes: usize,
}

/// The outcome of [`Engine::load_snapshot`].
#[derive(Debug)]
pub enum SnapshotLoad {
    /// The snapshot was valid; its entries and skeletons are live.
    Restored {
        /// Cache entries restored.
        entries: usize,
        /// Skeletons rebuilt from the warm-state manifest.
        skeletons: usize,
    },
    /// No snapshot file exists: a normal cold start.
    ColdStart,
    /// The snapshot was rejected and renamed aside; the engine starts cold.
    Quarantined {
        /// Why the file was rejected.
        error: SnapshotError,
        /// Where the file was moved, if the rename succeeded.
        quarantined_to: Option<PathBuf>,
    },
}

/// Applies `f` to every item over a `std::thread::scope` worker pool and
/// returns the outputs in item order.  Workers pull the next index from a
/// shared atomic counter, so long-running items don't stall the queue.
fn parallel_map<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    parallel_map_with(items, workers, || (), |(), item| f(item))
}

/// Like [`parallel_map`], but every worker owns a private state created by
/// `init` and threaded through its `f` calls — the engine uses this to give
/// each decision worker a [`DecideContext`] whose LP warm-start cache
/// persists across the jobs that worker happens to pull.
fn parallel_map_with<T: Sync, S, U: Send>(
    items: &[T],
    workers: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> U + Sync,
) -> Vec<U> {
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // A slot poisoned by a panicking `f` still holds `None`
                    // (the lock is only held across the assignment, and `f`
                    // runs before it); recover the guard and overwrite.
                    *slots[i].lock().unwrap_or_else(|poison| poison.into_inner()) =
                        Some(f(&mut state, &items[i]));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    fn small_batch() -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
        vec![
            // Example 4.3 and a renamed, reordered copy of it.
            (
                q("Q1() :- R(x,y), R(y,z), R(z,x)"),
                q("Q2() :- R(u,v), R(u,w)"),
            ),
            (
                q("A() :- R(c,a), R(a,b), R(b,c)"),
                q("B() :- R(h,l2), R(h,l1)"),
            ),
            // The reverse direction.
            (
                q("Q3() :- R(u,v), R(u,w)"),
                q("Q4() :- R(x,y), R(y,z), R(z,x)"),
            ),
        ]
    }

    #[test]
    fn batch_dedups_canonically_equal_requests() {
        let engine = Engine::default();
        let results = engine.decide_batch(&small_batch());
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].provenance, Provenance::Fresh);
        assert_eq!(results[1].provenance, Provenance::DedupedInFlight);
        assert_eq!(results[2].provenance, Provenance::Fresh);
        assert_eq!(results[0].pair_hash, results[1].pair_hash);
        assert_ne!(results[0].pair_hash, results[2].pair_hash);
        assert!(results[0].answer.as_ref().unwrap().is_contained());
        assert!(results[1].answer.as_ref().unwrap().is_contained());
        assert!(results[2].answer.as_ref().unwrap().is_not_contained());
        // Only the two distinct pairs went through the procedure.
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn second_batch_is_served_from_cache() {
        let engine = Engine::default();
        engine.decide_batch(&small_batch());
        let results = engine.decide_batch(&small_batch());
        assert_eq!(results[0].provenance, Provenance::CachedHit);
        assert_eq!(results[1].provenance, Provenance::DedupedInFlight);
        assert_eq!(results[2].provenance, Provenance::CachedHit);
        assert_eq!(engine.cache_stats().hits, 2);
    }

    #[test]
    fn single_decide_caches_and_agrees_across_spellings() {
        let engine = Engine::default();
        let first = engine
            .decide(
                &q("Q1() :- R(x,y), R(y,z), R(z,x)"),
                &q("Q2() :- R(u,v), R(u,w)"),
            )
            .unwrap();
        let second = engine
            .decide(
                &q("Z1() :- R(m,n), R(p,m), R(n,p)"),
                &q("Z2() :- R(a,b), R(a,c)"),
            )
            .unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn errors_are_reported_per_request_and_not_cached() {
        let engine = Engine::default();
        let batch = vec![
            (q("Q1(x) :- R(x,y)"), q("Q2(u,v) :- R(u,v)")),
            (q("Q1() :- R(x,y)"), q("Q2() :- R(u,v)")),
        ];
        let results = engine.decide_batch(&batch);
        assert!(results[0].answer.is_err());
        assert!(results[1].answer.as_ref().unwrap().is_contained());
        assert_eq!(engine.cache_stats().entries, 1);
    }

    #[test]
    fn explicit_worker_counts_work() {
        for workers in [1usize, 2, 7] {
            let engine = Engine::new(EngineOptions {
                workers,
                ..EngineOptions::default()
            });
            let results = engine.decide_batch(&small_batch());
            assert!(results[0].answer.as_ref().unwrap().is_contained());
            assert!(results[2].answer.as_ref().unwrap().is_not_contained());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::default();
        assert!(engine.decide_batch(&[]).is_empty());
    }

    #[test]
    fn traces_ride_on_fresh_results_only() {
        let engine = Engine::default();
        let first = engine.decide_batch(&small_batch());
        // Fresh leaders carry the trace of their pipeline run; the deduped
        // follower shares the answer but not a trace of its own.
        assert!(first[0].trace.is_some());
        assert!(first[1].trace.is_none());
        assert!(first[2].trace.is_some());
        let trace = first[0].trace.as_ref().unwrap();
        assert_eq!(trace.decided_by(), Some("shannon-lp"));
        // Cache hits on a second pass carry no trace either.
        let second = engine.decide_batch(&small_batch());
        assert!(second.iter().all(|r| r.trace.is_none()));
    }

    #[test]
    fn pipeline_stats_aggregate_fresh_decisions() {
        let engine = Engine::default();
        assert!(engine.pipeline_stats().is_empty());
        engine.decide_batch(&small_batch());
        engine.decide_batch(&small_batch()); // all cached: no new traces
        let stats = engine.pipeline_stats();
        let decided: u64 = stats.iter().map(|s| s.decided).sum();
        assert_eq!(decided, 2, "one trace per distinct canonical pair");
        assert_eq!(stats[0].stage, "boolean-reduction");
        let lp = stats
            .iter()
            .find(|s| s.stage == "shannon-lp")
            .expect("LP stage reached");
        // Only the Example 4.3 direction reaches the LP; the reverse is
        // decided by the hom-existence screen.
        assert_eq!(lp.reached(), 1);
        // Single decides through the cache also record traces.
        let engine = Engine::default();
        engine
            .decide(&q("Q1() :- R(x,y)"), &q("Q2() :- S(u,v)"))
            .unwrap();
        let stats = engine.pipeline_stats();
        let screen = stats
            .iter()
            .find(|s| s.stage == "hom-existence")
            .expect("screen reached");
        assert_eq!(screen.decided, 1);
    }

    #[test]
    fn budget_exhausted_answers_are_never_cached() {
        let mut options = EngineOptions::default();
        options.decide.budget.max_pivots = Some(1);
        let engine = Engine::new(options);
        let q1 = q("Q1() :- R(x,y), R(y,z), R(z,x)");
        let q2 = q("Q2() :- R(u,v), R(u,w)");
        // Example 4.3 needs the LP; one pivot is not enough.
        let first = engine.decide(&q1, &q2).unwrap();
        assert!(matches!(
            first,
            AnswerSummary::Unknown {
                obstruction: Obstruction::ResourceExhausted { .. }
            }
        ));
        // The degraded answer must not be resident: re-asking runs the
        // procedure again (and exhausts again) rather than hitting a cache
        // entry that a bigger-budget caller would be poisoned by.
        let second = engine.decide(&q1, &q2).unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits + stats.restored_hits, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!(engine.fault_stats().budget_exhausted, 2);
    }

    #[test]
    fn batch_excludes_budget_exhausted_answers_from_the_cache() {
        let mut options = EngineOptions::default();
        options.decide.budget.max_pivots = Some(1);
        let engine = Engine::new(options);
        let first = engine.decide_batch(&small_batch());
        // Example 4.3 (and its renamed copy) exhausts at the LP; the reverse
        // direction is decided by the hom-existence screen long before any
        // pivots and is cached normally.
        assert!(matches!(
            first[0].answer,
            Ok(AnswerSummary::Unknown {
                obstruction: Obstruction::ResourceExhausted { .. }
            })
        ));
        assert_eq!(first[1].provenance, Provenance::DedupedInFlight);
        assert!(first[2].answer.as_ref().unwrap().is_not_contained());
        assert_eq!(engine.cache_stats().entries, 1, "only the sound verdict");
        assert_eq!(engine.fault_stats().budget_exhausted, 1);
        let second = engine.decide_batch(&small_batch());
        assert_eq!(
            second[0].provenance,
            Provenance::Fresh,
            "degraded answers are re-decided, never replayed"
        );
        assert_eq!(second[2].provenance, Provenance::CachedHit);
    }

    #[test]
    fn unlimited_budget_answers_match_the_default_engine() {
        let engine = Engine::default();
        let mut budgeted_options = EngineOptions::default();
        budgeted_options.decide.budget.max_pivots = Some(1 << 20);
        budgeted_options.decide.budget.max_hom_steps = Some(1 << 20);
        let budgeted = Engine::new(budgeted_options);
        for (q1, q2) in small_batch() {
            assert_eq!(
                engine.decide(&q1, &q2).unwrap(),
                budgeted.decide(&q1, &q2).unwrap(),
                "an ample budget must not change any verdict"
            );
        }
        assert_eq!(budgeted.fault_stats(), FaultStats::default());
    }

    #[test]
    fn workers_share_the_engine_wide_skeleton_cache() {
        // The counting refuter would separate this workload's pairs before
        // any LP work (5-cycle ⋢ 2-star already on a dense random structure);
        // this test is about the LP skeleton cache, so keep the refuter off.
        let engine = Engine::new(EngineOptions {
            workers: 4,
            decide: bqc_core::DecideOptions {
                counting_refuter: false,
                ..bqc_core::DecideOptions::default()
            },
            ..EngineOptions::default()
        });
        assert!(engine.skeletons().is_empty());
        // Five-variable queries: above the prover's small-universe cutoff,
        // so the lazy separation path builds a skeleton.  (The 3-variable
        // batches of the other tests stay entirely on the eager small path.)
        let batch = vec![
            (
                q("Q1() :- R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x5), R(x5,x1)"),
                q("Q2() :- R(y1,y2), R(y1,y3)"),
            ),
            (
                q("A() :- R(a,b), R(b,c), R(c,d), R(d,e), R(e,a)"),
                q("B() :- R(u,v), R(u,w)"),
            ),
        ];
        engine.decide_batch(&batch);
        // One universe size probed; however many workers ran, the engine
        // built its skeleton exactly once.
        let after_batch = engine.skeletons().len();
        assert_eq!(after_batch, 1);
        engine.decide_batch(&batch);
        assert_eq!(engine.skeletons().len(), after_batch);
    }
}
