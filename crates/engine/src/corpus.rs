//! The adversarial corpus format: workload lines with expected verdicts.
//!
//! A corpus file (`examples/corpus/*.bqc`) is a valid workload file — the
//! `bqc` CLI and [`crate::workload::parse_workload`] read it unchanged —
//! whose comments carry *directives* binding each question to the verdict it
//! must produce, mirroring the `regress` layout of SMT solvers (one
//! expectation per case, checked in next to the input):
//!
//! ```text
//! # Example 3.5: normal witness exists, product witness does not.
//! # EXPECT: not-contained
//! # WITNESS: R(0,0). R(0,1). R(1,0).
//! Q1() :- R(x,y), R(y,z) ; Q2() :- R(u,v), R(v,w), R(u,w)
//! ```
//!
//! * `# EXPECT: contained | not-contained | unknown` — required before each
//!   question line; consumed by it.
//! * `# WITNESS: R(0,1). …` — optional, only valid for `not-contained`: a
//!   separating database the corpus runner re-counts independently
//!   (`|Q1(W)| > |Q2(W)|` must hold by explicit evaluation, Fact 3.2).
//! * every other comment is free text; `%` works wherever `#` does.
//!
//! [`render_case`] writes this exact shape back out — it is the emission
//! format of `bqc fuzz --minimize`, so every fuzzer finding lands on disk as
//! a ready-to-check-in corpus case.

use crate::workload::{parse_workload_line, WorkloadEntry, WorkloadError};
use bqc_relational::{parse_structure, ConjunctiveQuery, ParseError, Structure};
use std::fmt;

/// The verdict a corpus case expects from the decision procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// `Q1 ⊑ Q2` must be answered `Contained`.
    Contained,
    /// `Q1 ⋢ Q2` must be answered `NotContained`.
    NotContained,
    /// The instance must be reported `Unknown` (outside the decidable
    /// class); any obstruction is accepted.
    Unknown,
}

impl ExpectedVerdict {
    /// The keyword used in `EXPECT:` directives.
    pub fn keyword(self) -> &'static str {
        match self {
            ExpectedVerdict::Contained => "contained",
            ExpectedVerdict::NotContained => "not-contained",
            ExpectedVerdict::Unknown => "unknown",
        }
    }

    fn from_keyword(word: &str) -> Option<ExpectedVerdict> {
        match word {
            "contained" => Some(ExpectedVerdict::Contained),
            "not-contained" => Some(ExpectedVerdict::NotContained),
            "unknown" => Some(ExpectedVerdict::Unknown),
            _ => None,
        }
    }
}

impl fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One corpus case: a containment question plus its expected verdict and,
/// for refutations, an optional separating database.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// 1-based line of the question line in the corpus text.
    pub line: usize,
    /// The contained-candidate query.
    pub q1: ConjunctiveQuery,
    /// The containing-candidate query.
    pub q2: ConjunctiveQuery,
    /// The verdict the decision procedure must produce.
    pub expect: ExpectedVerdict,
    /// A separating database (`not-contained` only): the runner must verify
    /// `|Q1(W)| > |Q2(W)|` on it by explicit counting.
    pub witness: Option<Structure>,
}

/// Errors reading a corpus file, all carrying a 1-based line and — when the
/// underlying parser anchors one — a 1-based byte column into that line.
#[derive(Clone, Debug)]
pub enum CorpusError {
    /// The workload layer failed (missing `;`, unparseable query); carries
    /// line and column via [`WorkloadError`].
    Workload(WorkloadError),
    /// An `EXPECT:` directive names an unknown verdict.
    BadExpect {
        /// 1-based line number of the directive.
        line: usize,
        /// 1-based byte column of the unknown verdict word.
        column: usize,
        /// What was found instead of a verdict keyword.
        found: String,
    },
    /// A `WITNESS:` database does not parse.
    BadWitness {
        /// 1-based line number of the directive.
        line: usize,
        /// 1-based byte column in the directive line, when anchored.
        column: Option<usize>,
        /// The underlying parser error.
        error: ParseError,
    },
    /// A question line with no preceding `EXPECT:` directive.
    MissingExpect {
        /// 1-based line number of the question line.
        line: usize,
    },
    /// A `WITNESS:` directive for a case not expected `not-contained`, or
    /// with no `EXPECT:` at all.
    WitnessWithoutRefutation {
        /// 1-based line number of the directive.
        line: usize,
    },
    /// An `EXPECT:`/`WITNESS:` directive with no question line after it.
    DanglingDirective {
        /// 1-based line number of the directive.
        line: usize,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Workload(e) => e.fmt(f),
            CorpusError::BadExpect {
                line,
                column,
                found,
            } => write!(
                f,
                "line {line}, column {column}: EXPECT must be one of contained, not-contained, \
                 unknown (found {found:?})"
            ),
            CorpusError::BadWitness {
                line,
                column,
                error,
            } => match column {
                Some(column) => {
                    write!(
                        f,
                        "line {line}, column {column}: WITNESS does not parse: {error}"
                    )
                }
                None => write!(f, "line {line}: WITNESS does not parse: {error}"),
            },
            CorpusError::MissingExpect { line } => write!(
                f,
                "line {line}: question has no preceding `# EXPECT:` directive"
            ),
            CorpusError::WitnessWithoutRefutation { line } => write!(
                f,
                "line {line}: WITNESS is only meaningful for `EXPECT: not-contained` cases"
            ),
            CorpusError::DanglingDirective { line } => {
                write!(
                    f,
                    "line {line}: directive is not followed by a question line"
                )
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<WorkloadError> for CorpusError {
    fn from(e: WorkloadError) -> CorpusError {
        CorpusError::Workload(e)
    }
}

/// Returns the payload of a `KEY:` directive comment: for a line whose
/// comment text (after `#`/`%` and whitespace) starts with `KEY:`, the text
/// after the colon together with its byte offset in `raw`.
fn directive<'a>(raw: &'a str, key: &str) -> Option<(&'a str, usize)> {
    let trimmed = raw.trim_start();
    let body = trimmed.strip_prefix(['#', '%'])?.trim_start();
    let rest = body.strip_prefix(key)?.strip_prefix(':')?;
    let offset = (rest.as_ptr() as usize).saturating_sub(raw.as_ptr() as usize);
    Some((rest, offset))
}

/// Parses a corpus text into its cases.
pub fn parse_corpus(text: &str) -> Result<Vec<CorpusCase>, CorpusError> {
    let mut cases = Vec::new();
    // Pending directives: (line they appeared on, payload).
    let mut expect: Option<(usize, ExpectedVerdict)> = None;
    let mut witness: Option<(usize, Structure)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if let Some((rest, offset)) = directive(raw, "EXPECT") {
            let word = rest.trim();
            let verdict = ExpectedVerdict::from_keyword(word).ok_or_else(|| {
                let column = offset + (rest.len() - rest.trim_start().len()) + 1;
                CorpusError::BadExpect {
                    line,
                    column,
                    found: word.to_string(),
                }
            })?;
            expect = Some((line, verdict));
            continue;
        }
        if let Some((rest, offset)) = directive(raw, "WITNESS") {
            match expect {
                Some((_, ExpectedVerdict::NotContained)) => {}
                _ => return Err(CorpusError::WitnessWithoutRefutation { line }),
            }
            let database = parse_structure(rest).map_err(|error| CorpusError::BadWitness {
                line,
                column: error.position().map(|p| offset + p + 1),
                error,
            })?;
            witness = Some((line, database));
            continue;
        }
        let Some(WorkloadEntry { q1, q2, .. }) = parse_workload_line(raw, line)? else {
            continue;
        };
        let Some((_, verdict)) = expect.take() else {
            return Err(CorpusError::MissingExpect { line });
        };
        cases.push(CorpusCase {
            line,
            q1,
            q2,
            expect: verdict,
            witness: witness.take().map(|(_, db)| db),
        });
    }
    if let Some((line, _)) = witness {
        return Err(CorpusError::DanglingDirective { line });
    }
    if let Some((line, _)) = expect {
        return Err(CorpusError::DanglingDirective { line });
    }
    Ok(cases)
}

/// Renders one case in corpus format, with optional free-text comment lines
/// above the directives (each rendered as a `# …` comment).  Witness
/// databases are first renamed onto an integer domain
/// ([`Structure::with_integer_domain`]) so the output re-parses regardless
/// of the value shapes (tags, pairs) the witness machinery produced; the
/// renaming is injective, so every homomorphism count is preserved.
pub fn render_case(
    comments: &[String],
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    expect: ExpectedVerdict,
    witness: Option<&Structure>,
) -> String {
    let mut out = String::new();
    for comment in comments {
        for line in comment.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("# EXPECT: ");
    out.push_str(expect.keyword());
    out.push('\n');
    if let Some(witness) = witness {
        let flat: Vec<String> = witness
            .with_integer_domain()
            .to_string()
            .lines()
            .map(str::to_string)
            .collect();
        out.push_str("# WITNESS: ");
        out.push_str(&flat.join(" "));
        out.push('\n');
    }
    out.push_str(&format!("{q1} ; {q2}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_relational::parse_query;

    const SAMPLE: &str = "\
# free-text comment
# EXPECT: not-contained
% WITNESS: R(0,0). R(0,1). R(1,0).
Q1() :- R(x,y), R(y,z) ; Q2() :- R(u,v), R(v,w), R(u,w)

# EXPECT: contained
Q1() :- R(x,y), R(y,z), R(z,x) ; Q2() :- R(u,v), R(u,w) # Example 4.3
";

    #[test]
    fn parses_cases_with_directives() {
        let cases = parse_corpus(SAMPLE).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].expect, ExpectedVerdict::NotContained);
        assert_eq!(cases[0].witness.as_ref().unwrap().num_facts("R"), 3);
        assert_eq!(cases[1].expect, ExpectedVerdict::Contained);
        assert!(cases[1].witness.is_none());
        assert_eq!(cases[1].line, 7);
    }

    #[test]
    fn corpus_files_are_valid_workloads() {
        let entries = crate::workload::parse_workload(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn directive_errors_carry_positions() {
        let err =
            parse_corpus("# EXPECT: definitely\nQ1() :- R(x,y) ; Q2() :- R(u,v)\n").unwrap_err();
        match err {
            CorpusError::BadExpect {
                line: 1,
                column,
                ref found,
            } => {
                assert_eq!(found, "definitely");
                assert_eq!(column, 11);
            }
            other => panic!("unexpected error {other:?}"),
        }

        let text = "# EXPECT: not-contained\n# WITNESS: R(0,?).\nQ1() :- R(x,y) ; Q2() :- R(u,v)\n";
        let err = parse_corpus(text).unwrap_err();
        match err {
            CorpusError::BadWitness {
                line: 2,
                column: Some(col),
                ..
            } => {
                let witness_line = text.lines().nth(1).unwrap();
                assert_eq!(&witness_line[col - 1..col], "?");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(
            parse_corpus("Q1() :- R(x,y) ; Q2() :- R(u,v)\n").unwrap_err(),
            CorpusError::MissingExpect { line: 1 }
        ));
        assert!(matches!(
            parse_corpus("# WITNESS: R(0,0).\n").unwrap_err(),
            CorpusError::WitnessWithoutRefutation { line: 1 }
        ));
        assert!(matches!(
            parse_corpus("# EXPECT: contained\n").unwrap_err(),
            CorpusError::DanglingDirective { line: 1 }
        ));
        assert!(matches!(
            parse_corpus(
                "# EXPECT: contained\n# WITNESS: R(0,0).\nQ() :- R(x,y) ; P() :- R(u,v)\n"
            )
            .unwrap_err(),
            CorpusError::WitnessWithoutRefutation { line: 2 }
        ));
        // Workload-level errors pass through with their line/column.
        assert!(matches!(
            parse_corpus("# EXPECT: contained\nQ1() :- R(x,y)\n").unwrap_err(),
            CorpusError::Workload(WorkloadError::MissingSeparator { line: 2 })
        ));
    }

    #[test]
    fn render_round_trips() {
        let q1 = parse_query("Q1() :- R(x,y), R(y,z)").unwrap();
        let q2 = parse_query("Q2() :- R(u,v)").unwrap();
        let mut witness = Structure::empty();
        witness.add_fact(
            "R",
            vec![
                bqc_relational::Value::tagged("c1", bqc_relational::Value::int(0)),
                bqc_relational::Value::tagged("c1", bqc_relational::Value::int(1)),
            ],
        );
        let text = render_case(
            &["found by fuzzing".to_string()],
            &q1,
            &q2,
            ExpectedVerdict::NotContained,
            Some(&witness),
        );
        let cases = parse_corpus(&text).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].expect, ExpectedVerdict::NotContained);
        assert_eq!(cases[0].witness.as_ref().unwrap().num_facts("R"), 1);
        assert_eq!(cases[0].q1.atoms().len(), 2);
    }
}
