//! A sharded, LRU-bounded cache of containment decisions.
//!
//! The cache maps the canonical hash of a `(Q1, Q2)` pair (see
//! [`crate::canon`]) to the [`AnswerSummary`] of the decision procedure.
//! Entries are spread over `N` independently locked shards so concurrent
//! workers rarely contend; each shard is bounded and evicts its
//! least-recently-used entry when full.  Hits, misses and evictions are
//! counted with relaxed atomics.
//!
//! Keying on a 64-bit hash alone would make a (cosmically unlikely) hash
//! collision silently return the wrong verdict, which would violate the
//! cache-determinism invariant (ARCHITECTURE.md): *a cached answer must equal
//! the freshly computed one*.  Each entry therefore stores the canonical pair
//! text and a lookup whose text mismatches is treated as a miss.
//!
//! Shard locks recover from poisoning deliberately: every mutation under a
//! shard lock leaves the map sound at any interruption point (at worst an
//! entry whose cleared key text matches no lookup, which reads as a miss), so
//! a contained panic on one worker must not condemn the whole cache — fault
//! isolation is the point of the engine's panic containment.

use bqc_core::AnswerSummary;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-shard exported counters (`bqc_engine_cache_*_total{shard="i"}`).
/// Registered by shard index, so every cache instance in the process feeds
/// the same per-shard series — the tier hit-rate accounting the exposition
/// (`bqc --metrics`) reports.
struct ShardObs {
    hits: bqc_obs::Counter,
    restored_hits: bqc_obs::Counter,
    misses: bqc_obs::Counter,
    evictions: bqc_obs::Counter,
}

impl ShardObs {
    fn new(index: usize) -> ShardObs {
        ShardObs {
            hits: bqc_obs::counter(&format!("bqc_engine_cache_hits_total{{shard=\"{index}\"}}")),
            restored_hits: bqc_obs::counter(&format!(
                "bqc_engine_cache_restored_hits_total{{shard=\"{index}\"}}"
            )),
            misses: bqc_obs::counter(&format!(
                "bqc_engine_cache_misses_total{{shard=\"{index}\"}}"
            )),
            evictions: bqc_obs::counter(&format!(
                "bqc_engine_cache_evictions_total{{shard=\"{index}\"}}"
            )),
        }
    }
}

/// Point-in-time counters of cache activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from an entry this process computed and inserted.
    pub hits: u64,
    /// Lookups answered from an entry restored out of a snapshot.  Counted
    /// separately from [`hits`](CacheStats::hits) so traffic accounting
    /// stays honest across restarts: a restored verdict was computed by a
    /// *previous* process, and lumping it into either `hits` or `misses`
    /// would misstate this process's warm-up behavior.
    pub restored_hits: u64,
    /// Lookups that found nothing (or a colliding entry).
    pub misses: u64,
    /// Entries displaced by the per-shard LRU bound.
    pub evictions: u64,
    /// Entries currently resident, summed over shards.
    pub entries: u64,
    /// Entries inserted from a snapshot since construction (monotonic; not
    /// decremented by eviction).
    pub restored: u64,
}

/// A successful cache probe: the summary plus where the entry came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheHit {
    /// The cached verdict.
    pub summary: AnswerSummary,
    /// `true` iff the entry was restored from a snapshot and has not been
    /// recomputed by this process.
    pub restored: bool,
}

struct Entry {
    /// Canonical pair text, the collision guard.
    key_text: String,
    summary: AnswerSummary,
    /// Logical timestamp of the last hit or insertion (shard-local clock).
    last_used: u64,
    /// `true` for entries loaded from a snapshot; cleared when the entry is
    /// re-inserted by a fresh computation.
    restored: bool,
}

struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// The sharded decision cache.  Shared by reference across worker threads;
/// all methods take `&self`.
pub struct DecisionCache {
    shards: Vec<Mutex<Shard>>,
    obs: Vec<ShardObs>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    restored_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    restored: AtomicU64,
}

impl DecisionCache {
    /// Creates a cache with `shards` shards of `capacity_per_shard` entries
    /// each.  Both are clamped to at least 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> DecisionCache {
        let shards = shards.max(1);
        DecisionCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            obs: (0..shards).map(ShardObs::new).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            restored_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            restored: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, hash: u64) -> usize {
        // The low bits of FNV-1a are well mixed; simple modulo sharding.
        (hash % self.shards.len() as u64) as usize
    }

    /// Looks up the summary cached for `hash`, verifying `key_text` against
    /// the stored canonical text.  Counts a hit (split by restored-ness) or
    /// a miss.
    pub fn probe(&self, hash: u64, key_text: &str) -> Option<CacheHit> {
        let index = self.shard_index(hash);
        let mut shard = self.shards[index]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&hash) {
            Some(entry) if entry.key_text == key_text => {
                entry.last_used = clock;
                if entry.restored {
                    self.restored_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs[index].restored_hits.inc();
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.obs[index].hits.inc();
                }
                Some(CacheHit {
                    summary: entry.summary,
                    restored: entry.restored,
                })
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs[index].misses.inc();
                None
            }
        }
    }

    /// [`probe`](DecisionCache::probe) with the provenance dropped.
    pub fn get(&self, hash: u64, key_text: &str) -> Option<AnswerSummary> {
        self.probe(hash, key_text).map(|hit| hit.summary)
    }

    /// Inserts (or refreshes) the summary for `hash`, evicting the shard's
    /// least-recently-used entry when the shard is at capacity.
    pub fn insert(&self, hash: u64, key_text: &str, summary: AnswerSummary) {
        self.insert_with(hash, key_text, summary, false)
    }

    /// Inserts an entry restored from a snapshot: hits on it are counted as
    /// [`CacheStats::restored_hits`] until a fresh computation re-inserts
    /// the key.
    pub fn restore(&self, hash: u64, key_text: &str, summary: AnswerSummary) {
        self.restored.fetch_add(1, Ordering::Relaxed);
        self.insert_with(hash, key_text, summary, true)
    }

    fn insert_with(&self, hash: u64, key_text: &str, summary: AnswerSummary, restored: bool) {
        let index = self.shard_index(hash);
        let mut shard = self.shards[index]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.map.get_mut(&hash) {
            // Refresh in place; on a text collision the newer pair wins.
            entry.key_text.clear();
            entry.key_text.push_str(key_text);
            entry.summary = summary;
            entry.last_used = clock;
            entry.restored = restored;
            return;
        }
        if shard.map.len() >= self.capacity_per_shard {
            // O(shard) scan for the LRU victim.  Shards are small (default
            // 1024 entries) and evictions only happen at capacity, so this
            // stays off the hot path; a doubly-linked LRU list is not worth
            // the unsafe or the extra allocation per entry here.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs[index].evictions.inc();
            }
        }
        shard.map.insert(
            hash,
            Entry {
                key_text: key_text.to_string(),
                summary,
                last_used: clock,
                restored,
            },
        );
    }

    /// Current hit/miss/eviction counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .map
                    .len() as u64
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            restored_hits: self.restored_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            restored: self.restored.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss/eviction/restored counters to zero without
    /// touching the resident entries.  Lets a long-running server report
    /// per-window traffic (e.g. "since the last snapshot") instead of
    /// since-boot totals.  The process-wide `bqc-obs` counters are *not*
    /// reset — they are monotonic by contract.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.restored_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.restored.store(0, Ordering::Relaxed);
    }

    /// Every resident entry as `(hash, key text, summary)`, the input of a
    /// snapshot.  Taken shard by shard — concurrent inserts during the scan
    /// may or may not be included, which is fine: a snapshot is a
    /// point-in-time *approximation* of the cache, and every entry in it is
    /// individually valid.
    pub fn export(&self) -> Vec<(u64, String, AnswerSummary)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|poison| poison.into_inner());
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|(&hash, entry)| (hash, entry.key_text.clone(), entry.summary)),
            );
        }
        out
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .map
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contained() -> AnswerSummary {
        AnswerSummary::Contained
    }

    fn not_contained() -> AnswerSummary {
        AnswerSummary::NotContained {
            witness_verified: false,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = DecisionCache::new(4, 8);
        assert_eq!(cache.get(1, "a"), None);
        cache.insert(1, "a", contained());
        assert_eq!(cache.get(1, "a"), Some(contained()));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn colliding_text_is_a_miss_then_replaced() {
        let cache = DecisionCache::new(1, 8);
        cache.insert(7, "pair-a", contained());
        // Same hash, different canonical text: must not return the wrong
        // answer.
        assert_eq!(cache.get(7, "pair-b"), None);
        cache.insert(7, "pair-b", not_contained());
        assert_eq!(cache.get(7, "pair-b"), Some(not_contained()));
        assert_eq!(cache.get(7, "pair-a"), None);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = DecisionCache::new(1, 2);
        cache.insert(1, "one", contained());
        cache.insert(2, "two", contained());
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(1, "one"), Some(contained()));
        cache.insert(3, "three", contained());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2, "two"), None, "LRU entry evicted");
        assert_eq!(cache.get(1, "one"), Some(contained()));
        assert_eq!(cache.get(3, "three"), Some(contained()));
    }

    #[test]
    fn sharding_spreads_entries() {
        let cache = DecisionCache::new(4, 2);
        for hash in 0..8u64 {
            cache.insert(hash, &format!("k{hash}"), contained());
        }
        // 8 keys over 4 shards of capacity 2: everything fits, no evictions.
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = DecisionCache::new(2, 4);
        cache.insert(1, "a", contained());
        assert_eq!(cache.get(1, "a"), Some(contained()));
        cache.clear();
        assert_eq!(cache.get(1, "a"), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn restored_entries_hit_in_their_own_bucket() {
        let cache = DecisionCache::new(2, 8);
        cache.restore(9, "snap", contained());
        // Probing a restored entry is a restored hit, not a plain hit (and
        // certainly not a miss).
        assert_eq!(
            cache.probe(9, "snap"),
            Some(CacheHit {
                summary: contained(),
                restored: true
            })
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.restored_hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.restored, 1);
        // A fresh insert over the same key clears the restored mark.
        cache.insert(9, "snap", contained());
        assert_eq!(
            cache.probe(9, "snap"),
            Some(CacheHit {
                summary: contained(),
                restored: false
            })
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().restored_hits, 1);
    }

    #[test]
    fn export_and_restore_round_trip() {
        let cache = DecisionCache::new(4, 8);
        cache.insert(1, "one", contained());
        cache.insert(2, "two", not_contained());
        let mut exported = cache.export();
        exported.sort_by(|a, b| a.1.cmp(&b.1));
        assert_eq!(exported.len(), 2);
        let restored = DecisionCache::new(2, 8);
        for (hash, key, summary) in &exported {
            restored.restore(*hash, key, *summary);
        }
        assert_eq!(restored.get(1, "one"), Some(contained()));
        assert_eq!(restored.get(2, "two"), Some(not_contained()));
        assert_eq!(restored.stats().restored, 2);
        assert_eq!(restored.stats().restored_hits, 2);
    }

    #[test]
    fn reset_stats_keeps_entries() {
        let cache = DecisionCache::new(1, 4);
        cache.insert(1, "a", contained());
        cache.get(1, "a");
        cache.get(2, "b");
        cache.reset_stats();
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.restored_hits),
            (0, 0, 0),
            "counters reset"
        );
        assert_eq!(stats.entries, 1, "entries survive a counter reset");
        assert_eq!(cache.get(1, "a"), Some(contained()));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = DecisionCache::new(8, 64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let hash = t * 1000 + i;
                        let key = format!("k{hash}");
                        cache.insert(hash, &key, contained());
                        assert_eq!(cache.get(hash, &key), Some(contained()));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }
}
