//! A sharded, LRU-bounded cache of containment decisions.
//!
//! The cache maps the canonical hash of a `(Q1, Q2)` pair (see
//! [`crate::canon`]) to the [`AnswerSummary`] of the decision procedure.
//! Entries are spread over `N` independently locked shards so concurrent
//! workers rarely contend; each shard is bounded and evicts its
//! least-recently-used entry when full.  Hits, misses and evictions are
//! counted with relaxed atomics.
//!
//! Keying on a 64-bit hash alone would make a (cosmically unlikely) hash
//! collision silently return the wrong verdict, which would violate the
//! cache-determinism invariant (ARCHITECTURE.md): *a cached answer must equal
//! the freshly computed one*.  Each entry therefore stores the canonical pair
//! text and a lookup whose text mismatches is treated as a miss.

use bqc_core::AnswerSummary;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-shard exported counters (`bqc_engine_cache_*_total{shard="i"}`).
/// Registered by shard index, so every cache instance in the process feeds
/// the same per-shard series — the tier hit-rate accounting the exposition
/// (`bqc --metrics`) reports.
struct ShardObs {
    hits: bqc_obs::Counter,
    misses: bqc_obs::Counter,
    evictions: bqc_obs::Counter,
}

impl ShardObs {
    fn new(index: usize) -> ShardObs {
        ShardObs {
            hits: bqc_obs::counter(&format!("bqc_engine_cache_hits_total{{shard=\"{index}\"}}")),
            misses: bqc_obs::counter(&format!(
                "bqc_engine_cache_misses_total{{shard=\"{index}\"}}"
            )),
            evictions: bqc_obs::counter(&format!(
                "bqc_engine_cache_evictions_total{{shard=\"{index}\"}}"
            )),
        }
    }
}

/// Point-in-time counters of cache activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a colliding entry).
    pub misses: u64,
    /// Entries displaced by the per-shard LRU bound.
    pub evictions: u64,
    /// Entries currently resident, summed over shards.
    pub entries: u64,
}

struct Entry {
    /// Canonical pair text, the collision guard.
    key_text: String,
    summary: AnswerSummary,
    /// Logical timestamp of the last hit or insertion (shard-local clock).
    last_used: u64,
}

struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// The sharded decision cache.  Shared by reference across worker threads;
/// all methods take `&self`.
pub struct DecisionCache {
    shards: Vec<Mutex<Shard>>,
    obs: Vec<ShardObs>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DecisionCache {
    /// Creates a cache with `shards` shards of `capacity_per_shard` entries
    /// each.  Both are clamped to at least 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> DecisionCache {
        let shards = shards.max(1);
        DecisionCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            obs: (0..shards).map(ShardObs::new).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, hash: u64) -> usize {
        // The low bits of FNV-1a are well mixed; simple modulo sharding.
        (hash % self.shards.len() as u64) as usize
    }

    /// Looks up the summary cached for `hash`, verifying `key_text` against
    /// the stored canonical text.  Counts a hit or a miss.
    pub fn get(&self, hash: u64, key_text: &str) -> Option<AnswerSummary> {
        let index = self.shard_index(hash);
        let mut shard = self.shards[index].lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&hash) {
            Some(entry) if entry.key_text == key_text => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs[index].hits.inc();
                Some(entry.summary)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs[index].misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) the summary for `hash`, evicting the shard's
    /// least-recently-used entry when the shard is at capacity.
    pub fn insert(&self, hash: u64, key_text: &str, summary: AnswerSummary) {
        let index = self.shard_index(hash);
        let mut shard = self.shards[index].lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.map.get_mut(&hash) {
            // Refresh in place; on a text collision the newer pair wins.
            entry.key_text.clear();
            entry.key_text.push_str(key_text);
            entry.summary = summary;
            entry.last_used = clock;
            return;
        }
        if shard.map.len() >= self.capacity_per_shard {
            // O(shard) scan for the LRU victim.  Shards are small (default
            // 1024 entries) and evictions only happen at capacity, so this
            // stays off the hot path; a doubly-linked LRU list is not worth
            // the unsafe or the extra allocation per entry here.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.obs[index].evictions.inc();
            }
        }
        shard.map.insert(
            hash,
            Entry {
                key_text: key_text.to_string(),
                summary,
                last_used: clock,
            },
        );
    }

    /// Current hit/miss/eviction counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contained() -> AnswerSummary {
        AnswerSummary::Contained
    }

    fn not_contained() -> AnswerSummary {
        AnswerSummary::NotContained {
            witness_verified: false,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = DecisionCache::new(4, 8);
        assert_eq!(cache.get(1, "a"), None);
        cache.insert(1, "a", contained());
        assert_eq!(cache.get(1, "a"), Some(contained()));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn colliding_text_is_a_miss_then_replaced() {
        let cache = DecisionCache::new(1, 8);
        cache.insert(7, "pair-a", contained());
        // Same hash, different canonical text: must not return the wrong
        // answer.
        assert_eq!(cache.get(7, "pair-b"), None);
        cache.insert(7, "pair-b", not_contained());
        assert_eq!(cache.get(7, "pair-b"), Some(not_contained()));
        assert_eq!(cache.get(7, "pair-a"), None);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = DecisionCache::new(1, 2);
        cache.insert(1, "one", contained());
        cache.insert(2, "two", contained());
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(1, "one"), Some(contained()));
        cache.insert(3, "three", contained());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2, "two"), None, "LRU entry evicted");
        assert_eq!(cache.get(1, "one"), Some(contained()));
        assert_eq!(cache.get(3, "three"), Some(contained()));
    }

    #[test]
    fn sharding_spreads_entries() {
        let cache = DecisionCache::new(4, 2);
        for hash in 0..8u64 {
            cache.insert(hash, &format!("k{hash}"), contained());
        }
        // 8 keys over 4 shards of capacity 2: everything fits, no evictions.
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = DecisionCache::new(2, 4);
        cache.insert(1, "a", contained());
        assert_eq!(cache.get(1, "a"), Some(contained()));
        cache.clear();
        assert_eq!(cache.get(1, "a"), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = DecisionCache::new(8, 64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let hash = t * 1000 + i;
                        let key = format!("k{hash}");
                        cache.insert(hash, &key, contained());
                        assert_eq!(cache.get(hash, &key), Some(contained()));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 400);
    }
}
