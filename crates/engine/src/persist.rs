//! Durable snapshots of the decision cache: a versioned, length-prefixed,
//! checksummed binary format, written atomically and reloaded on start.
//!
//! The whole point of the serving engine is that warm state — cached
//! verdicts, built cone skeletons — amortizes LP work across requests.  A
//! batch process loses all of it on exit; `bqc serve` persists it instead,
//! so a restarted server answers its steady-state traffic from byte-identical
//! cached verdicts ([`crate::Engine::save_snapshot`] /
//! [`crate::Engine::load_snapshot`]).
//!
//! ## Format (version 1)
//!
//! All integers are little-endian.  The file is:
//!
//! ```text
//! magic      8 bytes   b"BQCSNAP\n"
//! version    u32       SNAPSHOT_VERSION (= 1)
//! sizes      u32       number of skeleton-manifest entries
//!            u32 × n   universe sizes with a built Shannon-cone skeleton
//! entries    u64       number of cache entries
//!   per entry:
//!            u32       canonical-pair key length in bytes
//!            bytes     the canonical pair text (UTF-8, the cache key)
//!            u8        verdict tag: 0 = Contained, 1 = NotContained,
//!                      2 = Unknown
//!            u8        payload: witness_verified (tag 1) or obstruction
//!                      (tag 2: 0 = NotChordal, 1 = JunctionTreeNotSimple,
//!                      2–5 = ResourceExhausted for deadline / pivots /
//!                      separation-rounds / hom-steps — encoded for codec
//!                      totality, though the engine never caches one);
//!                      0 for tag 0
//! checksum   u64       FNV-1a over every preceding byte (magic included)
//! ```
//!
//! Pair hashes are deliberately **not** stored: they are recomputed from the
//! key text on load ([`crate::canon::fnv1a`]), so a snapshot cannot smuggle a
//! hash that disagrees with its key, and the format survives any future
//! change of the sharding function.
//!
//! ## Invariants
//!
//! * **Atomicity** — [`write_snapshot_file`] writes to a `.tmp` sibling,
//!   syncs it, and renames over the target; a crash mid-write leaves the old
//!   snapshot intact.
//! * **Integrity** — the trailing checksum covers every byte of the file.  A
//!   truncated or bit-flipped file fails decoding with
//!   [`SnapshotError::Corrupt`] *before* any field is interpreted.
//! * **Versioning** — the version field is checked only after the checksum
//!   passes; an intact snapshot from a different format version is refused
//!   with [`SnapshotError::VersionMismatch`], never half-parsed.
//! * **Quarantine** — [`load_or_quarantine`] renames an unreadable snapshot
//!   to `<path>.corrupt` and reports a cold start, so a damaged file can
//!   never crash-loop a server or be silently overwritten before an operator
//!   can inspect it.
//! * **Determinism** — [`encode_snapshot`] sorts entries by key, so two
//!   engines holding the same decisions produce byte-identical snapshots.

use crate::canon::fnv1a;
use bqc_core::{AnswerSummary, BudgetResource, Obstruction};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The 8-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BQCSNAP\n";

/// One persisted cache entry: the canonical pair key and its verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The canonical pair text (see [`crate::canon::CanonicalPair::key`]);
    /// the 64-bit cache hash is recomputed from it on load.
    pub key: String,
    /// The cached verdict.
    pub summary: AnswerSummary,
}

/// An in-memory snapshot: cache entries plus the warm-state manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Cached decisions, sorted by key in the encoded form.
    pub entries: Vec<SnapshotEntry>,
    /// Universe sizes whose Shannon-cone skeletons were built — skeletons
    /// are pure functions of the size, so recording the sizes alone lets the
    /// loader rebuild the predecessor's warm skeletons cheaply.
    pub skeleton_sizes: Vec<usize>,
}

/// Why a snapshot could not be decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read (or written).
    Io(std::io::Error),
    /// The bytes are not an intact snapshot: wrong magic, bad checksum,
    /// truncation, or a malformed field.  The message says which.
    Corrupt(String),
    /// The file is intact (checksum passes) but was written by a different
    /// format version.
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(error) => write!(f, "snapshot I/O error: {error}"),
            SnapshotError::Corrupt(message) => write!(f, "corrupt snapshot: {message}"),
            SnapshotError::VersionMismatch { found } => write!(
                f,
                "snapshot version {found} is not the supported version {SNAPSHOT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(error: std::io::Error) -> SnapshotError {
        SnapshotError::Io(error)
    }
}

fn summary_tag(summary: &AnswerSummary) -> (u8, u8) {
    match summary {
        AnswerSummary::Contained => (0, 0),
        AnswerSummary::NotContained { witness_verified } => (1, u8::from(*witness_verified)),
        AnswerSummary::Unknown { obstruction } => (
            2,
            match obstruction {
                Obstruction::NotChordal => 0,
                Obstruction::JunctionTreeNotSimple => 1,
                // Encoded for codec totality only: the engine never caches a
                // budget-exhausted summary (see `Engine::decide`), so these
                // payloads should not appear in a snapshot it wrote.
                Obstruction::ResourceExhausted { resource } => match resource {
                    BudgetResource::Deadline => 2,
                    BudgetResource::Pivots => 3,
                    BudgetResource::SeparationRounds => 4,
                    BudgetResource::HomSteps => 5,
                },
            },
        ),
    }
}

fn summary_from_tag(tag: u8, payload: u8) -> Result<AnswerSummary, SnapshotError> {
    match (tag, payload) {
        (0, 0) => Ok(AnswerSummary::Contained),
        (1, flag @ (0 | 1)) => Ok(AnswerSummary::NotContained {
            witness_verified: flag == 1,
        }),
        (2, 0) => Ok(AnswerSummary::Unknown {
            obstruction: Obstruction::NotChordal,
        }),
        (2, 1) => Ok(AnswerSummary::Unknown {
            obstruction: Obstruction::JunctionTreeNotSimple,
        }),
        (2, payload @ 2..=5) => Ok(AnswerSummary::Unknown {
            obstruction: Obstruction::ResourceExhausted {
                resource: match payload {
                    2 => BudgetResource::Deadline,
                    3 => BudgetResource::Pivots,
                    4 => BudgetResource::SeparationRounds,
                    _ => BudgetResource::HomSteps,
                },
            },
        }),
        _ => Err(SnapshotError::Corrupt(format!(
            "unknown verdict encoding (tag {tag}, payload {payload})"
        ))),
    }
}

/// Encodes a snapshot to the version-1 byte format described in the module
/// docs.  Entries are sorted by key first, so the output is a deterministic
/// function of the snapshot's *contents*.
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let mut entries: Vec<&SnapshotEntry> = snapshot.entries.iter().collect();
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = Vec::with_capacity(64 + entries.iter().map(|e| e.key.len() + 8).sum::<usize>());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(snapshot.skeleton_sizes.len() as u32).to_le_bytes());
    for &size in &snapshot.skeleton_sizes {
        out.extend_from_slice(&(size as u32).to_le_bytes());
    }
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for entry in entries {
        out.extend_from_slice(&(entry.key.len() as u32).to_le_bytes());
        out.extend_from_slice(entry.key.as_bytes());
        let (tag, payload) = summary_tag(&entry.summary);
        out.push(tag);
        out.push(payload);
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A little-endian cursor over the snapshot body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(SnapshotError::Corrupt(format!(
                "unexpected end of data reading {what}"
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

/// Decodes snapshot bytes, validating magic, checksum and version (in that
/// order — see the module docs for why the checksum is verified before any
/// field is interpreted).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let min = SNAPSHOT_MAGIC.len() + 4 + 4 + 8 + 8;
    if bytes.len() < min {
        return Err(SnapshotError::Corrupt(format!(
            "{} bytes is shorter than the minimal snapshot ({min})",
            bytes.len()
        )));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(SnapshotError::Corrupt(format!(
            "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        )));
    }
    let mut reader = Reader {
        bytes: body,
        pos: SNAPSHOT_MAGIC.len(),
    };
    let version = reader.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    let size_count = reader.u32("skeleton manifest length")? as usize;
    let mut skeleton_sizes = Vec::with_capacity(size_count.min(1024));
    for _ in 0..size_count {
        skeleton_sizes.push(reader.u32("skeleton size")? as usize);
    }
    let entry_count = reader.u64("entry count")? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
    for _ in 0..entry_count {
        let key_len = reader.u32("key length")? as usize;
        let key_bytes = reader.take(key_len, "key text")?;
        let key = std::str::from_utf8(key_bytes)
            .map_err(|_| SnapshotError::Corrupt("key is not UTF-8".into()))?
            .to_string();
        let tag = reader.u8("verdict tag")?;
        let payload = reader.u8("verdict payload")?;
        entries.push(SnapshotEntry {
            key,
            summary: summary_from_tag(tag, payload)?,
        });
    }
    if reader.pos != body.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the last entry",
            body.len() - reader.pos
        )));
    }
    Ok(Snapshot {
        entries,
        skeleton_sizes,
    })
}

/// Writes a snapshot to `path` **atomically**: the bytes go to a
/// `<path>.tmp` sibling first, are synced to disk, and the sibling is then
/// renamed over `path` (an atomic replacement on POSIX filesystems).  A crash
/// at any point leaves either the previous snapshot or the complete new one.
/// Returns the encoded size in bytes.
pub fn write_snapshot_file(path: &Path, snapshot: &Snapshot) -> std::io::Result<usize> {
    let bytes = encode_snapshot(snapshot);
    let tmp = sibling(path, ".tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        // The chaos suite kills the process at each of these failpoints to
        // prove the atomicity claim above; `persist::mid-write` sits between
        // two halves of the payload so a kill there leaves a torn temp file,
        // the worst case quarantine must absorb.
        let (head, tail) = bytes.split_at(bytes.len() / 2);
        file.write_all(head)?;
        bqc_obs::failpoint("persist::mid-write");
        file.write_all(tail)?;
        bqc_obs::failpoint("persist::pre-fsync");
        file.sync_all()?;
    }
    bqc_obs::failpoint("persist::pre-rename");
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(bytes.len()),
        Err(error) => {
            // Leave no stray temp file behind on a failed rename.
            let _ = std::fs::remove_file(&tmp);
            Err(error)
        }
    }
}

/// Reads and decodes the snapshot at `path`.
pub fn read_snapshot_file(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// The outcome of [`load_or_quarantine`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// The snapshot was read and validated.
    Loaded(Snapshot),
    /// No snapshot exists at the path — a normal cold start.
    Missing,
    /// The snapshot failed validation and was renamed aside so the server
    /// can start cold without destroying the evidence.
    Quarantined {
        /// Why the snapshot was rejected.
        error: SnapshotError,
        /// Where the rejected file was moved (`<path>.corrupt`), when the
        /// rename itself succeeded.
        quarantined_to: Option<PathBuf>,
    },
}

/// Loads the snapshot at `path`, degrading gracefully: a missing file is a
/// cold start, and a corrupt or version-mismatched file is **quarantined**
/// (renamed to `<path>.corrupt`) so the caller starts cold, the next save is
/// not blocked, and an operator can inspect the rejected bytes.  This
/// function never panics on bad input and never deletes data.
pub fn load_or_quarantine(path: &Path) -> LoadOutcome {
    match read_snapshot_file(path) {
        Ok(snapshot) => LoadOutcome::Loaded(snapshot),
        Err(SnapshotError::Io(error)) if error.kind() == std::io::ErrorKind::NotFound => {
            LoadOutcome::Missing
        }
        Err(error) => {
            let quarantine = sibling(path, ".corrupt");
            let quarantined_to = std::fs::rename(path, &quarantine).ok().map(|()| quarantine);
            LoadOutcome::Quarantined {
                error,
                quarantined_to,
            }
        }
    }
}

/// `path` with `suffix` appended to its file name.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            entries: vec![
                SnapshotEntry {
                    key: "(v0)|R(v0,v1) |= (v0)|S(v0,v0)".into(),
                    summary: AnswerSummary::Contained,
                },
                SnapshotEntry {
                    key: "()|R(v0,v1) |= ()|T(v0,v1,v2)".into(),
                    summary: AnswerSummary::NotContained {
                        witness_verified: true,
                    },
                },
                SnapshotEntry {
                    key: "()|A(v0) |= ()|B(v0)".into(),
                    summary: AnswerSummary::Unknown {
                        obstruction: Obstruction::JunctionTreeNotSimple,
                    },
                },
            ],
            skeleton_sizes: vec![5, 6],
        }
    }

    #[test]
    fn round_trips_and_sorts_entries() {
        let snapshot = sample();
        let bytes = encode_snapshot(&snapshot);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.skeleton_sizes, vec![5, 6]);
        assert_eq!(decoded.entries.len(), 3);
        // Entries come back sorted by key regardless of input order.
        let mut keys: Vec<&str> = snapshot.entries.iter().map(|e| e.key.as_str()).collect();
        keys.sort_unstable();
        let decoded_keys: Vec<&str> = decoded.entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(decoded_keys, keys);
        for entry in &snapshot.entries {
            let found = decoded.entries.iter().find(|e| e.key == entry.key).unwrap();
            assert_eq!(found.summary, entry.summary);
        }
    }

    #[test]
    fn encoding_is_content_deterministic() {
        let mut reordered = sample();
        reordered.entries.reverse();
        assert_eq!(encode_snapshot(&sample()), encode_snapshot(&reordered));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let decoded = decode_snapshot(&encode_snapshot(&Snapshot::default())).unwrap();
        assert!(decoded.entries.is_empty());
        assert!(decoded.skeleton_sizes.is_empty());
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut bytes = encode_snapshot(&sample());
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn version_mismatch_requires_an_intact_file() {
        // A wrong version with a *valid* checksum is a version mismatch …
        let mut snapshot = Snapshot::default();
        snapshot.skeleton_sizes.push(4);
        let mut bytes = encode_snapshot(&snapshot);
        let at = SNAPSHOT_MAGIC.len();
        bytes[at..at + 4].copy_from_slice(&2u32.to_le_bytes());
        let len = bytes.len();
        let checksum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::VersionMismatch { found: 2 })
        ));
        // … but a bit flip in the version field alone is corruption, not a
        // confident "wrong version" report.
        let mut flipped = encode_snapshot(&snapshot);
        flipped[at] ^= 0x02;
        assert!(matches!(
            decode_snapshot(&flipped),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("bqc-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.snap");
        let snapshot = sample();
        let bytes = write_snapshot_file(&path, &snapshot).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len() as usize);
        let decoded = read_snapshot_file(&path).unwrap();
        assert_eq!(decoded.entries.len(), 3);
        // No temp sibling survives a successful write.
        assert!(!sibling(&path, ".tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let path = std::env::temp_dir().join("bqc-persist-definitely-missing.snap");
        assert!(matches!(load_or_quarantine(&path), LoadOutcome::Missing));
    }
}
