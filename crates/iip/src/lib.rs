//! # bqc-iip — an information-inequality prover
//!
//! The decision problems at the heart of *Bag Query Containment and
//! Information Theory* (PODS 2020):
//!
//! * **IIP** (Problem 2.4): is `0 ≤ Σ_X c_X h(X)` valid for every entropic
//!   function?
//! * **Max-IIP** (Problem 2.5): is `0 ≤ max_ℓ Σ_X c_{ℓ,X} h(X)` valid?
//!
//! Both problems are open in general; what *is* decidable — and what the
//! paper's Theorem 3.6 reduces the containment problem to — is validity over
//! the polymatroid cone `Γ_n`, i.e. Shannon-provability.  This crate provides:
//!
//! * [`LinearInequality`] / [`MaxInequality`] — the inequality syntax;
//! * [`check_linear_inequality`] / [`check_max_inequality`] — exact LP-based
//!   validity over `Γ_n` (in the style of Yeung's ITIP, extended to maxima),
//!   returning a violating polymatroid when the inequality is not
//!   Shannon-provable;
//! * [`uniformize`] — Lemma 5.3, the Uniform-Max-IIP normal form consumed by
//!   the reduction to query containment;
//! * [`find_convex_certificate`] — Theorem 6.1 over `Γ_n`: a valid
//!   max-inequality is witnessed by a convex combination of its disjuncts that
//!   is itself a Shannon inequality.
//!
//! ```
//! use bqc_arith::int;
//! use bqc_entropy::EntropyExpr;
//! use bqc_iip::{check_linear_inequality, LinearInequality};
//!
//! // Submodularity h(X) + h(Y) >= h(XY) is a Shannon inequality…
//! let mut e = EntropyExpr::zero();
//! e.add_term(int(1), ["X"]);
//! e.add_term(int(1), ["Y"]);
//! e.add_term(int(-1), ["X", "Y"]);
//! let ineq = LinearInequality::new(vec!["X".into(), "Y".into()], e);
//! assert!(check_linear_inequality(&ineq).is_valid());
//! ```

pub mod convex;
pub mod inequality;
pub mod prover;
pub mod uniform;

pub use convex::{certificate_or_refutation, find_convex_certificate, ConvexCertificate};
pub use inequality::{LinearInequality, MaxInequality};
pub use prover::{
    check_linear_inequality, check_linear_inequality_eager, check_max_inequality,
    check_max_inequality_eager, check_max_inequality_eager_budgeted, minimize_over_gamma,
    GammaProver, GammaValidity,
};
pub use uniform::{uniformize, UniformExpression, UniformMaxIip, UniformityError};
