//! Validity of (max-)information inequalities over the Shannon cone `Γ_n`.
//!
//! Section 3.2: `Γ_n` is a polyhedral cone, so validity of a max-linear
//! inequality over `Γ_n` is decidable by linear programming.  Concretely,
//! `0 ≤ max_ℓ E_ℓ(h)` fails on `Γ_n` iff some polymatroid has `E_ℓ(h) < 0`
//! for every `ℓ`; because `Γ_n` is a cone this is equivalent to the
//! feasibility of
//!
//! ```text
//!     h ∈ Γ_n  (elemental Shannon inequalities),    E_ℓ(h) ≤ −1  for all ℓ,
//! ```
//!
//! which the exact simplex solver of `bqc-lp` decides.  The answer is
//! interpreted as follows:
//!
//! * **valid over `Γ_n`** ⇒ valid over the entropic functions `Γ*_n ⊆ Γ_n`
//!   (the inequality is a *Shannon* inequality);
//! * **invalid over `Γ_n`** ⇒ inconclusive for general inequalities (there are
//!   non-Shannon valid inequalities, Zhang–Yeung \[32\]); but for the
//!   *essentially Shannon* classes of Theorem 3.6 — in particular the
//!   containment inequalities produced by chordal queries with simple junction
//!   trees — the polymatroid counterexample can be pushed down into the normal
//!   functions and therefore refutes the inequality outright.
//!
//! ## Lazy separation
//!
//! `Γ_n` has `n + C(n,2)·2^{n−2}` elemental inequalities, and the seed
//! implementation materialized every one of them into the LP before each
//! probe — the `2^n` wall that kept `Γ_6`/`Γ_7` out of reach.  The prover
//! now runs a **cutting-plane loop** instead (the standard ITIP-scaling
//! technique):
//!
//! 1. solve a small relaxation holding only the `n` monotonicity seed rows,
//!    any elemental rows remembered from earlier same-shaped probes, and the
//!    disjunct rows `E_ℓ(h) ≤ −1`;
//! 2. if the relaxation is **infeasible**, the full program is too (the
//!    relaxation's feasible set is a superset) — the inequality is valid;
//! 3. otherwise hand the optimal point to the exact
//!    [`ShannonSeparator`], which scans *all* elemental inequalities in
//!    `O(n²·2^n)` arithmetic without materializing them; if none is violated
//!    the point is a genuine polymatroid counterexample;
//! 4. otherwise append the most-violated rows to the LP **incrementally**
//!    ([`bqc_lp::IncrementalSolver`] extends the optimal basis and re-enters
//!    via a bounded phase-1 restart) and repeat.
//!
//! Each round adds at least one elemental row that was never active before,
//! so the loop terminates; validity is only ever certified by relaxation
//! infeasibility, and a counterexample is only ever returned once the
//! separator finds no violated elemental inequality — the verdicts are
//! exactly those of the eager cone (retained as
//! [`check_max_inequality_eager`] and used as the property-test oracle).

use crate::inequality::{LinearInequality, MaxInequality};
use bqc_arith::Rational;
use bqc_entropy::{
    all_masks, ElementalId, EntropyExpr, Mask, SetFunction, ShannonSeparator, SkeletonCache,
};
use bqc_lp::{ConstraintOp, LpBasis, LpProblem, LpStatus, Sense, VarBound, VarId};
use bqc_obs::{Budget, Exhausted, LazyCounter, LazyHistogram};
use std::collections::HashMap;

static PROBES: LazyCounter = LazyCounter::new("bqc_iip_probes_total");
static SEPARATION_ROUNDS: LazyCounter = LazyCounter::new("bqc_iip_separation_rounds_total");
static ROUNDS_PER_PROBE: LazyHistogram = LazyHistogram::new("bqc_iip_rounds_per_probe");
static ESCALATIONS: LazyCounter = LazyCounter::new("bqc_iip_escalations_total");
static WARM_SHAPE_HITS: LazyCounter = LazyCounter::new("bqc_iip_warm_shape_hits_total");
static FARKAS_SUPPORTS_HARVESTED: LazyCounter =
    LazyCounter::new("bqc_iip_farkas_supports_harvested_total");
static FARKAS_SUPPORT_HITS: LazyCounter = LazyCounter::new("bqc_iip_farkas_support_hits_total");
static BUDGET_EXHAUSTED: LazyCounter = LazyCounter::new("bqc_iip_budget_exhausted_total");

/// Outcome of a validity check over the polymatroid cone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GammaValidity {
    /// The inequality holds for every polymatroid (hence for every entropic
    /// function): it is a Shannon inequality.
    ValidShannon,
    /// Some polymatroid violates every disjunct simultaneously.  The witness
    /// satisfies `E_ℓ(h) ≤ −1` for all `ℓ`.
    NotShannonProvable {
        /// A violating polymatroid.
        counterexample: SetFunction,
    },
}

impl GammaValidity {
    /// `true` iff the inequality is Shannon-provable.
    pub fn is_valid(&self) -> bool {
        matches!(self, GammaValidity::ValidShannon)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&SetFunction> {
        match self {
            GammaValidity::ValidShannon => None,
            GammaValidity::NotShannonProvable { counterexample } => Some(counterexample),
        }
    }
}

/// Internal helper: declares one anonymous LP column per non-empty subset of
/// an `n`-variable universe (no name `format!`, no per-column allocation).
fn declare_columns(lp: &mut LpProblem, n: usize) -> Vec<Option<VarId>> {
    let mut columns: Vec<Option<VarId>> = vec![None; 1 << n];
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        // Polymatroids are non-negative (monotonicity from h(∅) = 0), so the
        // natural variable bound is ≥ 0; this also keeps the LP smaller.
        columns[mask as usize] = Some(lp.add_variable_anonymous(VarBound::NonNegative));
    }
    columns
}

/// Adds one elemental inequality as an LP row `Σ ±h(mask) ≥ 0`.
fn add_elemental_row(lp: &mut LpProblem, columns: &[Option<VarId>], id: &ElementalId, n: usize) {
    let (terms, len) = id.terms(n);
    lp.add_constraint_small(
        terms[..len]
            .iter()
            .filter_map(|(mask, coeff)| columns[*mask as usize].map(|var| (var, *coeff))),
        ConstraintOp::Ge,
        0,
    );
}

/// Internal helper: builds the **eager** `h ∈ Γ_n` constraint system (every
/// elemental inequality materialized), returning one LP variable per
/// non-empty subset of the universe.
fn shannon_cone_lp(variables: &[String]) -> (LpProblem, Vec<Option<VarId>>) {
    let n = variables.len();
    let mut lp = LpProblem::new(Sense::Minimize);
    let columns = declare_columns(&mut lp, n);
    for id in bqc_entropy::elemental_ids(n) {
        add_elemental_row(&mut lp, &columns, &id, n);
    }
    (lp, columns)
}

/// Converts an [`EntropyExpr`] into sparse LP coefficients with respect to the
/// ordered variable universe.
fn expr_coefficients(
    expr: &EntropyExpr,
    variables: &[String],
    columns: &[Option<VarId>],
) -> Vec<(VarId, Rational)> {
    let index_of: HashMap<&str, usize> = variables
        .iter()
        .enumerate()
        .map(|(index, name)| (name.as_str(), index))
        .collect();
    let mut coeffs = Vec::new();
    for (set, coeff) in expr.terms() {
        let mut mask: Mask = 0;
        for v in set {
            let index = index_of
                .get(v.as_str())
                .unwrap_or_else(|| panic!("variable {v} missing from the universe"));
            mask |= 1 << index;
        }
        if let Some(var) = columns[mask as usize] {
            coeffs.push((var, coeff.clone()));
        }
    }
    coeffs
}

/// Extracts the candidate point of a relaxation solve as one value per mask.
fn mask_values(solution_values: &[Rational], columns: &[Option<VarId>]) -> Vec<Rational> {
    columns
        .iter()
        .map(|column| match column {
            Some(var) => solution_values[var.0].clone(),
            None => Rational::zero(),
        })
        .collect()
}

/// How many violated rows a separation round may append.  Empirically the
/// loop is fastest with small batches (~2n): each LP re-entry then only has
/// to repair a handful of violated rows from the extended basis, and the
/// active set stays close to the rows that actually bind.  Large batches
/// push the re-entry toward a full cold phase 1 and were measurably slower
/// at n = 6..7.
fn separation_batch(n: usize) -> usize {
    (2 * n).max(8)
}

/// How many separation rounds a probe may run before escalating to the
/// certificate LP of Theorem 6.1 (`convex::certificate_decision`).
///
/// Shallow probes — the common containment inequalities, and any probe
/// warm-started with the active rows of an earlier same-shaped probe —
/// finish within a few rounds and never escalate.  Probes that run deep
/// (typically valid inequalities whose Farkas certificates combine many
/// elemental rows) converge much faster in the certificate formulation,
/// whose LP has `2^n` rows instead of `Θ(n²·2^n)`.
fn escalation_rounds(n: usize) -> usize {
    n.max(4)
}

/// Universe size up to and including which the prover materializes the cone
/// eagerly (with a warm-started basis) instead of running the separation
/// loop.  At n ≤ 4 the full cone has at most 28 rows: a single crash-basis
/// solve beats the loop's multiple re-entries and separator scans, and the
/// small-shape probes dominate the decision-procedure workloads of
/// `bqc-core`/`bqc-engine`.  Verdicts are identical either way.
fn eager_cutoff() -> usize {
    4
}

/// Remembered end state of the last probe of a given shape: which elemental
/// rows (beyond the monotonicity seeds) were active, and the final basis.
#[derive(Clone, Debug)]
struct WarmShape {
    active: Vec<ElementalId>,
    basis: Option<LpBasis>,
}

/// A stateful Shannon-cone prover running the **lazy separation loop**, with
/// warm-started LP probes.
///
/// Every validity check over `Γ_n` shares the same elemental-inequality
/// skeleton; only the handful of disjunct rows differ between inequalities.
/// The prover remembers, per probe *shape* (universe size, number of
/// disjuncts), the elemental rows that ended up active in the last probe and
/// its optimal basis, and seeds the next same-shaped probe with both — so a
/// decision loop's repeated probes usually start one separation round from
/// done, and the LP re-entry skips phase 1 whenever the remembered basis is
/// still feasible.  When it is not, the solver silently falls back to a cold
/// start, so answers never depend on the cache.
///
/// Skeletons (the immutable per-universe-size separation data) come from a
/// [`SkeletonCache`] that can be shared across provers and threads — batch
/// engines hand one cache to every worker.
///
/// **Caveat: counterexamples are history-dependent.**  The validity verdict
/// is always identical to a cold check, but when an inequality is *invalid*
/// the violating polymatroid handed back is whichever cone vertex the final
/// relaxation terminated at — a warm start can land on a different (equally
/// valid) vertex than a cold start would.  Callers that need the returned
/// counterexample to be a pure function of the inequality (e.g. to feed
/// deterministic caches) should use the free functions
/// [`check_max_inequality`] / [`check_linear_inequality`], which remain as
/// stateless one-shot entry points.
#[derive(Debug, Default)]
pub struct GammaProver {
    skeletons: SkeletonCache,
    /// Last probe end state per `(universe size, disjunct count)` shape.
    warm: HashMap<(usize, usize), WarmShape>,
    /// Last optimal basis per shape for the small-universe eager path.
    warm_eager: HashMap<(usize, usize), LpBasis>,
}

impl GammaProver {
    /// Creates a prover with an empty warm-start cache and a private
    /// skeleton cache.
    pub fn new() -> GammaProver {
        GammaProver::default()
    }

    /// Creates a prover drawing skeletons from a shared cache.
    ///
    /// Skeletons are immutable, so sharing them never affects verdicts or
    /// counterexamples; it only avoids rebuilding the per-universe-size
    /// separation data in every worker of a batch engine.
    pub fn with_skeletons(skeletons: SkeletonCache) -> GammaProver {
        GammaProver {
            skeletons,
            warm: HashMap::new(),
            warm_eager: HashMap::new(),
        }
    }

    /// The prover's skeleton cache (shareable; see
    /// [`GammaProver::with_skeletons`]).
    pub fn skeletons(&self) -> &SkeletonCache {
        &self.skeletons
    }

    /// Number of cached warm-start entries (one per probe shape seen so far).
    pub fn cached_bases(&self) -> usize {
        self.warm.len() + self.warm_eager.len()
    }

    /// The small-universe path: the full cone is tiny, so materialize it and
    /// solve once, warm-starting from the last same-shaped optimal basis
    /// exactly as the pre-separation prover did.
    fn check_small(
        &mut self,
        inequality: &MaxInequality,
        budget: &Budget,
    ) -> Result<GammaValidity, Exhausted> {
        let variables = &inequality.variables;
        let (mut lp, columns) = shannon_cone_lp(variables);
        for disjunct in &inequality.disjuncts {
            let coeffs = expr_coefficients(disjunct, variables, &columns);
            // E_ℓ(h) ≤ −1.
            lp.add_constraint(coeffs, ConstraintOp::Le, -Rational::one());
        }
        let shape = (variables.len(), inequality.disjuncts.len());
        // `?` on exhaustion happens before any warm-state insertion: an
        // aborted solve must leave the prover exactly as it found it.
        let (solution, basis) = lp.solve_from_budgeted(self.warm_eager.get(&shape), budget)?;
        if let Some(basis) = basis {
            self.warm_eager.insert(shape, basis);
        }
        Ok(match solution.status {
            LpStatus::Infeasible => GammaValidity::ValidShannon,
            LpStatus::Optimal | LpStatus::Unbounded => GammaValidity::NotShannonProvable {
                counterexample: SetFunction::from_values(
                    variables.clone(),
                    mask_values(&solution.values, &columns),
                ),
            },
        })
    }

    /// Decides whether `0 ≤ max_ℓ E_ℓ(h)` holds for every polymatroid over
    /// the inequality's universe, using the lazy separation loop and reusing
    /// the cached active rows and basis when the shape matches.
    pub fn check_max_inequality(&mut self, inequality: &MaxInequality) -> GammaValidity {
        self.check_max_inequality_budgeted(inequality, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// [`GammaProver::check_max_inequality`] under a decision [`Budget`]:
    /// pivots are charged inside the LP solves, each separation round charges
    /// the round cap, and the separator scan checks the deadline.
    ///
    /// `Err` means the budget ran out before the probe finished.  On that
    /// path the prover's warm-start caches are **left untouched** — no
    /// active-row set or basis derived from the aborted probe is remembered,
    /// so later probes (budgeted or not) answer exactly as if the aborted
    /// probe had never run.
    pub fn check_max_inequality_budgeted(
        &mut self,
        inequality: &MaxInequality,
        budget: &Budget,
    ) -> Result<GammaValidity, Exhausted> {
        self.check_max_inner(inequality, budget).inspect_err(|_| {
            BUDGET_EXHAUSTED.inc();
            bqc_obs::instant("budget-exhausted");
        })
    }

    fn check_max_inner(
        &mut self,
        inequality: &MaxInequality,
        budget: &Budget,
    ) -> Result<GammaValidity, Exhausted> {
        PROBES.inc();
        let _probe_span = bqc_obs::span("gamma-check");
        let variables = &inequality.variables;
        let n = variables.len();
        if n <= eager_cutoff() {
            return self.check_small(inequality, budget);
        }
        let skeleton = self.skeletons.get(n);
        let shape = (n, inequality.disjuncts.len());

        // Seed relaxation: monotonicity rows, the active rows remembered
        // from the last same-shaped probe, then the disjunct rows.
        let mut lp = LpProblem::new(Sense::Minimize);
        let columns = declare_columns(&mut lp, n);
        let mut active: Vec<ElementalId> = Vec::new();
        for id in skeleton.seed_rows() {
            add_elemental_row(&mut lp, &columns, &id, n);
        }
        if let Some(cached) = self.warm.get(&shape) {
            WARM_SHAPE_HITS.inc();
            if !cached.active.is_empty() {
                FARKAS_SUPPORT_HITS.inc();
            }
            for id in &cached.active {
                add_elemental_row(&mut lp, &columns, id, n);
            }
            active.extend(cached.active.iter().copied());
        }
        for disjunct in &inequality.disjuncts {
            let coeffs = expr_coefficients(disjunct, variables, &columns);
            // E_ℓ(h) ≤ −1.
            lp.add_constraint(coeffs, ConstraintOp::Le, -Rational::one());
        }

        let mut inc = lp.to_incremental();
        let warm_basis = self
            .warm
            .get(&shape)
            .and_then(|cached| cached.basis.clone());
        let mut solution = inc.solve_from_budgeted(warm_basis.as_ref(), budget)?;
        let separator = ShannonSeparator::new(skeleton.clone());
        let batch = separation_batch(n);
        let mut rounds = 0usize;

        let verdict = loop {
            match solution.status {
                // The relaxation admits every polymatroid the full cone
                // does, so relaxation infeasibility certifies validity.
                LpStatus::Infeasible => break GammaValidity::ValidShannon,
                LpStatus::Optimal | LpStatus::Unbounded => {
                    // (Unbounded cannot occur for the zero feasibility
                    // objective; treat it like Optimal for uniformity, as
                    // the eager checker did.)
                    let h = mask_values(&solution.values, &columns);
                    let violated = separator.most_violated_budgeted(&h, batch, budget)?;
                    if violated.is_empty() {
                        // The separator scanned every elemental inequality:
                        // h is a genuine polymatroid violating all disjuncts.
                        break GammaValidity::NotShannonProvable {
                            counterexample: SetFunction::from_values(variables.clone(), h),
                        };
                    }
                    rounds += 1;
                    SEPARATION_ROUNDS.inc();
                    budget.charge_separation_round()?;
                    bqc_obs::instant("separation-round");
                    if rounds > escalation_rounds(n) {
                        // A deep probe: separation at relaxation vertices
                        // has stopped paying for itself, so finish with one
                        // eager full-cone solve.  The certificate LP alone
                        // could decide both directions, but proving its
                        // optimum is 0 (the invalid case) is a degenerate
                        // crawl with chaotic cost — measured 1.3s-8s on
                        // near-identical Γ_7 refutations, against a stable
                        // ~1.2s for the eager solve — so the eager verdict
                        // comes first and the certificate runs only in its
                        // reliably-fast direction.  When the verdict is
                        // *valid*, harvest the Farkas support from the
                        // Theorem 6.1 certificate LP: seeded with exactly
                        // those rows, a later same-shaped relaxation is
                        // infeasible on its first solve, so warm re-probes
                        // of this shape skip both the loop and the
                        // escalation.
                        ESCALATIONS.inc();
                        bqc_obs::instant("escalation");
                        ROUNDS_PER_PROBE.observe(rounds as u64);
                        let verdict = check_max_inequality_eager_budgeted(inequality, budget)?;
                        // The Farkas harvest is a warm-start optimization
                        // whose certificate LP is not budget-instrumented;
                        // under a limited budget it is skipped rather than
                        // allowed to overrun the deadline unchecked.
                        if verdict.is_valid() && budget.is_unlimited() {
                            if let crate::convex::CertificateOutcome::Certificate {
                                support, ..
                            } = crate::convex::certificate_decision(inequality)
                            {
                                let seeds: std::collections::HashSet<ElementalId> =
                                    skeleton.seed_rows().collect();
                                active = support
                                    .into_iter()
                                    .filter(|id| !seeds.contains(id))
                                    .collect();
                                FARKAS_SUPPORTS_HARVESTED.add(active.len() as u64);
                            }
                        }
                        self.warm.insert(
                            shape,
                            WarmShape {
                                active,
                                basis: None,
                            },
                        );
                        return Ok(verdict);
                    }
                    for id in &violated {
                        let (terms, len) = id.terms(n);
                        inc.add_constraint_small(
                            terms[..len].iter().filter_map(|(mask, coeff)| {
                                columns[*mask as usize].map(|var| (var, *coeff))
                            }),
                            ConstraintOp::Ge,
                            0,
                        );
                        active.push(*id);
                    }
                    solution = inc.solve_budgeted(budget)?;
                }
            }
        };
        ROUNDS_PER_PROBE.observe(rounds as u64);
        self.warm.insert(
            shape,
            WarmShape {
                active,
                basis: inc.basis(),
            },
        );
        Ok(verdict)
    }

    /// Decides whether a linear information inequality is a Shannon
    /// inequality, reusing cached separation state when the shape matches.
    pub fn check_linear_inequality(&mut self, inequality: &LinearInequality) -> GammaValidity {
        self.check_max_inequality(&inequality.to_max())
    }

    /// [`GammaProver::check_linear_inequality`] under a decision [`Budget`];
    /// see [`GammaProver::check_max_inequality_budgeted`].
    pub fn check_linear_inequality_budgeted(
        &mut self,
        inequality: &LinearInequality,
        budget: &Budget,
    ) -> Result<GammaValidity, Exhausted> {
        self.check_max_inequality_budgeted(&inequality.to_max(), budget)
    }
}

/// Decides whether `0 ≤ max_ℓ E_ℓ(h)` holds for every polymatroid over the
/// inequality's universe.
///
/// One-shot form of [`GammaProver::check_max_inequality`] (lazy separation
/// with no carried-over state, so the result — counterexample included — is
/// a pure function of the inequality); callers probing many inequalities
/// should hold a [`GammaProver`] to reuse separation state.
pub fn check_max_inequality(inequality: &MaxInequality) -> GammaValidity {
    GammaProver::new().check_max_inequality(inequality)
}

/// Decides whether a linear information inequality is a Shannon inequality.
pub fn check_linear_inequality(inequality: &LinearInequality) -> GammaValidity {
    check_max_inequality(&inequality.to_max())
}

/// Decides `0 ≤ max_ℓ E_ℓ(h)` over `Γ_n` with the **eager** cone: every
/// elemental inequality is materialized into one LP up front.
///
/// This is the seed implementation, retained as the independent oracle for
/// the lazy separation loop (property tests assert verdict equality) and as
/// the baseline of the `lp/gamma_validity` regression benchmarks.  Use
/// [`check_max_inequality`] in production code.
pub fn check_max_inequality_eager(inequality: &MaxInequality) -> GammaValidity {
    check_max_inequality_eager_budgeted(inequality, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`check_max_inequality_eager`] under a decision [`Budget`] (pivots charged
/// inside the single full-cone solve).
pub fn check_max_inequality_eager_budgeted(
    inequality: &MaxInequality,
    budget: &Budget,
) -> Result<GammaValidity, Exhausted> {
    let variables = &inequality.variables;
    let (mut lp, columns) = shannon_cone_lp(variables);
    for disjunct in &inequality.disjuncts {
        let coeffs = expr_coefficients(disjunct, variables, &columns);
        // E_ℓ(h) ≤ −1.
        lp.add_constraint(coeffs, ConstraintOp::Le, -Rational::one());
    }
    let (solution, _) = lp.solve_from_budgeted(None, budget)?;
    Ok(match solution.status {
        LpStatus::Infeasible => GammaValidity::ValidShannon,
        LpStatus::Optimal | LpStatus::Unbounded => {
            let h = mask_values(&solution.values, &columns);
            GammaValidity::NotShannonProvable {
                counterexample: SetFunction::from_values(variables.clone(), h),
            }
        }
    })
}

/// Eager-cone form of [`check_linear_inequality`]; see
/// [`check_max_inequality_eager`].
pub fn check_linear_inequality_eager(inequality: &LinearInequality) -> GammaValidity {
    check_max_inequality_eager(&inequality.to_max())
}

/// Computes the exact minimum of `E(h)` over the polymatroids with the
/// normalization `h(V) ≤ bound`; useful for quantifying *how far* from valid
/// an inequality is (the minimum is 0 for Shannon inequalities and negative
/// otherwise, scaling linearly in `bound`).
pub fn minimize_over_gamma(
    expr: &EntropyExpr,
    variables: &[String],
    bound: Rational,
) -> Option<Rational> {
    let (mut lp, columns) = shannon_cone_lp(variables);
    let full: Mask = ((1u64 << variables.len()) - 1) as Mask;
    if let Some(top) = columns[full as usize] {
        lp.add_constraint(vec![(top, Rational::one())], ConstraintOp::Le, bound);
    }
    lp.set_objective(expr_coefficients(expr, variables, &columns));
    let solution = lp.solve();
    match solution.status {
        LpStatus::Optimal => solution.objective,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;
    use bqc_entropy::varset;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    #[test]
    fn basic_shannon_inequalities_are_valid() {
        // Submodularity: h(X) + h(Y) - h(XY) >= 0.
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
        // Monotonicity: h(XY) - h(X) >= 0.
        let ineq =
            LinearInequality::new(vars(&["X", "Y"]), expr(&[(1, &["X", "Y"]), (-1, &["X"])]));
        assert!(check_linear_inequality(&ineq).is_valid());
        // Conditional submodularity on three variables:
        // h(XZ) + h(YZ) - h(XYZ) - h(Z) >= 0.
        let ineq = LinearInequality::new(
            vars(&["X", "Y", "Z"]),
            expr(&[
                (1, &["X", "Z"]),
                (1, &["Y", "Z"]),
                (-1, &["X", "Y", "Z"]),
                (-1, &["Z"]),
            ]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn invalid_inequalities_produce_polymatroid_counterexamples() {
        // h(X) - h(Y) >= 0 is not valid.
        let ineq = LinearInequality::new(vars(&["X", "Y"]), expr(&[(1, &["X"]), (-1, &["Y"])]));
        match check_linear_inequality(&ineq) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(bqc_entropy::is_polymatroid(&counterexample));
                assert!(ineq.evaluate(&counterexample) <= -int(1));
            }
            GammaValidity::ValidShannon => panic!("expected a counterexample"),
        }
        // Supermodularity h(XY) - h(X) - h(Y) >= 0 is not valid either.
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X", "Y"]), (-1, &["X"]), (-1, &["Y"])]),
        );
        assert!(!check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn example_19_from_section_5_is_valid() {
        // Eq. (19): 0 <= h(X1) + 2 h(X2) + h(X3) - h(X1X2) - h(X2X3).
        let ineq = LinearInequality::new(
            vars(&["X1", "X2", "X3"]),
            expr(&[
                (1, &["X1"]),
                (2, &["X2"]),
                (1, &["X3"]),
                (-1, &["X1", "X2"]),
                (-1, &["X2", "X3"]),
            ]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn example_3_8_max_inequality_is_valid() {
        // h(X1X2X3) <= max(E1, E2, E3) with
        //   E1 = h(X1X2) + h(X2|X1), E2 = h(X2X3) + h(X3|X2), E3 = h(X1X3) + h(X1|X3).
        let universe = vars(&["X1", "X2", "X3"]);
        let make = |top: &[&str], y: &str, x: &str| {
            let mut e = EntropyExpr::zero();
            e.add_term(int(1), top.iter().copied());
            e.add_conditional(int(1), &varset([y]), &varset([x]));
            e.add_term(int(-1), ["X1", "X2", "X3"]);
            e
        };
        let disjuncts = vec![
            make(&["X1", "X2"], "X2", "X1"),
            make(&["X2", "X3"], "X3", "X2"),
            make(&["X1", "X3"], "X1", "X3"),
        ];
        let max = MaxInequality::new(universe, disjuncts);
        assert!(check_max_inequality(&max).is_valid());
    }

    #[test]
    fn max_inequality_with_no_valid_disjunct_fails() {
        // max( h(X) - h(XY), h(Y) - h(XY) ) >= 0 fails: make X, Y independent
        // non-degenerate, then both disjuncts are negative.
        let universe = vars(&["X", "Y"]);
        let d1 = expr(&[(1, &["X"]), (-1, &["X", "Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X", "Y"])]);
        let max = MaxInequality::new(universe, vec![d1, d2]);
        match check_max_inequality(&max) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(max.evaluate(&counterexample).is_negative());
            }
            GammaValidity::ValidShannon => panic!("expected a counterexample"),
        }
    }

    #[test]
    fn max_beats_individual_disjuncts() {
        // Neither h(X) - h(Y) >= 0 nor h(Y) - h(X) >= 0 is valid, but their max is.
        let universe = vars(&["X", "Y"]);
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        assert!(
            !check_linear_inequality(&LinearInequality::new(universe.clone(), d1.clone()))
                .is_valid()
        );
        assert!(
            !check_linear_inequality(&LinearInequality::new(universe.clone(), d2.clone()))
                .is_valid()
        );
        assert!(check_max_inequality(&MaxInequality::new(universe, vec![d1, d2])).is_valid());
    }

    #[test]
    fn zhang_yeung_inequality_is_not_shannon_provable() {
        // The Zhang–Yeung non-Shannon inequality (1998):
        //   2 I(C;D) <= I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B)
        // is valid for entropic functions but NOT for all polymatroids, so the
        // Γ_n-checker must report a counterexample.
        let ineq = zhang_yeung();
        match check_linear_inequality(&ineq) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(bqc_entropy::is_polymatroid(&counterexample));
                assert!(ineq.evaluate(&counterexample).is_negative());
            }
            GammaValidity::ValidShannon => panic!("Zhang–Yeung must not be Shannon-provable"),
        }
    }

    /// The Zhang–Yeung non-Shannon inequality over {A, B, C, D}.
    pub(crate) fn zhang_yeung() -> LinearInequality {
        let universe = vars(&["A", "B", "C", "D"]);
        let mut e = EntropyExpr::zero();
        let mi = |e: &mut EntropyExpr, coeff: i64, a: &[&str], b: &[&str], cond: &[&str]| {
            // coeff * I(a;b|cond) = coeff*(h(a,cond) + h(b,cond) - h(a,b,cond) - h(cond))
            let join = |x: &[&str], y: &[&str]| -> Vec<String> {
                let mut v: Vec<String> = x.iter().map(|s| s.to_string()).collect();
                for s in y {
                    if !v.contains(&s.to_string()) {
                        v.push(s.to_string());
                    }
                }
                v
            };
            e.add_term(int(coeff), join(a, cond));
            e.add_term(int(coeff), join(b, cond));
            e.add_term(
                int(-coeff),
                join(
                    &join(a, b).iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                    cond,
                ),
            );
            e.add_term(int(-coeff), cond.iter().copied());
        };
        mi(&mut e, 1, &["A"], &["B"], &[]);
        mi(&mut e, 1, &["A"], &["C", "D"], &[]);
        mi(&mut e, 3, &["C"], &["D"], &["A"]);
        mi(&mut e, 1, &["C"], &["D"], &["B"]);
        mi(&mut e, -2, &["C"], &["D"], &[]);
        LinearInequality::new(universe, e)
    }

    #[test]
    fn stateful_prover_agrees_with_stateless_across_a_probe_sequence() {
        // A mixed sequence of valid and invalid inequalities over the same
        // universe: the prover's warm-started answers must match the
        // one-shot checks exactly, whichever state happens to be cached.
        let universe = vars(&["X", "Y", "Z"]);
        let sequence = vec![
            // Invalid: seeds the warm cache with a violating end state.
            expr(&[(1, &["X"]), (-1, &["Y"])]),
            // Another invalid one with the same shape.
            expr(&[(1, &["Z"]), (-1, &["X", "Y", "Z"])]),
            // Valid (submodularity): the cached state is infeasible here and
            // the solver must still prove validity.
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
            // Invalid again after a valid probe.
            expr(&[(1, &["Y"]), (-1, &["Z"])]),
            // Valid (monotonicity).
            expr(&[(1, &["X", "Y", "Z"]), (-1, &["X", "Y"])]),
        ];
        let mut prover = GammaProver::new();
        for e in sequence {
            let ineq = LinearInequality::new(universe.clone(), e);
            let stateless = check_linear_inequality(&ineq);
            let stateful = prover.check_linear_inequality(&ineq);
            assert_eq!(stateful.is_valid(), stateless.is_valid());
            if let GammaValidity::NotShannonProvable { counterexample } = &stateful {
                assert!(bqc_entropy::is_polymatroid(counterexample));
                assert!(ineq.evaluate(counterexample).is_negative());
            }
        }
        assert!(prover.cached_bases() >= 1);
    }

    #[test]
    fn lazy_and_eager_checkers_agree_on_the_unit_suite() {
        let universe = vars(&["X", "Y", "Z"]);
        let cases = vec![
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
            expr(&[(1, &["X"]), (-1, &["Y"])]),
            expr(&[(1, &["X", "Y", "Z"]), (-1, &["X", "Y"])]),
            expr(&[(1, &["X", "Y"]), (-1, &["X"]), (-1, &["Y"])]),
            expr(&[
                (2, &["Y"]),
                (1, &["X"]),
                (-1, &["X", "Y"]),
                (-1, &["Y", "Z"]),
            ]),
        ];
        for e in cases {
            let ineq = LinearInequality::new(universe.clone(), e);
            let lazy = check_linear_inequality(&ineq);
            let eager = check_linear_inequality_eager(&ineq);
            assert_eq!(lazy.is_valid(), eager.is_valid(), "{ineq:?}");
            for result in [&lazy, &eager] {
                if let GammaValidity::NotShannonProvable { counterexample } = result {
                    assert!(bqc_entropy::is_polymatroid(counterexample));
                    assert!(ineq.evaluate(counterexample) <= -int(1));
                }
            }
        }
    }

    #[test]
    fn shared_skeleton_caches_are_reused_across_provers() {
        let skeletons = SkeletonCache::new();
        let mut a = GammaProver::with_skeletons(skeletons.clone());
        let mut b = GammaProver::with_skeletons(skeletons.clone());
        // Five variables: above the small-universe cutoff, so the lazy
        // separation path (and with it the skeleton cache) is exercised.
        let ineq = LinearInequality::new(
            vars(&["V", "W", "X", "Y", "Z"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        assert!(a.check_linear_inequality(&ineq).is_valid());
        assert!(b.check_linear_inequality(&ineq).is_valid());
        // One universe size probed => exactly one skeleton, shared by both.
        assert_eq!(skeletons.len(), 1);
        assert_eq!(a.skeletons().len(), 1);
        // Small universes skip the skeleton machinery entirely.
        let small = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        assert!(a.check_linear_inequality(&small).is_valid());
        assert_eq!(skeletons.len(), 1);
    }

    #[test]
    fn budget_exhaustion_leaves_the_prover_untouched() {
        use bqc_obs::{BudgetResource, BudgetSpec};
        // Five variables forces the separation loop.  The inequality is
        // invalid, so the relaxation must pivot through phase 1 (its
        // disjunct row is violated at h = 0) — a zero-pivot cap always
        // aborts before a verdict.
        let ineq = LinearInequality::new(
            vars(&["V", "W", "X", "Y", "Z"]),
            expr(&[(1, &["X"]), (-1, &["Y"])]),
        );
        let mut prover = GammaProver::new();
        let spec = BudgetSpec {
            max_pivots: Some(0),
            ..BudgetSpec::UNLIMITED
        };
        let err = prover
            .check_linear_inequality_budgeted(&ineq, &spec.start())
            .expect_err("zero pivots cannot refute a Γ_5 probe");
        assert_eq!(err.resource, BudgetResource::Pivots);
        // No warm state was absorbed from the aborted probe...
        assert_eq!(prover.cached_bases(), 0);
        // ...and the verdict afterwards matches a stateless check.
        assert_eq!(
            prover.check_linear_inequality(&ineq).is_valid(),
            check_linear_inequality(&ineq).is_valid()
        );

        // A tiny separation-round cap aborts mid-loop on an invalid probe
        // (validity certificates can land before any round is charged).
        let deep = LinearInequality::new(
            vars(&["V", "W", "X", "Y", "Z"]),
            expr(&[(1, &["X"]), (-1, &["Y"])]),
        );
        let mut fresh = GammaProver::new();
        let spec = BudgetSpec {
            max_separation_rounds: Some(1),
            max_pivots: Some(10_000),
            ..BudgetSpec::UNLIMITED
        };
        match fresh.check_linear_inequality_budgeted(&deep, &spec.start()) {
            // Either the round cap or the pivot cap fires first; both are
            // acceptable as long as nothing partial was kept on error.
            Err(_) => assert_eq!(fresh.cached_bases(), 0),
            Ok(verdict) => {
                assert_eq!(
                    verdict.is_valid(),
                    check_linear_inequality(&deep).is_valid()
                )
            }
        }
    }

    #[test]
    fn minimize_over_gamma_quantifies_violation() {
        let universe = vars(&["X", "Y"]);
        // Valid inequality: minimum is 0.
        let valid = expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]);
        assert_eq!(minimize_over_gamma(&valid, &universe, int(1)), Some(int(0)));
        // Invalid inequality: minimum is -1 with h(XY) <= 1.
        let invalid = expr(&[(1, &["X"]), (-1, &["Y"])]);
        assert_eq!(
            minimize_over_gamma(&invalid, &universe, int(1)),
            Some(int(-1))
        );
    }
}
