//! Validity of (max-)information inequalities over the Shannon cone `Γ_n`.
//!
//! Section 3.2: `Γ_n` is a polyhedral cone, so validity of a max-linear
//! inequality over `Γ_n` is decidable by linear programming.  Concretely,
//! `0 ≤ max_ℓ E_ℓ(h)` fails on `Γ_n` iff some polymatroid has `E_ℓ(h) < 0`
//! for every `ℓ`; because `Γ_n` is a cone this is equivalent to the
//! feasibility of
//!
//! ```text
//!     h ∈ Γ_n  (elemental Shannon inequalities),    E_ℓ(h) ≤ −1  for all ℓ,
//! ```
//!
//! which the exact simplex solver of `bqc-lp` decides.  The answer is
//! interpreted as follows:
//!
//! * **valid over `Γ_n`** ⇒ valid over the entropic functions `Γ*_n ⊆ Γ_n`
//!   (the inequality is a *Shannon* inequality);
//! * **invalid over `Γ_n`** ⇒ inconclusive for general inequalities (there are
//!   non-Shannon valid inequalities, Zhang–Yeung \[32\]); but for the
//!   *essentially Shannon* classes of Theorem 3.6 — in particular the
//!   containment inequalities produced by chordal queries with simple junction
//!   trees — the polymatroid counterexample can be pushed down into the normal
//!   functions and therefore refutes the inequality outright.

use crate::inequality::{LinearInequality, MaxInequality};
use bqc_arith::Rational;
use bqc_entropy::{all_masks, elemental_inequalities, EntropyExpr, Mask, SetFunction};
use bqc_lp::{ConstraintOp, LpBasis, LpProblem, LpStatus, Sense, VarBound, VarId};
use std::collections::HashMap;

/// Outcome of a validity check over the polymatroid cone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GammaValidity {
    /// The inequality holds for every polymatroid (hence for every entropic
    /// function): it is a Shannon inequality.
    ValidShannon,
    /// Some polymatroid violates every disjunct simultaneously.  The witness
    /// satisfies `E_ℓ(h) ≤ −1` for all `ℓ`.
    NotShannonProvable {
        /// A violating polymatroid.
        counterexample: SetFunction,
    },
}

impl GammaValidity {
    /// `true` iff the inequality is Shannon-provable.
    pub fn is_valid(&self) -> bool {
        matches!(self, GammaValidity::ValidShannon)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&SetFunction> {
        match self {
            GammaValidity::ValidShannon => None,
            GammaValidity::NotShannonProvable { counterexample } => Some(counterexample),
        }
    }
}

/// Internal helper: builds the `h ∈ Γ_n` constraint system inside an LP,
/// returning one LP variable per non-empty subset of the universe.
fn shannon_cone_lp(variables: &[String]) -> (LpProblem, Vec<Option<VarId>>) {
    let n = variables.len();
    let mut lp = LpProblem::new(Sense::Minimize);
    let mut columns: Vec<Option<VarId>> = vec![None; 1 << n];
    for mask in all_masks(n) {
        if mask == 0 {
            continue;
        }
        let name: String = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| variables[i].clone())
            .collect::<Vec<_>>()
            .join("");
        // Polymatroids are non-negative (monotonicity from h(∅) = 0), so the
        // natural variable bound is ≥ 0; this also keeps the LP smaller.
        columns[mask as usize] = Some(lp.add_variable(format!("h({name})"), VarBound::NonNegative));
    }
    for constraint in elemental_inequalities(n) {
        let coeffs: Vec<(VarId, Rational)> = constraint
            .terms
            .iter()
            .filter_map(|(mask, coeff)| columns[*mask as usize].map(|v| (v, coeff.clone())))
            .collect();
        lp.add_constraint(coeffs, ConstraintOp::Ge, Rational::zero());
    }
    (lp, columns)
}

/// Converts an [`EntropyExpr`] into sparse LP coefficients with respect to the
/// ordered variable universe.
fn expr_coefficients(
    expr: &EntropyExpr,
    variables: &[String],
    columns: &[Option<VarId>],
) -> Vec<(VarId, Rational)> {
    let index_of = |name: &str| -> usize {
        variables
            .iter()
            .position(|v| v == name)
            .unwrap_or_else(|| panic!("variable {name} missing from the universe"))
    };
    let mut coeffs = Vec::new();
    for (set, coeff) in expr.terms() {
        let mut mask: Mask = 0;
        for v in set {
            mask |= 1 << index_of(v);
        }
        if let Some(var) = columns[mask as usize] {
            coeffs.push((var, coeff.clone()));
        }
    }
    coeffs
}

/// A stateful Shannon-cone prover that **warm-starts** successive LP probes.
///
/// Every validity check over `Γ_n` shares the same elemental-inequality
/// skeleton; only the handful of disjunct rows differ between inequalities.
/// The prover remembers, per standard-form *shape* (universe size, number of
/// disjuncts), the optimal basis of the last feasible probe and seeds the
/// next same-shaped solve with it through [`LpProblem::solve_from`].  When
/// the remembered basis is still feasible — common across the repeated
/// probes of a decision loop — phase 1 is skipped entirely; when it is not,
/// the solver silently falls back to a cold start, so answers never depend
/// on the cache.
///
/// **Caveat: counterexamples are history-dependent.**  The validity verdict
/// is always identical to a cold check, but when an inequality is *invalid*
/// the violating polymatroid handed back is whichever optimal vertex the
/// solve terminated at — a warm start can land on a different (equally
/// valid) vertex than a cold start would.  Callers that need the returned
/// counterexample to be a pure function of the inequality (e.g. to feed
/// deterministic caches) should use the free functions
/// [`check_max_inequality`] / [`check_linear_inequality`], which remain as
/// stateless one-shot entry points.
#[derive(Debug, Default)]
pub struct GammaProver {
    /// Last optimal basis per `(universe size, disjunct count)` shape.
    warm: HashMap<(usize, usize), LpBasis>,
}

impl GammaProver {
    /// Creates a prover with an empty warm-start cache.
    pub fn new() -> GammaProver {
        GammaProver::default()
    }

    /// Number of cached warm-start bases (one per probe shape seen so far).
    pub fn cached_bases(&self) -> usize {
        self.warm.len()
    }

    /// Decides whether `0 ≤ max_ℓ E_ℓ(h)` holds for every polymatroid over
    /// the inequality's universe, reusing a cached basis when one matches.
    pub fn check_max_inequality(&mut self, inequality: &MaxInequality) -> GammaValidity {
        let variables = &inequality.variables;
        let (mut lp, columns) = shannon_cone_lp(variables);
        for disjunct in &inequality.disjuncts {
            let coeffs = expr_coefficients(disjunct, variables, &columns);
            // E_ℓ(h) ≤ −1.
            lp.add_constraint(coeffs, ConstraintOp::Le, -Rational::one());
        }
        let shape = (variables.len(), inequality.disjuncts.len());
        let (solution, basis) = lp.solve_from(self.warm.get(&shape));
        if let Some(basis) = basis {
            self.warm.insert(shape, basis);
        }
        match solution.status {
            LpStatus::Infeasible => GammaValidity::ValidShannon,
            LpStatus::Optimal | LpStatus::Unbounded => {
                // Feasible: extract the violating polymatroid.  (Unbounded
                // cannot occur for a pure feasibility objective, but a
                // solution would still be available in `values`; treat both
                // uniformly.)
                let n = variables.len();
                let mut h = SetFunction::zero(variables.clone());
                for mask in all_masks(n) {
                    if mask == 0 {
                        continue;
                    }
                    if let Some(var) = columns[mask as usize] {
                        h.set_value(mask, solution.values[var.0].clone());
                    }
                }
                GammaValidity::NotShannonProvable { counterexample: h }
            }
        }
    }

    /// Decides whether a linear information inequality is a Shannon
    /// inequality, reusing a cached basis when one matches.
    pub fn check_linear_inequality(&mut self, inequality: &LinearInequality) -> GammaValidity {
        self.check_max_inequality(&inequality.to_max())
    }
}

/// Decides whether `0 ≤ max_ℓ E_ℓ(h)` holds for every polymatroid over the
/// inequality's universe.
///
/// One-shot form of [`GammaProver::check_max_inequality`]; callers probing
/// many inequalities should hold a [`GammaProver`] to reuse bases.
pub fn check_max_inequality(inequality: &MaxInequality) -> GammaValidity {
    GammaProver::new().check_max_inequality(inequality)
}

/// Decides whether a linear information inequality is a Shannon inequality.
pub fn check_linear_inequality(inequality: &LinearInequality) -> GammaValidity {
    check_max_inequality(&inequality.to_max())
}

/// Computes the exact minimum of `E(h)` over the polymatroids with the
/// normalization `h(V) ≤ bound`; useful for quantifying *how far* from valid
/// an inequality is (the minimum is 0 for Shannon inequalities and negative
/// otherwise, scaling linearly in `bound`).
pub fn minimize_over_gamma(
    expr: &EntropyExpr,
    variables: &[String],
    bound: Rational,
) -> Option<Rational> {
    let (mut lp, columns) = shannon_cone_lp(variables);
    let full: Mask = ((1u64 << variables.len()) - 1) as Mask;
    if let Some(top) = columns[full as usize] {
        lp.add_constraint(vec![(top, Rational::one())], ConstraintOp::Le, bound);
    }
    lp.set_objective(expr_coefficients(expr, variables, &columns));
    let solution = lp.solve();
    match solution.status {
        LpStatus::Optimal => solution.objective,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqc_arith::int;
    use bqc_entropy::varset;

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn expr(terms: &[(i64, &[&str])]) -> EntropyExpr {
        let mut e = EntropyExpr::zero();
        for (coeff, set) in terms {
            e.add_term(int(*coeff), set.iter().copied());
        }
        e
    }

    #[test]
    fn basic_shannon_inequalities_are_valid() {
        // Submodularity: h(X) + h(Y) - h(XY) >= 0.
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
        // Monotonicity: h(XY) - h(X) >= 0.
        let ineq =
            LinearInequality::new(vars(&["X", "Y"]), expr(&[(1, &["X", "Y"]), (-1, &["X"])]));
        assert!(check_linear_inequality(&ineq).is_valid());
        // Conditional submodularity on three variables:
        // h(XZ) + h(YZ) - h(XYZ) - h(Z) >= 0.
        let ineq = LinearInequality::new(
            vars(&["X", "Y", "Z"]),
            expr(&[
                (1, &["X", "Z"]),
                (1, &["Y", "Z"]),
                (-1, &["X", "Y", "Z"]),
                (-1, &["Z"]),
            ]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn invalid_inequalities_produce_polymatroid_counterexamples() {
        // h(X) - h(Y) >= 0 is not valid.
        let ineq = LinearInequality::new(vars(&["X", "Y"]), expr(&[(1, &["X"]), (-1, &["Y"])]));
        match check_linear_inequality(&ineq) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(bqc_entropy::is_polymatroid(&counterexample));
                assert!(ineq.evaluate(&counterexample) <= -int(1));
            }
            GammaValidity::ValidShannon => panic!("expected a counterexample"),
        }
        // Supermodularity h(XY) - h(X) - h(Y) >= 0 is not valid either.
        let ineq = LinearInequality::new(
            vars(&["X", "Y"]),
            expr(&[(1, &["X", "Y"]), (-1, &["X"]), (-1, &["Y"])]),
        );
        assert!(!check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn example_19_from_section_5_is_valid() {
        // Eq. (19): 0 <= h(X1) + 2 h(X2) + h(X3) - h(X1X2) - h(X2X3).
        let ineq = LinearInequality::new(
            vars(&["X1", "X2", "X3"]),
            expr(&[
                (1, &["X1"]),
                (2, &["X2"]),
                (1, &["X3"]),
                (-1, &["X1", "X2"]),
                (-1, &["X2", "X3"]),
            ]),
        );
        assert!(check_linear_inequality(&ineq).is_valid());
    }

    #[test]
    fn example_3_8_max_inequality_is_valid() {
        // h(X1X2X3) <= max(E1, E2, E3) with
        //   E1 = h(X1X2) + h(X2|X1), E2 = h(X2X3) + h(X3|X2), E3 = h(X1X3) + h(X1|X3).
        let universe = vars(&["X1", "X2", "X3"]);
        let make = |top: &[&str], y: &str, x: &str| {
            let mut e = EntropyExpr::zero();
            e.add_term(int(1), top.iter().copied());
            e.add_conditional(int(1), &varset([y]), &varset([x]));
            e.add_term(int(-1), ["X1", "X2", "X3"]);
            e
        };
        let disjuncts = vec![
            make(&["X1", "X2"], "X2", "X1"),
            make(&["X2", "X3"], "X3", "X2"),
            make(&["X1", "X3"], "X1", "X3"),
        ];
        let max = MaxInequality::new(universe, disjuncts);
        assert!(check_max_inequality(&max).is_valid());
    }

    #[test]
    fn max_inequality_with_no_valid_disjunct_fails() {
        // max( h(X) - h(XY), h(Y) - h(XY) ) >= 0 fails: make X, Y independent
        // non-degenerate, then both disjuncts are negative.
        let universe = vars(&["X", "Y"]);
        let d1 = expr(&[(1, &["X"]), (-1, &["X", "Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X", "Y"])]);
        let max = MaxInequality::new(universe, vec![d1, d2]);
        match check_max_inequality(&max) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(max.evaluate(&counterexample).is_negative());
            }
            GammaValidity::ValidShannon => panic!("expected a counterexample"),
        }
    }

    #[test]
    fn max_beats_individual_disjuncts() {
        // Neither h(X) - h(Y) >= 0 nor h(Y) - h(X) >= 0 is valid, but their max is.
        let universe = vars(&["X", "Y"]);
        let d1 = expr(&[(1, &["X"]), (-1, &["Y"])]);
        let d2 = expr(&[(1, &["Y"]), (-1, &["X"])]);
        assert!(
            !check_linear_inequality(&LinearInequality::new(universe.clone(), d1.clone()))
                .is_valid()
        );
        assert!(
            !check_linear_inequality(&LinearInequality::new(universe.clone(), d2.clone()))
                .is_valid()
        );
        assert!(check_max_inequality(&MaxInequality::new(universe, vec![d1, d2])).is_valid());
    }

    #[test]
    fn zhang_yeung_inequality_is_not_shannon_provable() {
        // The Zhang–Yeung non-Shannon inequality (1998):
        //   2 I(C;D) <= I(A;B) + I(A;CD) + 3 I(C;D|A) + I(C;D|B)
        // is valid for entropic functions but NOT for all polymatroids, so the
        // Γ_n-checker must report a counterexample.
        let universe = vars(&["A", "B", "C", "D"]);
        let mut e = EntropyExpr::zero();
        let mi = |e: &mut EntropyExpr, coeff: i64, a: &[&str], b: &[&str], cond: &[&str]| {
            // coeff * I(a;b|cond) = coeff*(h(a,cond) + h(b,cond) - h(a,b,cond) - h(cond))
            let join = |x: &[&str], y: &[&str]| -> Vec<String> {
                let mut v: Vec<String> = x.iter().map(|s| s.to_string()).collect();
                for s in y {
                    if !v.contains(&s.to_string()) {
                        v.push(s.to_string());
                    }
                }
                v
            };
            e.add_term(int(coeff), join(a, cond));
            e.add_term(int(coeff), join(b, cond));
            e.add_term(
                int(-coeff),
                join(
                    &join(a, b).iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                    cond,
                ),
            );
            e.add_term(int(-coeff), cond.iter().copied());
        };
        mi(&mut e, 1, &["A"], &["B"], &[]);
        mi(&mut e, 1, &["A"], &["C", "D"], &[]);
        mi(&mut e, 3, &["C"], &["D"], &["A"]);
        mi(&mut e, 1, &["C"], &["D"], &["B"]);
        mi(&mut e, -2, &["C"], &["D"], &[]);
        let ineq = LinearInequality::new(universe, e);
        match check_linear_inequality(&ineq) {
            GammaValidity::NotShannonProvable { counterexample } => {
                assert!(bqc_entropy::is_polymatroid(&counterexample));
                assert!(ineq.evaluate(&counterexample).is_negative());
            }
            GammaValidity::ValidShannon => panic!("Zhang–Yeung must not be Shannon-provable"),
        }
    }

    #[test]
    fn stateful_prover_agrees_with_stateless_across_a_probe_sequence() {
        // A mixed sequence of valid and invalid inequalities over the same
        // universe: the prover's warm-started answers must match the
        // one-shot checks exactly, whichever basis happens to be cached.
        let universe = vars(&["X", "Y", "Z"]);
        let sequence = vec![
            // Invalid: seeds the warm cache with a violating basis.
            expr(&[(1, &["X"]), (-1, &["Y"])]),
            // Another invalid one with the same shape.
            expr(&[(1, &["Z"]), (-1, &["X", "Y", "Z"])]),
            // Valid (submodularity): the cached basis is infeasible here and
            // the solver must still prove validity.
            expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]),
            // Invalid again after a valid probe.
            expr(&[(1, &["Y"]), (-1, &["Z"])]),
            // Valid (monotonicity).
            expr(&[(1, &["X", "Y", "Z"]), (-1, &["X", "Y"])]),
        ];
        let mut prover = GammaProver::new();
        for e in sequence {
            let ineq = LinearInequality::new(universe.clone(), e);
            let stateless = check_linear_inequality(&ineq);
            let stateful = prover.check_linear_inequality(&ineq);
            assert_eq!(stateful.is_valid(), stateless.is_valid());
            if let GammaValidity::NotShannonProvable { counterexample } = &stateful {
                assert!(bqc_entropy::is_polymatroid(counterexample));
                assert!(ineq.evaluate(counterexample).is_negative());
            }
        }
        assert!(prover.cached_bases() >= 1);
    }

    #[test]
    fn minimize_over_gamma_quantifies_violation() {
        let universe = vars(&["X", "Y"]);
        // Valid inequality: minimum is 0.
        let valid = expr(&[(1, &["X"]), (1, &["Y"]), (-1, &["X", "Y"])]);
        assert_eq!(minimize_over_gamma(&valid, &universe, int(1)), Some(int(0)));
        // Invalid inequality: minimum is -1 with h(XY) <= 1.
        let invalid = expr(&[(1, &["X"]), (-1, &["Y"])]);
        assert_eq!(
            minimize_over_gamma(&invalid, &universe, int(1)),
            Some(int(-1))
        );
    }
}
